"""repro — a reproduction of DAAKG (SIGMOD 2023).

Deep active alignment of knowledge graph entities and schemata: joint
embedding-based alignment of entities, relations and classes, inference power
measurement, and batch active learning, built on a NumPy autograd substrate.

Public API highlights
---------------------
* :func:`repro.datasets.make_benchmark` — OpenEA-style synthetic benchmark pairs.
* :class:`repro.core.DAAKG` / :class:`repro.core.DAAKGConfig` — the pipeline.
* :mod:`repro.baselines` — PARIS, MTransE, GCN-Align-style, BootEA-style and
  lexical baselines for the comparison experiments.
* :mod:`repro.active` — pool generation, selection algorithms, the active loop.
* :mod:`repro.persistence` — versioned checkpoints (``DAAKG.save`` / ``load``,
  ``ActiveLearningLoop.resume``).
* :mod:`repro.serving` — the online :class:`~repro.serving.AlignmentService`;
  :func:`repro.serving.serve` turns any pipeline / campaign / checkpoint into
  a serving surface in one call.
* :mod:`repro.updates` — incremental updates: a :class:`~repro.updates.KGDelta`
  flows through ``AlignedKGPair.apply_delta``,
  ``PartitionedCampaign.apply_update`` (warm-start retrain of only the touched
  pieces) and ``AlignmentService.apply_delta`` / ``hot_swap``.
* :mod:`repro.obs` — metrics, tracing and artifact export across every layer
  (enable with ``REPRO_OBS=1`` or ``repro.obs.enable()``).
"""

from repro import obs
from repro.core import DAAKG, DAAKGConfig
from repro.datasets import make_benchmark, available_benchmarks
from repro.active.campaign import CampaignExecutionError, PartitionedCampaign
from repro.kg import AlignedKGPair, ElementKind, KnowledgeGraph, PartitionConfig
from repro.persistence import load_checkpoint, save_checkpoint
from repro.serving import AlignmentService, serve
from repro.updates import KGDelta

__version__ = "1.6.0"

__all__ = [
    "AlignedKGPair",
    "AlignmentService",
    "CampaignExecutionError",
    "DAAKG",
    "DAAKGConfig",
    "ElementKind",
    "KGDelta",
    "KnowledgeGraph",
    "PartitionConfig",
    "PartitionedCampaign",
    "available_benchmarks",
    "load_checkpoint",
    "make_benchmark",
    "obs",
    "save_checkpoint",
    "serve",
    "__version__",
]
