"""Span-based tracing: nested spans, monotonic durations, JSONL events.

A :class:`TraceBuffer` collects structured event dicts in memory; one buffer
belongs to one :class:`repro.obs.ObsState` scope (the process default, or a
piece-scoped state inside an executor worker).  Spans nest per thread — each
thread keeps its own parent stack, so concurrent pieces on the thread
executor never interleave their parent/child links.

Event shape (one JSON object per line in ``trace.jsonl``)::

    {"name": "trainer.step", "ts": 1722.4, "dur_s": 0.0123,
     "span_id": 7, "parent_id": 3, "pid": 4242, "attrs": {"piece": 1}}

``ts`` is wall-clock (``time.time``) for cross-process alignment; ``dur_s``
is measured on the monotonic clock (``time.perf_counter``) so spans are
immune to wall-clock steps.  Instant events carry ``dur_s = 0.0`` and no
span ids of their own beyond the surrounding span's.
"""

from __future__ import annotations

import itertools
import os
import threading
import time


class TraceBuffer:
    """Thread-safe event sink with per-thread span nesting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------- span stack
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def next_id(self) -> int:
        return next(self._ids)

    # ---------------------------------------------------------------- records
    def record(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def event(self, name: str, **attrs) -> None:
        """An instant (zero-duration) event under the current span, if any."""
        stack = self._stack()
        self.record(
            {
                "name": name,
                "ts": time.time(),
                "dur_s": 0.0,
                "span_id": self.next_id(),
                "parent_id": stack[-1] if stack else None,
                "pid": os.getpid(),
                "attrs": attrs,
            }
        )

    def span(self, name: str, **attrs) -> "Span":
        return Span(self, name, attrs)

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def drain(self) -> list[dict]:
        with self._lock:
            events, self._events = self._events, []
            return events

    def extend(self, events: list[dict]) -> None:
        """Adopt another scope's events (the campaign's cross-process fold)."""
        with self._lock:
            self._events.extend(events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


class Span:
    """Context manager emitting one duration event on exit.

    ``set(**attrs)`` adds attributes mid-flight; an exception escaping the
    block stamps ``attrs["error"]`` with the exception type before
    re-raising, so failed spans are visible in the trace.
    """

    __slots__ = ("_buffer", "name", "attrs", "span_id", "parent_id", "_ts", "_start")

    def __init__(self, buffer: TraceBuffer, name: str, attrs: dict) -> None:
        self._buffer = buffer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._buffer._stack()
        self.span_id = self._buffer.next_id()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._buffer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._buffer.record(
            {
                "name": self.name,
                "ts": self._ts,
                "dur_s": duration,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "pid": os.getpid(),
                "attrs": self.attrs,
            }
        )
        return False
