"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately stdlib-only (``threading`` + ``bisect``) so it
can be imported from any layer — including the embedding hot paths and the
executor's worker processes — without touching numpy or creating an import
cycle with the rest of :mod:`repro`.

Design contract:

* **Fixed explicit buckets.**  A histogram's bucket upper bounds are frozen
  at creation (an implicit ``+Inf`` bucket is always appended), so two
  snapshots of the *same* metric can be merged **exactly** by summing bucket
  counts — the property the partitioned campaign relies on when it folds
  per-piece snapshots produced in worker processes back into the parent's
  registry.  Requesting an existing histogram with different buckets is an
  error, never a silent re-bucketing.
* **Per-instrument locks.**  Updates take the instrument's own lock (not a
  registry-wide one), so concurrent counter increments from many threads are
  exact and uncontended across instruments.
* **Snapshots are plain JSON.**  :meth:`MetricsRegistry.snapshot` returns a
  dict of primitives only — it serialises into a piece's checkpoint
  directory, crosses the process boundary as ``obs.json``, and merges back
  through :meth:`MetricsRegistry.merge_snapshot`.
* **Prometheus exposition.**  :func:`render_prometheus` renders any snapshot
  as valid text exposition format (metric names sanitised, label values
  escaped, cumulative ``_bucket``/``_sum``/``_count`` series).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left

#: Coarse wall-time buckets (seconds) for training / piece-level durations.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Fine latency buckets (seconds) for served queries (sub-ms resolution).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Power-of-two size buckets for dispatch batch accounting (requests/batch).
DEFAULT_BATCH_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
)


def instrument_key(name: str, labels: dict[str, str]) -> str:
    """Canonical ``name{k="v",...}`` key (labels sorted; bare name when none)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing float counter."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A last-write-wins value (queue depths, batch sizes)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram; merges across snapshots are exact by design."""

    __slots__ = ("name", "labels", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self, name: str, labels: dict[str, str], buckets: tuple[float, ...]
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        slot = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear interpolation inside the bucket."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
        return quantile_from_buckets(self.buckets, counts, total, q)


def quantile_from_buckets(
    buckets: tuple[float, ...], counts: list[int], total: int, q: float
) -> float:
    """Interpolated quantile of a fixed-bucket histogram (0.0 when empty)."""
    if total <= 0:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    target = q * total
    cumulative = 0
    for slot, bucket_count in enumerate(counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target and bucket_count > 0:
            lower = buckets[slot - 1] if slot > 0 else 0.0
            upper = buckets[slot] if slot < len(buckets) else buckets[-1]
            fraction = (target - previous) / bucket_count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return buckets[-1]


class MetricsRegistry:
    """Owns every instrument of one observability scope.

    Instrument creation takes the registry lock once per *new* instrument
    (lookups are lock-free dict reads on the happy path guarded by the GIL,
    then re-checked under the lock); updates take only the instrument's own
    lock.  ``snapshot()`` / ``merge_snapshot()`` are the exact round-trip the
    campaign uses to carry worker-process metrics across the fold.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, key: str, factory):
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = factory()
                    self._instruments[key] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {key!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        labels = {k: str(v) for k, v in labels.items()}
        key = instrument_key(name, labels)
        return self._get(Counter, key, lambda: Counter(name, labels))

    def gauge(self, name: str, **labels: str) -> Gauge:
        labels = {k: str(v) for k, v in labels.items()}
        key = instrument_key(name, labels)
        return self._get(Gauge, key, lambda: Gauge(name, labels))

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        labels = {k: str(v) for k, v in labels.items()}
        key = instrument_key(name, labels)
        wanted = tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS
        histogram = self._get(Histogram, key, lambda: Histogram(name, labels, wanted))
        if buckets is not None and histogram.buckets != wanted:
            raise ValueError(
                f"histogram {key!r} already exists with buckets "
                f"{histogram.buckets} (exact merge requires fixed buckets)"
            )
        return histogram

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> dict:
        """Everything, as JSON-able primitives (deterministically ordered)."""
        counters: dict[str, dict] = {}
        gauges: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        with self._lock:
            items = sorted(self._instruments.items())
        for key, instrument in items:
            if isinstance(instrument, Counter):
                counters[key] = {
                    "name": instrument.name,
                    "labels": dict(instrument.labels),
                    "value": instrument.value,
                }
            elif isinstance(instrument, Gauge):
                gauges[key] = {
                    "name": instrument.name,
                    "labels": dict(instrument.labels),
                    "value": instrument.value,
                }
            else:
                with instrument._lock:
                    counts = list(instrument._counts)
                    total = instrument._count
                    acc = instrument._sum
                histograms[key] = {
                    "name": instrument.name,
                    "labels": dict(instrument.labels),
                    "buckets": list(instrument.buckets),
                    "counts": counts,
                    "sum": acc,
                    "count": total,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another scope's snapshot in: counters/histograms sum exactly.

        Gauges are last-write-wins (the merged value is the incoming one) —
        point-in-time readings have no meaningful sum.  Histograms require
        identical buckets; anything else would make the merge lossy.
        """
        for entry in snapshot.get("counters", {}).values():
            self.counter(entry["name"], **entry["labels"]).inc(float(entry["value"]))
        for entry in snapshot.get("gauges", {}).values():
            self.gauge(entry["name"], **entry["labels"]).set(float(entry["value"]))
        for entry in snapshot.get("histograms", {}).values():
            histogram = self.histogram(
                entry["name"], buckets=tuple(entry["buckets"]), **entry["labels"]
            )
            counts = entry["counts"]
            if len(counts) != len(histogram._counts):
                raise ValueError(
                    f"histogram {entry['name']!r} bucket count mismatch on merge"
                )
            with histogram._lock:
                for slot, bucket_count in enumerate(counts):
                    histogram._counts[slot] += int(bucket_count)
                histogram._sum += float(entry["sum"])
                histogram._count += int(entry["count"])


# ------------------------------------------------------------- exposition
def _prom_name(name: str) -> str:
    out = "".join(c if c.isalnum() or c in "_:" else "_" for c in name)
    return out if not out[:1].isdigit() else "_" + out


def _prom_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(k, labels[k]) for k in sorted(labels)] + list(extra)
    if not pairs:
        return ""
    escaped = (
        (k, v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"))
        for k, v in pairs
    )
    return "{" + ",".join(f'{k}="{v}"' for k, v in escaped) + "}"


def _format_value(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot as Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", {}).values():
        name = _prom_name(entry["name"])
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {_format_value(entry['value'])}")
    for entry in snapshot.get("gauges", {}).values():
        name = _prom_name(entry["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {_format_value(entry['value'])}")
    for entry in snapshot.get("histograms", {}).values():
        name = _prom_name(entry["name"])
        type_line(name, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            le = _prom_labels(labels, (("le", _format_value(bound)),))
            lines.append(f"{name}_bucket{le} {cumulative}")
        le = _prom_labels(labels, (("le", "+Inf"),))
        lines.append(f"{name}_bucket{le} {entry['count']}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {_format_value(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_jsonl(snapshot: dict) -> str:
    """One JSON object per instrument — the ``metrics.jsonl`` artifact body."""
    lines = []
    for kind in ("counters", "gauges", "histograms"):
        for entry in snapshot.get(kind, {}).values():
            payload = {"kind": kind[:-1]}
            payload.update(entry)
            lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")
