"""``repro.obs`` — metrics, tracing and profiling for the whole pipeline.

One observability facade instruments every layer (trainer steps, similarity
caches, ANN index builds, executor pieces, served queries) without touching
values or RNG streams — observation only, bit-exactness is preserved by
construction.

Usage::

    from repro import obs

    obs.counter("similarity.cache.hits", kind="entity").inc()
    with obs.span("trainer.step", piece=3):
        ...
    with obs.timer("trainer.loss.seconds", term="match"):
        ...
    print(obs.render_prometheus())

**Gate.**  Everything is off by default: when disabled, every accessor
returns a shared no-op singleton — no allocation, no locks, no events — so
instrumented hot paths cost a single flag check.  Enable programmatically
(:func:`enable`) or via the environment: ``REPRO_OBS=1`` turns collection
on, and setting ``REPRO_OBS_DIR=/some/dir`` additionally exports
``metrics.jsonl`` / ``metrics.prom`` / ``trace.jsonl`` artifacts at process
exit (one ``obs-<pid>`` subdirectory per process, so executor workers never
clobber the parent's export).

**Scopes.**  Metrics and events accumulate in the current
:class:`ObsState` — a ``contextvars``-scoped pair of
(:class:`~repro.obs.registry.MetricsRegistry`, ``TraceBuffer``).  The
process starts with one root state; :func:`scoped` pushes a fresh isolated
state, which is how :func:`repro.runtime.executor.run_piece_spec` gives
every campaign piece its own registry whose snapshot is serialised next to
the piece's checkpoint and folded back (exactly, see
:meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`) by
:class:`~repro.active.campaign.PartitionedCampaign` — fleet metrics survive
the process boundary the same way checkpoints do.
"""

from __future__ import annotations

import atexit
import contextlib
import contextvars
import os
import time

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_jsonl,
    quantile_from_buckets,
    render_prometheus as _render_prometheus,
)
from repro.obs.trace import Span, TraceBuffer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsState",
    "Span",
    "TraceBuffer",
    "counter",
    "disable",
    "drain_events",
    "enable",
    "enabled",
    "event",
    "events",
    "export_artifacts",
    "extend_events",
    "gauge",
    "histogram",
    "merge_snapshot",
    "metrics_jsonl",
    "quantile_from_buckets",
    "render_prometheus",
    "reset",
    "scoped",
    "snapshot",
    "span",
    "state",
    "timer",
]


class ObsState:
    """One observability scope: a metrics registry plus a trace buffer."""

    __slots__ = ("registry", "trace")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.trace = TraceBuffer()


_ROOT = ObsState()
_STATE: contextvars.ContextVar[ObsState] = contextvars.ContextVar(
    "repro_obs_state", default=_ROOT
)


def _truthy(raw: str | None) -> bool:
    return (raw or "").strip().lower() not in ("", "0", "false", "no", "off")


_OBS_DIR = os.environ.get("REPRO_OBS_DIR") or None
_ENABLED = _truthy(os.environ.get("REPRO_OBS")) or _OBS_DIR is not None


def enabled() -> bool:
    """Whether instrumentation currently collects anything."""
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def state() -> ObsState:
    """The current scope (root unless inside :func:`scoped`)."""
    return _STATE.get()


# ------------------------------------------------------------ no-op fast path
class _NoopCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NoopGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NoopHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NOOP_COUNTER = _NoopCounter()
NOOP_GAUGE = _NoopGauge()
NOOP_HISTOGRAM = _NoopHistogram()
NOOP_SPAN = _NoopSpan()


class _Timer:
    """Accumulates the block's elapsed seconds into a counter."""

    __slots__ = ("_counter", "_start")

    def __init__(self, target: Counter) -> None:
        self._counter = target

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._counter.inc(time.perf_counter() - self._start)
        return False


# ------------------------------------------------------------------ accessors
def counter(name: str, **labels) -> Counter:
    if not _ENABLED:
        return NOOP_COUNTER  # type: ignore[return-value]
    return _STATE.get().registry.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    if not _ENABLED:
        return NOOP_GAUGE  # type: ignore[return-value]
    return _STATE.get().registry.gauge(name, **labels)


def histogram(name: str, buckets: tuple[float, ...] | None = None, **labels) -> Histogram:
    if not _ENABLED:
        return NOOP_HISTOGRAM  # type: ignore[return-value]
    return _STATE.get().registry.histogram(name, buckets=buckets, **labels)


def span(name: str, **attrs) -> Span:
    if not _ENABLED:
        return NOOP_SPAN  # type: ignore[return-value]
    return _STATE.get().trace.span(name, **attrs)


def timer(name: str, **labels) -> _Timer:
    """``with obs.timer("trainer.loss.seconds", term="match"):`` — cheap
    elapsed-seconds accumulation into a counter (no per-call trace event)."""
    if not _ENABLED:
        return NOOP_SPAN  # type: ignore[return-value]
    return _Timer(_STATE.get().registry.counter(name, **labels))


def event(name: str, **attrs) -> None:
    if _ENABLED:
        _STATE.get().trace.event(name, **attrs)


# ----------------------------------------------------------------- inspection
def snapshot() -> dict:
    """The current scope's metrics as JSON-able primitives."""
    return _STATE.get().registry.snapshot()


def events() -> list[dict]:
    return _STATE.get().trace.events()


def drain_events() -> list[dict]:
    return _STATE.get().trace.drain()


def merge_snapshot(other: dict) -> None:
    """Fold another scope's snapshot into the current registry (exact)."""
    _STATE.get().registry.merge_snapshot(other)


def extend_events(more: list[dict]) -> None:
    _STATE.get().trace.extend(more)


def render_prometheus() -> str:
    """The current scope's metrics in Prometheus text exposition format."""
    return _render_prometheus(snapshot())


def reset() -> None:
    """Drop the current scope's metrics and events (tests, repeated benches)."""
    current = _STATE.get()
    current.registry.clear()
    current.trace.clear()


@contextlib.contextmanager
def scoped(active: bool = True):
    """Run a block against a fresh isolated :class:`ObsState`.

    Yields the new state (or ``None`` when ``active`` is false, in which case
    nothing changes).  Collection is force-enabled inside the scope and the
    previous flag restored on exit — this is how an executor worker honours
    ``PieceSpec.obs`` without inheriting the parent's environment.
    """
    global _ENABLED
    if not active:
        yield None
        return
    fresh = ObsState()
    token = _STATE.set(fresh)
    previous = _ENABLED
    _ENABLED = True
    try:
        yield fresh
    finally:
        _STATE.reset(token)
        _ENABLED = previous


# -------------------------------------------------------------------- export
def export_artifacts(directory: str | os.PathLike) -> dict[str, str]:
    """Write the current scope's artifacts into ``directory``.

    Produces ``metrics.jsonl`` (one JSON object per instrument),
    ``metrics.prom`` (Prometheus text exposition) and ``trace.jsonl`` (one
    event per line).  Returns the written paths keyed by artifact name.
    """
    import json

    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    snap = snapshot()
    paths = {
        "metrics.jsonl": os.path.join(directory, "metrics.jsonl"),
        "metrics.prom": os.path.join(directory, "metrics.prom"),
        "trace.jsonl": os.path.join(directory, "trace.jsonl"),
    }
    with open(paths["metrics.jsonl"], "w", encoding="utf-8") as handle:
        handle.write(metrics_jsonl(snap))
    with open(paths["metrics.prom"], "w", encoding="utf-8") as handle:
        handle.write(_render_prometheus(snap))
    with open(paths["trace.jsonl"], "w", encoding="utf-8") as handle:
        for item in events():
            handle.write(json.dumps(item, sort_keys=True) + "\n")
    return paths


def _atexit_export() -> None:  # pragma: no cover - exercised in subprocesses
    try:
        export_artifacts(os.path.join(_OBS_DIR, f"obs-{os.getpid()}"))
    except Exception:
        pass


if _OBS_DIR is not None:  # pragma: no cover - env-dependent
    atexit.register(_atexit_export)
