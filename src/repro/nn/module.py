"""Parameter and Module containers.

A :class:`Parameter` is simply a :class:`~repro.autograd.tensor.Tensor` that
requires gradients; :class:`Module` recursively collects parameters from its
attributes, giving optimisers a single flat view of a model's state.
"""

from __future__ import annotations


import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data: np.ndarray, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for models: recursive parameter collection and grad zeroing."""

    def parameters(self) -> list[Parameter]:
        """All unique parameters reachable from this module's attributes."""
        found: list[Parameter] = []
        seen: set[int] = set()
        self._collect(self, found, seen)
        return found

    @staticmethod
    def _collect(obj, found: list[Parameter], seen: set[int]) -> None:
        if id(obj) in seen:
            return
        seen.add(id(obj))
        if isinstance(obj, Parameter):
            found.append(obj)
            return
        if isinstance(obj, Module):
            for value in vars(obj).values():
                Module._collect(value, found, seen)
            return
        if isinstance(obj, (list, tuple)):
            for value in obj:
                Module._collect(value, found, seen)
            return
        if isinstance(obj, dict):
            for value in obj.values():
                Module._collect(value, found, seen)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------- versioning
    def parameter_token(self) -> int:
        """Version token for caches derived from this module's parameters.

        Backed by the global counter in :mod:`repro.nn.optim`: it is bumped by
        every optimiser step, by :meth:`load_state_dict`, by
        ``Embedding.renormalize`` and by :meth:`mark_parameters_mutated`.  An
        unchanged token guarantees unchanged parameters, so anything computed
        from them (forward passes, similarity matrices) can be reused.
        """
        from repro.nn.optim import parameter_version  # circular at module level

        return parameter_version()

    def mark_parameters_mutated(self) -> int:
        """Invalidate parameter-derived caches after an in-place mutation.

        Call this after writing to ``parameter.data`` directly (outside the
        optimiser/`load_state_dict`/`renormalize` paths, which already bump).
        """
        from repro.nn.optim import bump_parameter_version  # circular at module level

        return bump_parameter_version()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (the paper's parameter complexity)."""
        return int(sum(p.size for p in self.parameters()))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by attribute path."""
        state: dict[str, np.ndarray] = {}
        self._state("", self, state, set())
        return state

    @staticmethod
    def _state(prefix: str, obj, state: dict[str, np.ndarray], seen: set[int]) -> None:
        if id(obj) in seen:
            return
        seen.add(id(obj))
        if isinstance(obj, Parameter):
            state[prefix] = obj.data.copy()
            return
        if isinstance(obj, Module):
            for key, value in vars(obj).items():
                Module._state(f"{prefix}.{key}" if prefix else key, value, state, seen)
            return
        if isinstance(obj, (list, tuple)):
            for i, value in enumerate(obj):
                Module._state(f"{prefix}[{i}]", value, state, seen)
            return
        if isinstance(obj, dict):
            for key, value in obj.items():
                Module._state(f"{prefix}[{key}]", value, state, seen)

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = False) -> None:
        """Load parameter arrays previously produced by :meth:`state_dict`.

        ``strict=True`` additionally requires the state dict to cover *every*
        parameter of the module — the contract checkpoint restoration needs,
        where a silently missing key would leave a freshly initialised
        parameter in a supposedly bit-exact reload.
        """
        own = {}
        self._named(self, "", own, set())
        missing = set(state) - set(own)
        if missing:
            raise KeyError(f"state dict has unknown keys: {sorted(missing)[:5]}")
        if strict:
            uncovered = set(own) - set(state)
            if uncovered:
                raise KeyError(f"state dict is missing parameters: {sorted(uncovered)[:5]}")
        # validate every shape before mutating anything, so a bad entry cannot
        # leave the module half-loaded with parameter-derived caches unbumped
        for key, array in state.items():
            if own[key].data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {key}: {own[key].data.shape} vs {array.shape}"
                )
        for key, array in state.items():
            own[key].data = array.copy()
        from repro.nn.optim import bump_parameter_version  # circular at module level

        bump_parameter_version()

    @staticmethod
    def _named(obj, prefix: str, out: dict[str, Parameter], seen: set[int]) -> None:
        if id(obj) in seen:
            return
        seen.add(id(obj))
        if isinstance(obj, Parameter):
            out[prefix] = obj
            return
        if isinstance(obj, Module):
            for key, value in vars(obj).items():
                Module._named(value, f"{prefix}.{key}" if prefix else key, out, seen)
            return
        if isinstance(obj, (list, tuple)):
            for i, value in enumerate(obj):
                Module._named(value, f"{prefix}[{i}]", out, seen)
            return
        if isinstance(obj, dict):
            for key, value in obj.items():
                Module._named(value, f"{prefix}[{key}]", out, seen)
