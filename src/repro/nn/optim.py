"""Optimisers: plain SGD and Adam.

Adam is the default optimiser for all embedding/alignment training in this
reproduction (the paper uses standard deep-learning training loops; the exact
optimiser is not specified beyond stochastic gradient descent).
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from repro.nn.module import Parameter

# Monotonic counter bumped whenever an optimiser mutates parameters.  Caches
# of quantities derived from parameters (e.g. the SimilarityEngine's matrices)
# key their entries on this value: unchanged counter ⇒ identical parameters.
# The bump is lock-protected: the partition-parallel campaign runtime steps
# several optimisers from a thread pool, and a lost increment (two mutations
# sharing one version) would let a stale similarity cache be served as fresh.
_parameter_version = 0
_parameter_version_lock = threading.Lock()


def parameter_version() -> int:
    """The current global parameter version."""
    return _parameter_version


def bump_parameter_version() -> int:
    """Invalidate parameter-derived caches; returns the new version."""
    global _parameter_version
    with _parameter_version_lock:
        _parameter_version += 1
        return _parameter_version


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------ state dicts
    # Optimiser progress (moment buffers, step counts) is part of a training
    # checkpoint: without it a resumed Adam restarts its bias correction and
    # the run diverges from the uninterrupted one.  Hyper-parameters (lr,
    # betas, momentum) are deliberately NOT included — they belong to the
    # configuration that reconstructs the optimiser.
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of the optimiser's progress state as a flat array dict."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load progress state produced by :meth:`state_dict`.

        Validates keys and shapes against the current parameter list before
        mutating anything, mirroring ``Module.load_state_dict``: a bad entry
        can never leave the optimiser half-loaded.
        """
        self._validate_state(state)
        self._apply_state(state)

    def _expected_shapes(self) -> dict[str, tuple[int, ...]]:
        """Shape of every expected state entry (empty tuple for scalars)."""
        return {}

    def _apply_state(self, state: dict[str, np.ndarray]) -> None:
        if state:  # pragma: no cover - defensive, base expects empty state
            raise NotImplementedError

    def _validate_state(self, state: dict[str, np.ndarray]) -> None:
        expected = self._expected_shapes()
        missing = set(expected) - set(state)
        if missing:
            raise KeyError(f"optimizer state dict is missing keys: {sorted(missing)[:5]}")
        unknown = set(state) - set(expected)
        if unknown:
            raise KeyError(f"optimizer state dict has unknown keys: {sorted(unknown)[:5]}")
        for key, shape in expected.items():
            got = np.asarray(state[key]).shape
            if got != shape:
                raise ValueError(f"shape mismatch for {key}: expected {shape}, got {got}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data = p.data + v
        bump_parameter_version()

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)}

    def _expected_shapes(self) -> dict[str, tuple[int, ...]]:
        return {f"velocity.{i}": v.shape for i, v in enumerate(self._velocity)}

    def _apply_state(self, state: dict[str, np.ndarray]) -> None:
        for i, v in enumerate(self._velocity):
            v[...] = np.asarray(state[f"velocity.{i}"])


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        bump_parameter_version()

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"t": np.asarray(self._t, dtype=np.int64)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        return state

    def _expected_shapes(self) -> dict[str, tuple[int, ...]]:
        shapes: dict[str, tuple[int, ...]] = {"t": ()}
        for i, m in enumerate(self._m):
            shapes[f"m.{i}"] = m.shape
            shapes[f"v.{i}"] = m.shape
        return shapes

    def _apply_state(self, state: dict[str, np.ndarray]) -> None:
        self._t = int(np.asarray(state["t"]))
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            m[...] = np.asarray(state[f"m.{i}"])
            v[...] = np.asarray(state[f"v.{i}"])
