"""Weight initialisers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


def xavier_uniform(shape: tuple[int, ...], rng: RandomState = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for dense weight matrices."""
    rng = ensure_rng(rng)
    fan_in = shape[0] if len(shape) > 0 else 1
    fan_out = shape[1] if len(shape) > 1 else fan_in
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def uniform_unit_norm(shape: tuple[int, ...], rng: RandomState = None) -> np.ndarray:
    """Rows drawn uniformly then scaled to unit L2 norm.

    Standard initialisation for translational KG embeddings (TransE, RotatE):
    keeping rows on the unit sphere stabilises the margin loss early on.
    """
    rng = ensure_rng(rng)
    x = rng.uniform(-1.0, 1.0, size=shape)
    norms = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norms, 1e-12)


def identity_with_noise(size: int, noise: float = 0.01, rng: RandomState = None) -> np.ndarray:
    """Identity matrix with small uniform noise.

    Used for the alignment mapping matrices ``A_ent, A_rel, A_cls``: starting
    near the identity means the model initially assumes the two embedding
    spaces are already roughly aligned, which matches how MTransE-style
    transform models are trained in practice.
    """
    rng = ensure_rng(rng)
    return np.eye(size) + rng.uniform(-noise, noise, size=(size, size))
