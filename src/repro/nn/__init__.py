"""Minimal neural-network toolkit on top of :mod:`repro.autograd`.

Provides parameter containers, layers (linear, feed-forward, embedding
tables), initialisers and optimisers.  This is the substrate the KG embedding
models and the joint alignment model are written against, in place of PyTorch.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Embedding, FeedForward, Linear
from repro.nn.init import xavier_uniform, uniform_unit_norm
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Adam",
    "Embedding",
    "FeedForward",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "uniform_unit_norm",
    "xavier_uniform",
]
