"""Layers: embedding tables, linear maps and small feed-forward networks."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.init import uniform_unit_norm, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.utils.rng import RandomState, ensure_rng


class Embedding(Module):
    """A lookup table of ``num_embeddings`` vectors of size ``dim``."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: RandomState = None,
        unit_norm: bool = True,
        name: str = "embedding",
    ) -> None:
        rng = ensure_rng(rng)
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("num_embeddings and dim must be positive")
        init = uniform_unit_norm if unit_norm else xavier_uniform
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init((num_embeddings, dim), rng), name=name)

    def __call__(self, indices: np.ndarray) -> Tensor:
        return self.weight.gather_rows(np.asarray(indices, dtype=np.int64))

    def all(self) -> Tensor:
        """The full table as a tensor (used for whole-vocabulary scoring)."""
        return self.weight

    def renormalize(self) -> None:
        """Project all rows back to the unit sphere (TransE-style constraint)."""
        norms = np.linalg.norm(self.weight.data, axis=1, keepdims=True)
        self.weight.data = self.weight.data / np.maximum(norms, 1e-12)
        # The projection mutates parameters outside the optimiser, so cached
        # forwards / similarity matrices keyed on the version must be dropped.
        self.mark_parameters_mutated()


class Linear(Module):
    """Affine map ``x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RandomState = None,
        name: str = "linear",
    ) -> None:
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng), name=f"{name}.W")
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.b") if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class FeedForward(Module):
    """A small multi-layer perceptron with tanh activations.

    Used as the ``FFNN`` of the entity-class scoring function (Eq. 2): it maps
    entity embeddings from their (possibly non-linear) embedding geometry into
    a linear space where class membership is a subspace condition.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        num_hidden_layers: int = 1,
        rng: RandomState = None,
    ) -> None:
        rng = ensure_rng(rng)
        if num_hidden_layers < 0:
            raise ValueError("num_hidden_layers must be >= 0")
        dims = [in_features] + [hidden_features] * num_hidden_layers + [out_features]
        self.layers = [
            Linear(dims[i], dims[i + 1], rng=rng, name=f"ffnn.{i}") for i in range(len(dims) - 1)
        ]

    def __call__(self, x: Tensor) -> Tensor:
        out = x
        for i, layer in enumerate(self.layers):
            out = layer(out)
            if i < len(self.layers) - 1:
                out = out.tanh()
        return out
