"""Array codecs for KGs and aligned pairs.

Checkpoints store the whole dataset alongside the model state so a pipeline
can be restored on a machine that never saw the original data files.  Every
structure is flattened into NumPy arrays (string vocabularies, ``int64``
index arrays) under a key prefix, so one ``.npz`` holds the full state and
``allow_pickle`` stays off.

Round-trip fidelity matters more than compactness here: vocabulary *order*
defines the integer indexes every other checkpoint section refers to, so the
codecs preserve it exactly, and triples are stored as indexes into those
vocabularies rather than repeated strings.
"""

from __future__ import annotations

import numpy as np

from repro.kg.elements import ElementKind, Triple, TypeTriple
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair, GoldAlignment


def _string_array(values: list[str]) -> np.ndarray:
    return np.asarray(list(values), dtype=np.str_)


def _string_pairs(pairs: list[tuple[str, str]]) -> np.ndarray:
    if not pairs:
        return np.empty((0, 2), dtype=np.str_)
    return np.asarray([list(p) for p in pairs], dtype=np.str_)


def _pair_list(array: np.ndarray) -> list[tuple[str, str]]:
    return [(str(a), str(b)) for a, b in array]


def kg_to_arrays(kg: KnowledgeGraph, prefix: str, arrays: dict[str, np.ndarray]) -> None:
    """Flatten one KG into ``arrays`` under ``prefix``."""
    arrays[f"{prefix}/name"] = np.asarray(kg.name, dtype=np.str_)
    arrays[f"{prefix}/entities"] = _string_array(kg.entities)
    arrays[f"{prefix}/relations"] = _string_array(kg.relations)
    arrays[f"{prefix}/classes"] = _string_array(kg.classes)
    arrays[f"{prefix}/triples"] = kg.triple_array.copy()
    arrays[f"{prefix}/type_triples"] = kg.type_array.copy()


def kg_from_arrays(prefix: str, arrays: dict[str, np.ndarray]) -> KnowledgeGraph:
    """Rebuild a KG flattened by :func:`kg_to_arrays` (vocab order preserved)."""
    entities = [str(e) for e in arrays[f"{prefix}/entities"]]
    relations = [str(r) for r in arrays[f"{prefix}/relations"]]
    classes = [str(c) for c in arrays[f"{prefix}/classes"]]
    triples = [
        Triple(entities[h], relations[r], entities[t])
        for h, r, t in arrays[f"{prefix}/triples"]
    ]
    type_triples = [
        TypeTriple(entities[e], classes[c]) for e, c in arrays[f"{prefix}/type_triples"]
    ]
    return KnowledgeGraph(
        name=str(arrays[f"{prefix}/name"]),
        entities=entities,
        relations=relations,
        classes=classes,
        triples=triples,
        type_triples=type_triples,
    )


def pair_to_arrays(pair: AlignedKGPair, prefix: str, arrays: dict[str, np.ndarray]) -> None:
    """Flatten an aligned pair (KGs, gold alignments, splits) under ``prefix``."""
    arrays[f"{prefix}/name"] = np.asarray(pair.name, dtype=np.str_)
    kg_to_arrays(pair.kg1, f"{prefix}/kg1", arrays)
    kg_to_arrays(pair.kg2, f"{prefix}/kg2", arrays)
    arrays[f"{prefix}/ent_links"] = _string_pairs(pair.entity_alignment.pairs)
    arrays[f"{prefix}/rel_links"] = _string_pairs(pair.relation_alignment.pairs)
    arrays[f"{prefix}/cls_links"] = _string_pairs(pair.class_alignment.pairs)
    arrays[f"{prefix}/train"] = _string_pairs(pair.train_entity_pairs)
    arrays[f"{prefix}/valid"] = _string_pairs(pair.valid_entity_pairs)
    arrays[f"{prefix}/test"] = _string_pairs(pair.test_entity_pairs)


def pair_from_arrays(prefix: str, arrays: dict[str, np.ndarray]) -> AlignedKGPair:
    """Rebuild an aligned pair flattened by :func:`pair_to_arrays`."""
    return AlignedKGPair(
        name=str(arrays[f"{prefix}/name"]),
        kg1=kg_from_arrays(f"{prefix}/kg1", arrays),
        kg2=kg_from_arrays(f"{prefix}/kg2", arrays),
        entity_alignment=GoldAlignment(
            ElementKind.ENTITY, _pair_list(arrays[f"{prefix}/ent_links"])
        ),
        relation_alignment=GoldAlignment(
            ElementKind.RELATION, _pair_list(arrays[f"{prefix}/rel_links"])
        ),
        class_alignment=GoldAlignment(
            ElementKind.CLASS, _pair_list(arrays[f"{prefix}/cls_links"])
        ),
        train_entity_pairs=_pair_list(arrays[f"{prefix}/train"]),
        valid_entity_pairs=_pair_list(arrays[f"{prefix}/valid"]),
        test_entity_pairs=_pair_list(arrays[f"{prefix}/test"]),
    )
