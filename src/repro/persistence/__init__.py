"""Durable snapshots of the DAAKG pipeline.

The checkpoint format (one ``arrays.npz`` + one ``manifest.json`` per
checkpoint directory) captures everything needed to restart a pipeline or an
active-learning campaign bit-exactly: model and optimiser state, labels,
mined potential matches, landmarks, the statistics snapshot, RNG streams and
campaign progress.  High-level entry points are ``DAAKG.save`` /
``DAAKG.load`` and ``ActiveLearningLoop.resume``; this package holds the
format itself.
"""

from repro.persistence.checkpoint import (
    ARRAYS_FILE,
    FORMAT_VERSION,
    MANIFEST_FILE,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    restore_loop,
    restore_pipeline,
    save_checkpoint,
)
from repro.persistence.campaign import (
    CAMPAIGN_MANIFEST_FILE,
    load_campaign,
    save_campaign,
)
from repro.persistence.codec import (
    kg_from_arrays,
    kg_to_arrays,
    pair_from_arrays,
    pair_to_arrays,
)

__all__ = [
    "ARRAYS_FILE",
    "CAMPAIGN_MANIFEST_FILE",
    "Checkpoint",
    "CheckpointError",
    "FORMAT_VERSION",
    "MANIFEST_FILE",
    "kg_from_arrays",
    "kg_to_arrays",
    "load_campaign",
    "load_checkpoint",
    "pair_from_arrays",
    "pair_to_arrays",
    "restore_loop",
    "restore_pipeline",
    "save_campaign",
    "save_checkpoint",
]
