"""Campaign checkpoints: per-partition checkpoints under one manifest.

A partition-parallel campaign checkpoint is a directory::

    campaign.json          # manifest: config, partitioning, piece directory
    dataset.npz            # the *original* aligned pair (encoded once)
    partition_0000/        # a standard DAAKG checkpoint (arrays + manifest)
    partition_0001/
    ...

Each partition directory is a plain :mod:`repro.persistence.checkpoint`
checkpoint of that partition's pipeline (and its active-learning loop when
one has started), so every bit-exactness guarantee of the single-pipeline
format carries over piece by piece.  Pieces that have not started yet are
recorded as ``"pending"`` in the manifest and rebuilt deterministically on
resume (partitioning and per-piece seeds are pure functions of the saved
dataset and configuration).

``load_campaign`` restores the campaign with the partitioning **saved in the
manifest** — environment overrides (``REPRO_PARTITION_COUNT`` …,
``REPRO_CAMPAIGN_EXECUTOR``) are deliberately *not* re-applied, because
resharding a half-finished campaign would silently orphan its per-partition
checkpoints.  The manifest also records the *resolved* executor name
(``"executor"``) that ran the campaign, alongside the configured value kept
inside ``partition_config``, so resumed runs re-use the same backend.
"""

from __future__ import annotations

import io
import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import DAAKGConfig, config_from_dict, config_to_dict
from repro.kg.partition import PartitionConfig
from repro.persistence.checkpoint import (
    CheckpointError,
    _atomic_write_bytes,
    _sha256,
    load_checkpoint,
    restore_loop,
    restore_pipeline,
    save_checkpoint,
)
from repro.persistence.codec import pair_from_arrays, pair_to_arrays
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle with active
    from repro.active.campaign import PartitionedCampaign

logger = get_logger(__name__)

CAMPAIGN_FORMAT_VERSION = 1
CAMPAIGN_MANIFEST_FILE = "campaign.json"
CAMPAIGN_DATASET_FILE = "dataset.npz"


def _piece_dirname(index: int, generation: int) -> str:
    return f"partition_{index:04d}_g{generation}"


def _membership_digest(campaign: "PartitionedCampaign") -> str:
    """SHA-256 over every piece's entity membership (both KG sides, in order).

    For classic campaigns, partitioning is recomputed on load (it is a pure
    function of the dataset and partition config), so any change to the
    partitioner's assignment — even one preserving the piece *count* — must
    be caught, or restored checkpoints would silently pair with the wrong
    sub-pairs.  For incremental campaigns (pieces evolved by deltas) the
    digest instead guards the integrity of the restored pieces themselves.
    The hashing lives on :meth:`KGPairPartition.membership_digest` — the
    same membership surface delta routing reads.
    """
    return campaign.partition.membership_digest()


def _pending_dataset_filename(index: int, generation: int) -> str:
    return f"pending_{index:04d}_g{generation}.npz"


def _piece_ids(names, index_map: dict[str, int]) -> np.ndarray:
    try:
        return np.array([index_map[name] for name in names], dtype=np.int64)
    except KeyError as exc:
        raise CheckpointError(
            f"incremental campaign piece names element {exc.args[0]!r} that is "
            "not in the saved dataset — the checkpoint is inconsistent"
        ) from exc


def _read_manifest(directory: Path) -> dict | None:
    manifest_path = directory / CAMPAIGN_MANIFEST_FILE
    if not manifest_path.is_file():
        return None
    try:
        return json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return None


def save_campaign(path: str | os.PathLike, campaign: "PartitionedCampaign") -> Path:
    """Write a campaign checkpoint (manifest + per-partition dirs) to ``path``.

    Started pieces are checkpointed through the standard single-pipeline
    format; unstarted pieces are marked pending.  Re-saves are crash-safe:
    each save writes its piece checkpoints into a fresh *generation* of
    directories, the manifest (written last, atomically) switches over, and
    only then are the previous generation's directories removed — a crash at
    any point leaves a manifest whose referenced directories are untouched.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    previous = _read_manifest(directory)
    generation = int(previous.get("generation", 0)) + 1 if previous else 0

    arrays: dict[str, np.ndarray] = {}
    pair_to_arrays(campaign.dataset, "dataset", arrays)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    _atomic_write_bytes(directory / CAMPAIGN_DATASET_FILE, payload)

    incremental = bool(getattr(campaign, "incremental", False))
    pieces = []
    for index in range(campaign.num_partitions):
        pipeline = campaign.pipelines[index]
        if pipeline is None:
            entry = {"index": index, "status": "pending"}
            if incremental:
                # an incrementally-evolved piece pair cannot be rebuilt by
                # re-partitioning the dataset, so a pending piece must carry
                # its own pair (saved pieces embed theirs in the checkpoint)
                piece_arrays: dict[str, np.ndarray] = {}
                pair_to_arrays(
                    campaign.partition.pieces[index].pair, "dataset", piece_arrays
                )
                piece_buffer = io.BytesIO()
                np.savez(piece_buffer, **piece_arrays)
                filename = _pending_dataset_filename(index, generation)
                _atomic_write_bytes(directory / filename, piece_buffer.getvalue())
                entry["dataset"] = filename
            pieces.append(entry)
            continue
        dirname = _piece_dirname(index, generation)
        save_checkpoint(directory / dirname, pipeline, loop=campaign.loops[index])
        pieces.append({"index": index, "status": "saved", "directory": dirname})

    manifest = {
        "generation": generation,
        "incremental": incremental,
        "membership_sha256": _membership_digest(campaign),
        "format_version": CAMPAIGN_FORMAT_VERSION,
        "kind": "campaign-checkpoint",
        "config": config_to_dict(campaign.config),
        "partition_config": config_to_dict(campaign.partition_config),
        "active_config": (
            config_to_dict(campaign.active_config)
            if campaign.active_config is not None
            else None
        ),
        "strategy": campaign.strategy,
        "executor": campaign.executor_name,
        "num_partitions": campaign.num_partitions,
        "partition_summary": campaign.partition.summary(),
        "pieces": pieces,
        "dataset": {"file": CAMPAIGN_DATASET_FILE, "sha256": _sha256(payload)},
    }
    _atomic_write_bytes(
        directory / CAMPAIGN_MANIFEST_FILE,
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )
    # the new manifest is durable: every partition directory it does not
    # reference is garbage — including generations orphaned by a crash
    # between an earlier manifest write and its cleanup
    current = {p["directory"] for p in pieces if p.get("directory")}
    for stale in directory.glob("partition_*"):
        if stale.is_dir() and stale.name not in current:
            shutil.rmtree(stale, ignore_errors=True)
    current_datasets = {p["dataset"] for p in pieces if p.get("dataset")}
    for stale_file in directory.glob("pending_*.npz"):
        if stale_file.name not in current_datasets:
            stale_file.unlink(missing_ok=True)
    logger.info(
        "campaign checkpoint written to %s (%d pieces, %d saved, generation %d)",
        directory,
        len(pieces),
        sum(1 for p in pieces if p["status"] == "saved"),
        generation,
    )
    return directory


def load_campaign(path: str | os.PathLike) -> "PartitionedCampaign":
    """Restore a campaign written by :func:`save_campaign`.

    The returned campaign's ``run()`` resumes every piece at its first
    uncompleted batch; pending pieces start from scratch with their original
    deterministic seeds.
    """
    from repro.active.campaign import PartitionedCampaign  # circular at module level

    directory = Path(path)
    manifest_path = directory / CAMPAIGN_MANIFEST_FILE
    if not manifest_path.is_file():
        raise CheckpointError(f"no campaign manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt campaign manifest at {manifest_path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != CAMPAIGN_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported campaign format version {version!r} "
            f"(this build reads {CAMPAIGN_FORMAT_VERSION})"
        )

    dataset_path = directory / manifest["dataset"]["file"]
    payload = dataset_path.read_bytes()
    expected = manifest["dataset"]["sha256"]
    actual = _sha256(payload)
    if expected != actual:
        raise CheckpointError(
            f"campaign dataset hash mismatch for {dataset_path}: "
            f"manifest says {expected}, file is {actual}"
        )
    with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
        arrays = {key: npz[key] for key in npz.files}
    pair = pair_from_arrays("dataset", arrays)

    from repro.active.loop import ActiveLearningConfig  # circular at module level

    config = config_from_dict(DAAKGConfig, manifest["config"])
    partition_config = config_from_dict(PartitionConfig, manifest["partition_config"])
    active_config = (
        config_from_dict(ActiveLearningConfig, manifest["active_config"])
        if manifest.get("active_config") is not None
        else None
    )
    incremental = bool(manifest.get("incremental", False))
    restored: dict[int, tuple] = {}
    partition_state = None
    if incremental:
        # Incremental campaigns cannot be re-partitioned: their piece pairs
        # were evolved by deltas.  Each saved piece's pair is embedded
        # (bit-exactly) in its own checkpoint; pending pieces carry theirs
        # as a sidecar npz.  The local→global id maps are recomputed from
        # names — valid because delta application keeps every vocabulary
        # append-only on both the global and the piece pairs.
        from repro.kg.partition import KGPairPartition, PartitionPiece

        pieces_state = []
        for piece in sorted(manifest["pieces"], key=lambda p: int(p["index"])):
            index = int(piece["index"])
            if piece["status"] == "saved":
                checkpoint = load_checkpoint(directory / piece["directory"])
                if checkpoint.has_loop:
                    loop = restore_loop(checkpoint)
                    restored[index] = (loop.daakg, loop)
                else:
                    restored[index] = (restore_pipeline(checkpoint), None)
                piece_pair = restored[index][0].dataset
            elif piece.get("dataset"):
                piece_payload = (directory / piece["dataset"]).read_bytes()
                with np.load(io.BytesIO(piece_payload), allow_pickle=False) as npz:
                    piece_arrays = {key: npz[key] for key in npz.files}
                piece_pair = pair_from_arrays("dataset", piece_arrays)
            else:
                raise CheckpointError(
                    f"incremental campaign piece {index} is pending but has no "
                    "saved dataset — the checkpoint predates its last update"
                )
            if int(manifest["num_partitions"]) == 1:
                piece_pair = pair  # identity piece: bit-exact monolithic contract
            pieces_state.append(
                PartitionPiece(
                    index=index,
                    pair=piece_pair,
                    entity_ids_1=_piece_ids(piece_pair.kg1.entities, pair.kg1.entity_index),
                    entity_ids_2=_piece_ids(piece_pair.kg2.entities, pair.kg2.entity_index),
                    relation_ids_1=_piece_ids(
                        piece_pair.kg1.relations, pair.kg1.relation_index
                    ),
                    relation_ids_2=_piece_ids(
                        piece_pair.kg2.relations, pair.kg2.relation_index
                    ),
                    class_ids_1=_piece_ids(piece_pair.kg1.classes, pair.kg1.class_index),
                    class_ids_2=_piece_ids(piece_pair.kg2.classes, pair.kg2.class_index),
                )
            )
        summary = manifest.get("partition_summary", {})
        partition_state = KGPairPartition(
            source=pair,
            config=partition_config,
            pieces=pieces_state,
            cut_weight_fraction=float(summary.get("cut_weight_fraction", 0.0)),
            rho_satisfied_fraction=float(summary.get("rho_satisfied_fraction", 1.0)),
        )

    campaign = PartitionedCampaign(
        pair,
        config,
        strategy=manifest["strategy"],
        active_config=active_config,
        partition=partition_config,
        resolve_env=False,
        partition_state=partition_state,
    )
    if campaign.num_partitions != int(manifest["num_partitions"]):
        raise CheckpointError(
            "campaign repartitioning mismatch: manifest says "
            f"{manifest['num_partitions']} pieces, partitioner produced "
            f"{campaign.num_partitions}"
        )
    saved_membership = manifest.get("membership_sha256")
    if saved_membership is not None and saved_membership != _membership_digest(campaign):
        raise CheckpointError(
            "campaign partition membership mismatch: this build's partitioner "
            "assigns entities differently than the one that wrote the "
            "checkpoint, so the saved per-partition states cannot be safely "
            "reattached"
        )

    if incremental:
        for index, (pipeline, loop) in restored.items():
            campaign.pipelines[index] = pipeline
            campaign.loops[index] = loop
        return campaign

    for piece in manifest["pieces"]:
        index = int(piece["index"])
        if piece["status"] != "saved":
            continue
        checkpoint = load_checkpoint(directory / piece["directory"])
        if checkpoint.has_loop:
            loop = restore_loop(checkpoint)
            campaign.loops[index] = loop
            campaign.pipelines[index] = loop.daakg
        else:
            campaign.pipelines[index] = restore_pipeline(checkpoint)
    return campaign
