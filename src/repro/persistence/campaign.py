"""Campaign checkpoints: per-partition checkpoints under one manifest.

A partition-parallel campaign checkpoint is a directory::

    campaign.json          # manifest: config, partitioning, piece directory
    dataset.npz            # the *original* aligned pair (encoded once)
    partition_0000/        # a standard DAAKG checkpoint (arrays + manifest)
    partition_0001/
    ...

Each partition directory is a plain :mod:`repro.persistence.checkpoint`
checkpoint of that partition's pipeline (and its active-learning loop when
one has started), so every bit-exactness guarantee of the single-pipeline
format carries over piece by piece.  Pieces that have not started yet are
recorded as ``"pending"`` in the manifest and rebuilt deterministically on
resume (partitioning and per-piece seeds are pure functions of the saved
dataset and configuration).

``load_campaign`` restores the campaign with the partitioning **saved in the
manifest** — environment overrides (``REPRO_PARTITION_COUNT`` …,
``REPRO_CAMPAIGN_EXECUTOR``) are deliberately *not* re-applied, because
resharding a half-finished campaign would silently orphan its per-partition
checkpoints.  The manifest also records the *resolved* executor name
(``"executor"``) that ran the campaign, alongside the configured value kept
inside ``partition_config``, so resumed runs re-use the same backend.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import DAAKGConfig, config_from_dict, config_to_dict
from repro.kg.partition import PartitionConfig
from repro.persistence.checkpoint import (
    CheckpointError,
    _atomic_write_bytes,
    _sha256,
    load_checkpoint,
    restore_loop,
    restore_pipeline,
    save_checkpoint,
)
from repro.persistence.codec import pair_from_arrays, pair_to_arrays
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle with active
    from repro.active.campaign import PartitionedCampaign

logger = get_logger(__name__)

CAMPAIGN_FORMAT_VERSION = 1
CAMPAIGN_MANIFEST_FILE = "campaign.json"
CAMPAIGN_DATASET_FILE = "dataset.npz"


def _piece_dirname(index: int, generation: int) -> str:
    return f"partition_{index:04d}_g{generation}"


def _membership_digest(campaign: "PartitionedCampaign") -> str:
    """SHA-256 over every piece's entity membership (both KG sides, in order).

    Partitioning is recomputed on load (it is a pure function of the dataset
    and partition config), so any future change to the partitioner's
    assignment — even one preserving the piece *count* — must be caught, or
    restored checkpoints would silently pair with the wrong sub-pairs.
    """
    digest = hashlib.sha256()
    for piece in campaign.partition.pieces:
        digest.update(b"\x00piece\x00")
        for name in piece.pair.kg1.entities:
            digest.update(name.encode("utf-8") + b"\x00")
        digest.update(b"\x00side\x00")
        for name in piece.pair.kg2.entities:
            digest.update(name.encode("utf-8") + b"\x00")
    return digest.hexdigest()


def _read_manifest(directory: Path) -> dict | None:
    manifest_path = directory / CAMPAIGN_MANIFEST_FILE
    if not manifest_path.is_file():
        return None
    try:
        return json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return None


def save_campaign(path: str | os.PathLike, campaign: "PartitionedCampaign") -> Path:
    """Write a campaign checkpoint (manifest + per-partition dirs) to ``path``.

    Started pieces are checkpointed through the standard single-pipeline
    format; unstarted pieces are marked pending.  Re-saves are crash-safe:
    each save writes its piece checkpoints into a fresh *generation* of
    directories, the manifest (written last, atomically) switches over, and
    only then are the previous generation's directories removed — a crash at
    any point leaves a manifest whose referenced directories are untouched.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    previous = _read_manifest(directory)
    generation = int(previous.get("generation", 0)) + 1 if previous else 0

    arrays: dict[str, np.ndarray] = {}
    pair_to_arrays(campaign.dataset, "dataset", arrays)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    _atomic_write_bytes(directory / CAMPAIGN_DATASET_FILE, payload)

    pieces = []
    for index in range(campaign.num_partitions):
        pipeline = campaign.pipelines[index]
        if pipeline is None:
            pieces.append({"index": index, "status": "pending"})
            continue
        dirname = _piece_dirname(index, generation)
        save_checkpoint(directory / dirname, pipeline, loop=campaign.loops[index])
        pieces.append({"index": index, "status": "saved", "directory": dirname})

    manifest = {
        "generation": generation,
        "membership_sha256": _membership_digest(campaign),
        "format_version": CAMPAIGN_FORMAT_VERSION,
        "kind": "campaign-checkpoint",
        "config": config_to_dict(campaign.config),
        "partition_config": config_to_dict(campaign.partition_config),
        "active_config": (
            config_to_dict(campaign.active_config)
            if campaign.active_config is not None
            else None
        ),
        "strategy": campaign.strategy,
        "executor": campaign.executor_name,
        "num_partitions": campaign.num_partitions,
        "partition_summary": campaign.partition.summary(),
        "pieces": pieces,
        "dataset": {"file": CAMPAIGN_DATASET_FILE, "sha256": _sha256(payload)},
    }
    _atomic_write_bytes(
        directory / CAMPAIGN_MANIFEST_FILE,
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )
    # the new manifest is durable: every partition directory it does not
    # reference is garbage — including generations orphaned by a crash
    # between an earlier manifest write and its cleanup
    current = {p["directory"] for p in pieces if p.get("directory")}
    for stale in directory.glob("partition_*"):
        if stale.is_dir() and stale.name not in current:
            shutil.rmtree(stale, ignore_errors=True)
    logger.info(
        "campaign checkpoint written to %s (%d pieces, %d saved, generation %d)",
        directory,
        len(pieces),
        sum(1 for p in pieces if p["status"] == "saved"),
        generation,
    )
    return directory


def load_campaign(path: str | os.PathLike) -> "PartitionedCampaign":
    """Restore a campaign written by :func:`save_campaign`.

    The returned campaign's ``run()`` resumes every piece at its first
    uncompleted batch; pending pieces start from scratch with their original
    deterministic seeds.
    """
    from repro.active.campaign import PartitionedCampaign  # circular at module level

    directory = Path(path)
    manifest_path = directory / CAMPAIGN_MANIFEST_FILE
    if not manifest_path.is_file():
        raise CheckpointError(f"no campaign manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt campaign manifest at {manifest_path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != CAMPAIGN_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported campaign format version {version!r} "
            f"(this build reads {CAMPAIGN_FORMAT_VERSION})"
        )

    dataset_path = directory / manifest["dataset"]["file"]
    payload = dataset_path.read_bytes()
    expected = manifest["dataset"]["sha256"]
    actual = _sha256(payload)
    if expected != actual:
        raise CheckpointError(
            f"campaign dataset hash mismatch for {dataset_path}: "
            f"manifest says {expected}, file is {actual}"
        )
    with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
        arrays = {key: npz[key] for key in npz.files}
    pair = pair_from_arrays("dataset", arrays)

    from repro.active.loop import ActiveLearningConfig  # circular at module level

    config = config_from_dict(DAAKGConfig, manifest["config"])
    partition_config = config_from_dict(PartitionConfig, manifest["partition_config"])
    active_config = (
        config_from_dict(ActiveLearningConfig, manifest["active_config"])
        if manifest.get("active_config") is not None
        else None
    )
    campaign = PartitionedCampaign(
        pair,
        config,
        strategy=manifest["strategy"],
        active_config=active_config,
        partition=partition_config,
        resolve_env=False,
    )
    if campaign.num_partitions != int(manifest["num_partitions"]):
        raise CheckpointError(
            "campaign repartitioning mismatch: manifest says "
            f"{manifest['num_partitions']} pieces, partitioner produced "
            f"{campaign.num_partitions}"
        )
    saved_membership = manifest.get("membership_sha256")
    if saved_membership is not None and saved_membership != _membership_digest(campaign):
        raise CheckpointError(
            "campaign partition membership mismatch: this build's partitioner "
            "assigns entities differently than the one that wrote the "
            "checkpoint, so the saved per-partition states cannot be safely "
            "reattached"
        )

    for piece in manifest["pieces"]:
        index = int(piece["index"])
        if piece["status"] != "saved":
            continue
        checkpoint = load_checkpoint(directory / piece["directory"])
        if checkpoint.has_loop:
            loop = restore_loop(checkpoint)
            campaign.loops[index] = loop
            campaign.pipelines[index] = loop.daakg
        else:
            campaign.pipelines[index] = restore_pipeline(checkpoint)
    return campaign
