"""Versioned checkpoints for the whole DAAKG pipeline.

A checkpoint is a directory holding exactly two files:

* ``arrays.npz`` — every array of the pipeline state: the dataset (via
  :mod:`repro.persistence.codec`), the joint model's ``state_dict``, the
  optimiser's moment buffers and step count, the labelled
  :class:`~repro.alignment.trainer.LabelStore`, mined potential matches,
  landmarks, the model's :class:`~repro.alignment.model.AlignmentSnapshot`,
  and (for campaign checkpoints) the frozen element-pair pool.
* ``manifest.json`` — format version, the full :class:`DAAKGConfig`, RNG
  bit-generator states, active-loop progress (records, budget counters,
  strategy), and the SHA-256 of ``arrays.npz`` so a truncated or mismatched
  pair of files is rejected at load time.

Restoration is *bit-exact*: ``DAAKG.save`` → ``DAAKG.load`` → ``evaluate()``
reproduces the in-memory scores exactly, and a campaign resumed from an
autosave produces the same :class:`ActiveLearningRecord` sequence as the
uninterrupted run.  The parts of the pipeline that are pure functions of the
saved state (similarity matrices, the structural propagation channel, hard
negative tables, forward sessions) are deliberately **not** stored — they are
recomputed on first use from restored inputs, which yields the identical
floats at a fraction of the checkpoint size.

Both files are written via temp-file + ``os.replace``, and the manifest (which
names the array file's hash) is written last, so a crash mid-save leaves
either the previous consistent checkpoint or a detectably broken one — never
a silently corrupt state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.alignment.evaluation import AlignmentScores
from repro.alignment.model import AlignmentSnapshot
from repro.alignment.semi_supervised import PotentialMatch
from repro.core.config import DAAKGConfig, config_from_dict, config_to_dict
from repro.inference.pairs import ElementPair
from repro.kg.elements import ElementKind
from repro.persistence.codec import pair_from_arrays, pair_to_arrays
from repro.utils.logging import get_logger
from repro.utils.rng import get_rng_state, set_rng_state

if TYPE_CHECKING:  # pragma: no cover - import cycle with core/active
    from repro.active.loop import ActiveLearningLoop
    from repro.core.daakg import DAAKG

logger = get_logger(__name__)

FORMAT_VERSION = 1
ARRAYS_FILE = "arrays.npz"
MANIFEST_FILE = "manifest.json"

_KINDS = (ElementKind.ENTITY, ElementKind.RELATION, ElementKind.CLASS)
_SNAPSHOT_FIELDS = tuple(f.name for f in dataclasses.fields(AlignmentSnapshot))


class CheckpointError(RuntimeError):
    """Raised for unreadable, corrupt or incompatible checkpoints."""


@dataclass
class Checkpoint:
    """A loaded checkpoint: the parsed manifest plus all arrays, in memory."""

    manifest: dict
    arrays: dict[str, np.ndarray]
    path: Path | None = None

    @property
    def config(self) -> DAAKGConfig:
        return DAAKGConfig.from_dict(self.manifest["config"])

    @property
    def has_loop(self) -> bool:
        return "loop" in self.manifest

    def section(self, prefix: str) -> dict[str, np.ndarray]:
        """All arrays under ``prefix/``, with the prefix stripped."""
        start = prefix + "/"
        return {k[len(start):]: v for k, v in self.arrays.items() if k.startswith(start)}


# --------------------------------------------------------------------- helpers
def _atomic_write_bytes(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _scores_to_dict(scores: AlignmentScores) -> dict:
    return dataclasses.asdict(scores)


def _scores_from_dict(data: dict) -> AlignmentScores:
    return AlignmentScores(**data)


def _record_to_dict(record) -> dict:
    return {
        "batch_index": record.batch_index,
        "labels_used": record.labels_used,
        "matches_labelled": record.matches_labelled,
        "match_fraction": record.match_fraction,
        "entity_scores": _scores_to_dict(record.entity_scores),
        "relation_scores": _scores_to_dict(record.relation_scores),
        "class_scores": _scores_to_dict(record.class_scores),
        "seconds": record.seconds,
        "selected": [[p.kind.value, p.left, p.right] for p in record.selected],
    }


def _record_from_dict(data: dict):
    from repro.active.loop import ActiveLearningRecord  # circular at module level

    return ActiveLearningRecord(
        batch_index=data["batch_index"],
        labels_used=data["labels_used"],
        matches_labelled=data["matches_labelled"],
        match_fraction=data["match_fraction"],
        entity_scores=_scores_from_dict(data["entity_scores"]),
        relation_scores=_scores_from_dict(data["relation_scores"]),
        class_scores=_scores_from_dict(data["class_scores"]),
        seconds=data["seconds"],
        selected=[
            ElementPair(ElementKind(kind), int(left), int(right))
            for kind, left, right in data["selected"]
        ],
    )


def _strategy_spec(strategy) -> dict:
    """Everything needed to rebuild a registry strategy, configs included.

    Dropping the selection/partition configs here would silently resume a
    ``daakg`` campaign with *default* selection settings — divergent batches
    with no error — so they are serialised whenever the strategy carries them.
    """
    spec: dict = {"name": strategy.name}
    algorithm = getattr(strategy, "algorithm", None)
    if algorithm is not None:
        spec["algorithm"] = algorithm
    for key in ("selection_config", "partition_config"):
        value = getattr(strategy, key, None)
        if value is not None:
            spec[key] = config_to_dict(value)
    return spec


def _strategy_from_spec(spec: dict):
    from repro.active.partition import PartitionSelectionConfig
    from repro.active.selection import GreedySelectionConfig
    from repro.active.strategies import create_strategy

    spec = dict(spec)
    name = spec.pop("name")
    if "selection_config" in spec:
        spec["selection_config"] = config_from_dict(
            GreedySelectionConfig, spec["selection_config"]
        )
    if "partition_config" in spec:
        spec["partition_config"] = config_from_dict(
            PartitionSelectionConfig, spec["partition_config"]
        )
    return create_strategy(name, **spec)


def _pairs_array(pairs: list[tuple[int, int]]) -> np.ndarray:
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)


# ------------------------------------------------------------------------ save
def save_checkpoint(path: str | os.PathLike, daakg: "DAAKG", loop: "ActiveLearningLoop | None" = None) -> Path:
    """Write a checkpoint of ``daakg`` (and optionally a campaign) to ``path``.

    ``path`` is created as a directory; an existing checkpoint there is
    replaced atomically.  Returns the checkpoint path.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    # The dataset is immutable for the lifetime of a pipeline, but encoding
    # it dominates checkpoint CPU on large KGs; per-batch autosaves would pay
    # it over and over, so the encoded arrays are memoized on the pipeline.
    cached = getattr(daakg, "_dataset_arrays", None)
    if cached is None or cached[0] is not daakg.dataset:
        encoded: dict[str, np.ndarray] = {}
        pair_to_arrays(daakg.dataset, "dataset", encoded)
        cached = (daakg.dataset, encoded)
        daakg._dataset_arrays = cached
    arrays.update(cached[1])
    for key, value in daakg.model.state_dict().items():
        arrays[f"model/{key}"] = value
    for key, value in daakg.trainer.optimizer.state_dict().items():
        arrays[f"optim/{key}"] = value
    labels = daakg.trainer.labels
    for kind in _KINDS:
        arrays[f"labels/{kind.value}/matches"] = _pairs_array(labels.matches[kind])
        arrays[f"labels/{kind.value}/non_matches"] = _pairs_array(labels.non_matches[kind])
        mined = daakg.trainer._semi[kind]
        arrays[f"semi/{kind.value}/pairs"] = _pairs_array([(m.left, m.right) for m in mined])
        arrays[f"semi/{kind.value}/soft"] = np.asarray(
            [m.soft_label for m in mined], dtype=np.float64
        )
    arrays["landmarks"] = daakg.model._landmarks.copy()
    snapshot = daakg.model._snapshot
    if snapshot is not None:
        for name in _SNAPSHOT_FIELDS:
            arrays[f"snapshot/{name}"] = getattr(snapshot, name)
    # Similarity-backend state: the backend kind plus any top-k tables that
    # are valid for the current version token.  On restore (which is
    # bit-exact) the tables seed the engine's cache — the sharded backend's
    # expensive streamed top-k passes resume for free.
    engine = daakg.model.similarity
    if snapshot is not None:
        for key, value in engine.export_top_k_arrays().items():
            arrays[f"topk/{key}"] = value

    manifest: dict = {
        "format_version": FORMAT_VERSION,
        "kind": "daakg-checkpoint",
        "similarity_backend": engine.backend_name,
        # ANN indexes are *derived* state — cached per engine version token
        # and rebuilt on demand after restore — so only the knobs that shaped
        # any saved top-k tables are stamped, never the indexes themselves
        # (a checkpointed index could silently go stale against the arrays).
        "similarity_ann": dataclasses.asdict(engine.ann_params),
        "config": config_to_dict(daakg.config),
        "fitted": daakg.is_fitted,
        "training_seconds": daakg.training_time.elapsed,
        "loss_history": list(daakg.trainer.loss_history),
        "has_snapshot": snapshot is not None,
        "snapshot_version": daakg.model.snapshot_version,
        "landmark_version": daakg.model.landmark_version,
        "rng": {
            "main": get_rng_state(daakg.rng),
            "model1": get_rng_state(daakg.embedding_model_1.rng),
            "model2": get_rng_state(daakg.embedding_model_2.rng),
        },
    }

    if loop is not None:
        pool = loop._pool
        if pool is not None:
            for name, pairs in (
                ("entity", pool.entity_pairs),
                ("relation", pool.relation_pairs),
                ("class", pool.class_pairs),
            ):
                arrays[f"pool/{name}"] = _pairs_array([(p.left, p.right) for p in pairs])
        manifest["loop"] = {
            "config": config_to_dict(loop.config),
            "strategy": _strategy_spec(loop.strategy),
            "next_batch": loop._next_batch,
            "oracle_questions": loop.oracle.questions_asked,
            "autosave_path": str(loop.autosave_path) if loop.autosave_path else None,
            "has_pool": pool is not None,
            "records": [_record_to_dict(r) for r in loop.records],
        }

    # arrays first, manifest (holding their hash) last: a crash in between
    # leaves a manifest that still describes the previous arrays — detectable.
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    _atomic_write_bytes(directory / ARRAYS_FILE, payload)
    manifest["arrays"] = {
        "file": ARRAYS_FILE,
        "sha256": _sha256(payload),
        "count": len(arrays),
    }
    _atomic_write_bytes(
        directory / MANIFEST_FILE,
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )
    logger.info("checkpoint written to %s (%d arrays)", directory, len(arrays))
    return directory


# ------------------------------------------------------------------------ load
def load_checkpoint(path: str | os.PathLike, verify: bool = True) -> Checkpoint:
    """Read a checkpoint directory into memory, verifying its content hash."""
    directory = Path(path)
    manifest_path = directory / MANIFEST_FILE
    if not manifest_path.is_file():
        raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint manifest at {manifest_path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {version!r} (this build reads {FORMAT_VERSION})"
        )
    arrays_path = directory / manifest.get("arrays", {}).get("file", ARRAYS_FILE)
    if not arrays_path.is_file():
        raise CheckpointError(f"checkpoint arrays file missing: {arrays_path}")
    payload = arrays_path.read_bytes()
    if verify:
        expected = manifest.get("arrays", {}).get("sha256")
        actual = _sha256(payload)
        if expected != actual:
            raise CheckpointError(
                f"checkpoint arrays hash mismatch for {arrays_path}: "
                f"manifest says {expected}, file is {actual}"
            )
    with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
        arrays = {key: npz[key] for key in npz.files}
    return Checkpoint(manifest=manifest, arrays=arrays, path=directory)


# --------------------------------------------------------------------- restore
def restore_pipeline(checkpoint: Checkpoint) -> "DAAKG":
    """Rebuild a fitted :class:`DAAKG` pipeline from a loaded checkpoint.

    The pipeline is constructed normally from the saved dataset and config
    (which fixes all object topology — parameter order, weight sharing), then
    every piece of mutable state is overwritten with the saved arrays, and
    the RNG streams are rewound to their saved positions *last* so that the
    reconstruction draws cannot perturb them.
    """
    from repro.core.daakg import DAAKG  # circular at module level

    manifest = checkpoint.manifest
    config = checkpoint.config
    pair = pair_from_arrays("dataset", checkpoint.arrays)
    daakg = DAAKG(pair, config)

    daakg.model.load_state_dict(checkpoint.section("model"), strict=True)
    daakg.trainer.optimizer.load_state_dict(checkpoint.section("optim"))

    trainer = daakg.trainer
    for kind in _KINDS:
        for left, right in checkpoint.arrays[f"labels/{kind.value}/matches"]:
            trainer.labels.add(kind, (int(left), int(right)), True)
        for left, right in checkpoint.arrays[f"labels/{kind.value}/non_matches"]:
            trainer.labels.add(kind, (int(left), int(right)), False)
        mined_pairs = checkpoint.arrays[f"semi/{kind.value}/pairs"]
        mined_soft = checkpoint.arrays[f"semi/{kind.value}/soft"]
        trainer._semi[kind] = [
            PotentialMatch(int(left), int(right), float(soft))
            for (left, right), soft in zip(mined_pairs, mined_soft)
        ]
    trainer.loss_history = list(manifest.get("loss_history", []))

    daakg.model.set_landmarks(checkpoint.arrays["landmarks"])
    if manifest.get("has_snapshot"):
        daakg.model._snapshot = AlignmentSnapshot(
            **{name: checkpoint.arrays[f"snapshot/{name}"] for name in _SNAPSHOT_FIELDS}
        )
    daakg.model._snapshot_version = int(manifest.get("snapshot_version", 0))
    daakg.model._landmark_version = int(manifest.get("landmark_version", 0))
    engine = daakg.model.similarity
    engine.invalidate()
    # Re-seed saved top-k tables when the restored engine runs the same
    # backend kind the checkpoint was written with (restoration is bit-exact,
    # so the tables describe exactly the restored similarity state).  ANN
    # tables additionally require matching knobs — on the ANN backend the
    # table content depends on the probe configuration, and a manifest
    # predating the stamp cannot prove a match.  The ANN *indexes* are never
    # in the checkpoint: they are derived state, rebuilt lazily under the
    # restored engine's version token on first query.
    same_backend = manifest.get("similarity_backend") == engine.backend_name
    if same_backend and engine.backend_name == "ann":
        same_backend = manifest.get("similarity_ann") == dataclasses.asdict(engine.ann_params)
    if same_backend and manifest.get("has_snapshot"):
        topk = checkpoint.section("topk")
        if topk:
            engine.seed_top_k_arrays(topk)

    daakg._fitted = bool(manifest.get("fitted", False))
    daakg.training_time.elapsed = float(manifest.get("training_seconds", 0.0))

    rng_states = manifest["rng"]
    set_rng_state(daakg.rng, rng_states["main"])
    set_rng_state(daakg.embedding_model_1.rng, rng_states["model1"])
    set_rng_state(daakg.embedding_model_2.rng, rng_states["model2"])
    return daakg


def restore_loop(
    checkpoint: Checkpoint,
    daakg: "DAAKG | None" = None,
    strategy=None,
) -> "ActiveLearningLoop":
    """Rebuild an active-learning campaign from a loaded checkpoint.

    ``daakg`` defaults to :func:`restore_pipeline` on the same checkpoint;
    ``strategy`` overrides the saved strategy spec (needed when the campaign
    used a custom strategy class outside the registry).  The returned loop's
    ``run()`` continues at the first batch the checkpoint had not completed.
    """
    from repro.active.loop import ActiveLearningConfig  # circular at module level
    from repro.active.pool import ElementPairPool
    from repro.inference.pairs import class_pair, entity_pair, relation_pair

    if not checkpoint.has_loop:
        raise CheckpointError("checkpoint holds no active-learning campaign state")
    if daakg is None:
        daakg = restore_pipeline(checkpoint)
    section = checkpoint.manifest["loop"]
    loop_config = config_from_dict(ActiveLearningConfig, section["config"])
    if strategy is None:
        strategy = _strategy_from_spec(section["strategy"])
    loop = daakg.active_learning(strategy, loop_config)
    loop.oracle.questions_asked = int(section["oracle_questions"])
    loop._next_batch = int(section["next_batch"])
    loop.records = [_record_from_dict(r) for r in section["records"]]
    loop.autosave_path = section.get("autosave_path")
    if section.get("has_pool"):
        builders = {"entity": entity_pair, "relation": relation_pair, "class": class_pair}
        pools = {
            name: tuple(
                build(int(left), int(right))
                for left, right in checkpoint.arrays[f"pool/{name}"]
            )
            for name, build in builders.items()
        }
        loop._pool = ElementPairPool(pools["entity"], pools["relation"], pools["class"])
    return loop
