"""Reverse-mode autograd :class:`Tensor`.

The implementation follows the classic tape-less design: every operation
returns a new ``Tensor`` holding its parents and a ``_backward`` closure that
propagates the output gradient to the parents.  Calling :meth:`Tensor.backward`
topologically sorts the graph and runs the closures in reverse order.

Gradient correctness is what everything downstream (embedding training, the
joint alignment model, gradient-based inference power) rests on, so the
test-suite checks every op against central finite differences.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Grad mode is *thread-local*: the partition-parallel campaign runtime trains
# independent models on a worker pool, and a ``no_grad`` block in one worker
# must never switch off graph recording in another (a plain module global did
# exactly that).  Single-threaded behaviour is unchanged.
_grad_state = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph (this thread)."""
    return getattr(_grad_state, "enabled", True)


def _scatter_add_rows(template: np.ndarray, indices: np.ndarray, grad: np.ndarray) -> np.ndarray:
    """Zeros shaped like ``template`` with ``grad`` rows added at ``indices``.

    Bit-exact with ``np.add.at(zeros, indices, grad)`` but several times
    faster on the embedding-gradient workloads that dominate training: each
    column is accumulated by ``np.bincount``, whose tight C loop adds
    contributions sequentially in occurrence order — the same association
    order ``np.add.at`` uses — without the buffered fancy-indexing overhead.
    (The previous sort + ``np.add.reduceat`` grouping was *not* bit-exact:
    reduceat's reduction order is unspecified for groups of three or more.)
    """
    full = np.zeros_like(template)
    if indices.size == 0:
        return full
    grad = np.asarray(grad, dtype=np.float64)
    # normalise negative indices so -1 and len-1 accumulate into the same row
    indices = np.where(indices < 0, indices + template.shape[0], indices)
    num_rows = template.shape[0]
    flat_full = full.reshape(num_rows, -1)
    flat_grad = np.ascontiguousarray(grad.reshape(indices.shape[0], -1))
    for column in range(flat_full.shape[1]):
        flat_full[:, column] = np.bincount(
            indices, weights=flat_grad[:, column], minlength=num_rows
        )
    return full


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (the reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # make numpy defer to Tensor for mixed ops

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------- properties
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy); treat as read-only."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing the data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # -------------------------------------------------------------- graph core
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor (must be scalar unless ``grad`` given)."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        # Topological order of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        try:
            for node in reversed(topo):
                if node._backward is not None and node.grad is not None:
                    node._backward(node.grad)
        finally:
            # Interior (operation-node) gradients are transient: only leaves
            # keep theirs across backward calls.  Clearing them — even when a
            # closure raises part-way — lets a retained graph (e.g. a cached
            # forward session shared by several losses) be backward-ed
            # repeatedly without double-counting an earlier pass.
            for node in topo:
                if node._backward is not None:
                    node.grad = None

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike | "Tensor") -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike | "Tensor") -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data**2))

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike | "Tensor") -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad, dtype=np.float64)
            a, b = self.data, other_t.data
            if self.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    ga = g * b
                elif a.ndim == 1:
                    ga = g @ b.T
                elif b.ndim == 1:
                    ga = np.outer(g, b)
                else:
                    ga = g @ np.swapaxes(b, -1, -2)
                self._accumulate(ga)
            if other_t.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    gb = g * a
                elif a.ndim == 1:
                    gb = np.outer(a, g)
                elif b.ndim == 1:
                    gb = a.T @ g
                else:
                    gb = np.swapaxes(a, -1, -2) @ g
                other_t._accumulate(gb)

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------- reductions
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for a in axes:
                count *= self.data.shape[a]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def norm(self, axis: int | None = None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """L2 norm along ``axis`` (all elements when ``axis`` is None)."""
        sq = (self * self).sum(axis=axis, keepdims=keepdims)
        return (sq + eps) ** 0.5

    def max(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(np.float64)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ---------------------------------------------------------- element-wise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self, eps: float = 1e-12) -> "Tensor":
        clipped = np.maximum(self.data, eps)
        out_data = np.log(clipped)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / clipped)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward)

    def clamp_min(self, minimum: float) -> "Tensor":
        """Hinge ``max(x, minimum)`` — used for margin losses ``|·|_+``."""
        mask = (self.data > minimum).astype(np.float64)
        out_data = np.maximum(self.data, minimum)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ----------------------------------------------------------- shape / index
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).T)

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        # 1-D integer-array indices are row lookups: delegate to gather_rows
        # so they share its scatter-add fast path; everything else (slices,
        # tuples, masks) keeps the generic np.add.at backward.
        if isinstance(index, (np.ndarray, list)):
            candidate = np.asarray(index)
            if candidate.ndim == 1 and candidate.dtype.kind in "iu":
                return self.gather_rows(candidate)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup ``self[indices]`` with scatter-add backward (embeddings)."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if indices.ndim == 1:
                    full = _scatter_add_rows(self.data, indices, grad)
                else:
                    full = np.zeros_like(self.data)
                    np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

def as_tensor(value: ArrayLike | Tensor) -> Tensor:
    """Wrap ``value`` into a non-differentiable Tensor when needed."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Public constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
