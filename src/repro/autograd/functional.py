"""Composite differentiable operations built on :class:`~repro.autograd.tensor.Tensor`.

These are the building blocks the embedding and alignment models share:
scatter-add aggregation (graph message passing), row-wise norms and cosine
similarities, numerically-stable softmax / log-softmax, and the paper's loss
shapes (margin ranking, pairwise softmax, focal loss).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor


def scatter_rows(source: Tensor, indices: np.ndarray, num_rows: int) -> Tensor:
    """Sum rows of ``source`` into ``num_rows`` buckets given by ``indices``.

    ``source`` has shape ``(n, d)`` and ``indices`` shape ``(n,)``; the result
    has shape ``(num_rows, d)`` where row ``i`` is the sum of source rows with
    ``indices == i``.  This is the aggregation step of the CompGCN layer.
    """
    indices = np.asarray(indices, dtype=np.int64)
    out_data = np.zeros((num_rows, source.data.shape[1]), dtype=np.float64)
    np.add.at(out_data, indices, source.data)

    def backward(grad: np.ndarray) -> None:
        if source.requires_grad:
            source._accumulate(np.asarray(grad)[indices])

    return Tensor._make(out_data, (source,), backward)


def stack_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor (differentiable)."""
    parents = tuple(as_tensor(t) for t in tensors)
    out_data = np.stack([p.data for p in parents], axis=0)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        for i, p in enumerate(parents):
            if p.requires_grad:
                p._accumulate(g[i])

    return Tensor._make(out_data, parents, backward)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    parents = tuple(as_tensor(t) for t in tensors)
    out_data = np.concatenate([p.data for p in parents], axis=axis)
    sizes = [p.data.shape[axis] for p in parents]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        for i, p in enumerate(parents):
            if p.requires_grad:
                slicer = [slice(None)] * g.ndim
                slicer[axis if axis >= 0 else g.ndim + axis] = slice(offsets[i], offsets[i + 1])
                p._accumulate(g[tuple(slicer)])

    return Tensor._make(out_data, parents, backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise maximum of two tensors (sub-gradient goes to the winner).

    Ties split the gradient evenly, matching the convention used for
    ``Tensor.max``.
    """
    a_t, b_t = as_tensor(a), as_tensor(b)
    out_data = np.maximum(a_t.data, b_t.data)
    a_wins = (a_t.data > b_t.data).astype(np.float64)
    b_wins = (b_t.data > a_t.data).astype(np.float64)
    ties = 1.0 - a_wins - b_wins

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        if a_t.requires_grad:
            a_t._accumulate(g * (a_wins + 0.5 * ties))
        if b_t.requires_grad:
            b_t._accumulate(g * (b_wins + 0.5 * ties))

    return Tensor._make(out_data, (a_t, b_t), backward)


def row_norms(x: Tensor, eps: float = 1e-12) -> Tensor:
    """L2 norm of each row of a 2-D tensor, shape ``(n,)``."""
    return ((x * x).sum(axis=1) + eps) ** 0.5


def l2_normalize_rows(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Rows of ``x`` scaled to unit norm."""
    norms = row_norms(x, eps=eps)
    return x / norms.reshape(-1, 1)


def cosine_similarity_rows(a: Tensor, b: Tensor, eps: float = 1e-12) -> Tensor:
    """Cosine similarity between corresponding rows of ``a`` and ``b``."""
    dot = (a * b).sum(axis=1)
    return dot / (row_norms(a, eps) * row_norms(b, eps))


def cosine_similarity_vec(a: Tensor, b: Tensor, eps: float = 1e-12) -> Tensor:
    """Cosine similarity between two 1-D tensors (scalar output)."""
    dot = (a * b).sum()
    return dot / ((a.norm() * b.norm()) + eps)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return shifted - exp.sum(axis=axis, keepdims=True).log()


def margin_ranking_loss(positive: Tensor, negative: Tensor, margin: float) -> Tensor:
    """Mean hinge loss ``|margin + positive - negative|_+`` (Eqs. 1 and 3).

    ``positive`` holds scores of observed triples (should be small) and
    ``negative`` scores of corrupted triples (should be larger by ``margin``).
    """
    return (positive - negative + margin).clamp_min(0.0).mean()


def pairwise_softmax_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """The alignment loss of Eqs. 5 and 8.

    For each positive match similarity ``s+`` and its paired negative ``s-``,
    the loss is ``-log softmax(s+, s-)[0]``, i.e. a two-way classification of
    the match against its corruption.  Scores are stacked along the last axis.
    """
    stacked = concatenate([pos_scores.reshape(-1, 1), neg_scores.reshape(-1, 1)], axis=1)
    log_probs = log_softmax(stacked, axis=1)
    return -(log_probs[:, 0]).mean()


def focal_pairwise_softmax_loss(pos_scores: Tensor, neg_scores: Tensor, gamma: float = 2.0) -> Tensor:
    """Focal-loss variant of :func:`pairwise_softmax_loss` (Sect. 4.2 fine-tuning).

    The softmax output ``p`` for the positive class is re-weighted by
    ``(1 - p)^gamma`` so badly classified (typically newly-labelled) pairs
    dominate the gradient.  The weight itself is treated as a constant, which
    matches the usual focal-loss implementation.
    """
    stacked = concatenate([pos_scores.reshape(-1, 1), neg_scores.reshape(-1, 1)], axis=1)
    log_probs = log_softmax(stacked, axis=1)
    with_probs = np.exp(log_probs.data[:, 0])
    weights = Tensor((1.0 - with_probs) ** gamma)
    return -(weights * log_probs[:, 0]).mean()


def soft_label_loss(similarities: Tensor, soft_labels: np.ndarray) -> Tensor:
    """Semi-supervised loss of Eq. 10: ``-sum(S0(x,x') * S(x,x'))``.

    ``soft_labels`` are similarities from the previous model ``S0`` and are
    constants with respect to the optimiser.
    """
    labels = Tensor(np.asarray(soft_labels, dtype=np.float64))
    return -(labels * similarities).mean()
