"""A small reverse-mode automatic-differentiation engine on NumPy arrays.

This package replaces PyTorch for this reproduction.  It provides a
:class:`~repro.autograd.tensor.Tensor` with the operations needed by the
paper's models — dense linear algebra, embedding gathers, scatter-adds for
graph message passing, norms, cosine similarities and softmax losses — and a
``backward()`` that accumulates gradients through the recorded computation
graph.

The engine is intentionally minimal: no views/in-place aliasing semantics, no
GPU, eager execution only.  That is all the DAAKG models need, and it keeps
gradients easy to verify against finite differences in the test-suite.
"""

from repro.autograd.tensor import Tensor, no_grad, tensor
from repro.autograd import functional

__all__ = ["Tensor", "functional", "no_grad", "tensor"]
