"""Online serving of alignment queries from frozen pipeline snapshots.

:class:`AlignmentService` loads a checkpoint (or wraps a fitted pipeline) and
answers ``top_k_alignments`` / ``score_pairs`` queries from the cached
similarity matrices, with request micro-batching, a state-token-keyed LRU
result cache, atomic hot-swap to newer checkpoints, and incremental fold-in
of new entities without recomputing the full similarity state.
"""

from repro.serving.service import (
    AlignmentService,
    FoldInReport,
    ServiceStats,
    ServingError,
    ServingSnapshot,
    Ticket,
)

__all__ = [
    "AlignmentService",
    "FoldInReport",
    "ServiceStats",
    "ServingError",
    "ServingSnapshot",
    "Ticket",
]
