"""Online serving of alignment queries from frozen pipeline snapshots.

:class:`AlignmentService` loads a checkpoint (or wraps a fitted pipeline) and
answers ``top_k_alignments`` / ``score_pairs`` queries from the cached
similarity matrices, with request micro-batching, a state-token-keyed LRU
result cache, atomic hot-swap to newer checkpoints, and incremental fold-in
of new entities without recomputing the full similarity state.

:class:`ServingFrontend` puts a concurrent dispatcher in front of a service:
a bounded admission queue with typed load-shedding
(:class:`BackpressureError`), deadline-aware batch flushing, and a worker
pool fanning read-only snapshot queries out without a global lock — the
layer that turns single-caller micro-batching into a measured saturation
curve under open-loop load (``benchmarks/bench_serving_throughput.py``).

:func:`serve` is the unified entry point: hand it a pipeline, a campaign, a
snapshot or a checkpoint path and get back a service (or a started frontend).
"""

from repro.serving.entry import serve
from repro.serving.frontend import (
    BackpressureError,
    FrontendConfig,
    ServingFrontend,
    resolve_frontend_config,
)
from repro.serving.service import (
    AlignmentService,
    FoldInReport,
    ServiceStats,
    ServingError,
    ServingSnapshot,
    Ticket,
)

__all__ = [
    "AlignmentService",
    "BackpressureError",
    "FoldInReport",
    "FrontendConfig",
    "ServiceStats",
    "ServingError",
    "ServingFrontend",
    "ServingSnapshot",
    "Ticket",
    "resolve_frontend_config",
    "serve",
]
