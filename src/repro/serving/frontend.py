"""Concurrent serving front end: admission control + deadline-aware batching.

:class:`AlignmentService` answers ~40k qps of micro-batched queries, but only
on one caller-driven thread: batches flush when *a caller* crosses
``max_batch`` or calls ``Ticket.result()``.  :class:`ServingFrontend` puts a
thread-pool dispatcher in front of the service so many concurrent callers
share the batching win without driving it themselves:

* **Bounded admission queue with explicit backpressure** — ``submit_*``
  appends to a deque whose depth is capped at
  :attr:`FrontendConfig.max_queue_depth`; once full, requests are *shed* with
  a typed :class:`BackpressureError` instead of growing the queue (and the
  latency of everything behind it) without bound.  Load-shedding is a
  first-class outcome: the caller sees a structured error carrying the
  observed depth and limit, and every shed increments
  ``frontend.shed.total``.
* **Deadline-aware batching** — every request carries a latency deadline
  (per-call override of :attr:`FrontendConfig.default_deadline_ms`).  Worker
  threads flush a batch when it reaches ``max_batch`` *or* when the oldest
  queued request has spent half its deadline budget waiting, whichever comes
  first — under heavy load batches fill instantly (throughput mode), under
  light load a lone request waits at most deadline/2 (latency mode), leaving
  the other half of the budget for the gather itself.
* **Lock-free snapshot fan-out** — workers call the service's query methods
  directly; each call reads the frozen-snapshot reference once and runs on
  immutable arrays, so concurrent batches never contend on serving state
  (only the service's fine-grained cache/stats locks are ever taken).  This
  is what makes hot-swap under load safe: an in-flight batch finishes against
  the snapshot it started with while the next batch sees the new one.
* **Telemetry through the existing registry** — all series publish into
  ``service.obs`` (so ``service.metrics()["snapshot"]`` and the Prometheus
  exposition pick them up with no new plumbing): ``frontend.requests.total``
  per op, ``frontend.shed.total``, ``frontend.queue.depth`` /
  ``frontend.queue.peak_depth`` gauges, ``frontend.batch.size`` and
  end-to-end ``frontend.request.seconds`` histograms, and per-reason
  ``frontend.flushes.total`` (``full`` / ``deadline`` / ``drain``).

The event-loop flavour of the same design is deliberately *not* asyncio:
the query kernels are synchronous numpy and the callers in this repo (tests,
benches, examples) are thread-based; a thread-pool dispatcher serves both
without forcing an event loop onto every caller.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, replace

from repro.obs.registry import DEFAULT_BATCH_BUCKETS, DEFAULT_LATENCY_BUCKETS
from repro.serving.service import AlignmentService, ServingError, Ticket
from repro.utils.logging import get_logger

logger = get_logger(__name__)

WORKERS_ENV = "REPRO_SERVING_WORKERS"
QUEUE_DEPTH_ENV = "REPRO_SERVING_QUEUE_DEPTH"
MAX_BATCH_ENV = "REPRO_SERVING_MAX_BATCH"
DEADLINE_MS_ENV = "REPRO_SERVING_DEADLINE_MS"


class BackpressureError(ServingError):
    """Typed admission rejection: the queue is at its depth limit.

    Raised by ``submit_*`` the moment the request would exceed
    ``max_queue_depth`` — the request is *shed*, never enqueued.  Carries the
    observed ``depth`` and configured ``limit`` so callers can implement
    retry-after or report saturation upstream.
    """

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(f"admission queue full ({depth}/{limit}); request shed")
        self.depth = depth
        self.limit = limit


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else fallback


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else fallback


@dataclass(frozen=True)
class FrontendConfig:
    """Dispatcher knobs; ``REPRO_SERVING_*`` environment overrides win.

    ``max_batch=None`` inherits the service's own ``max_batch`` so the
    dispatcher never silently changes the service's batching contract.
    """

    num_workers: int = 2
    max_queue_depth: int = 1024
    max_batch: int | None = None
    default_deadline_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError("max_batch must be >= 1 (or None to inherit)")
        if self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0")


def resolve_frontend_config(configured: FrontendConfig | None = None) -> FrontendConfig:
    """Effective dispatcher knobs: env overrides first, then config, then defaults.

    Mirrors ``resolve_ann_params`` / ``resolve_backend_name`` — each
    ``REPRO_SERVING_*`` variable wins over the configured value, field by
    field (``REPRO_SERVING_MAX_BATCH=0`` means "inherit the service's").
    """
    base = configured if configured is not None else FrontendConfig()
    max_batch = _env_int(MAX_BATCH_ENV, 0) or base.max_batch
    return replace(
        base,
        num_workers=_env_int(WORKERS_ENV, base.num_workers),
        max_queue_depth=_env_int(QUEUE_DEPTH_ENV, base.max_queue_depth),
        max_batch=max_batch,
        default_deadline_ms=_env_float(DEADLINE_MS_ENV, base.default_deadline_ms),
    )


class ServingFrontend:
    """A thread-pool dispatcher in front of one :class:`AlignmentService`.

    Usage::

        frontend = ServingFrontend(service, FrontendConfig(num_workers=4))
        with frontend:                       # start() .. stop(drain=True)
            ticket = frontend.submit_top_k("dbp:Berlin", k=5, deadline_ms=20)
            ...
            ticket.result()                  # waits on the flush loop

    While started, the frontend is attached to the service as its
    dispatcher: ``service.enqueue_top_k`` / ``enqueue_score`` route here, and
    ``Ticket.result()`` waits for a worker instead of flushing the whole
    queue on the caller's thread.
    """

    def __init__(
        self,
        service: AlignmentService,
        config: FrontendConfig | None = None,
        resolve_env: bool = True,
    ) -> None:
        self.service = service
        self.config = resolve_frontend_config(config) if resolve_env else (
            config or FrontendConfig()
        )
        self.max_batch = self.config.max_batch or service.max_batch
        self._queue: deque[Ticket] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._done = threading.Condition(threading.Lock())
        self._workers: list[threading.Thread] = []
        self._stop = False
        self._draining = False
        self._in_flight = 0
        self._peak_depth = 0
        obs = service.obs
        self._submit_counters = {
            op: obs.counter("frontend.requests.total", op=op)
            for op in ("topk", "score")
        }
        self._shed_counter = obs.counter("frontend.shed.total")
        self._depth_gauge = obs.gauge("frontend.queue.depth")
        self._peak_depth_gauge = obs.gauge("frontend.queue.peak_depth")
        self._batch_hist = obs.histogram("frontend.batch.size", buckets=DEFAULT_BATCH_BUCKETS)
        self._lat_hist = obs.histogram(
            "frontend.request.seconds", buckets=DEFAULT_LATENCY_BUCKETS
        )
        self._flush_reasons = {
            reason: obs.counter("frontend.flushes.total", reason=reason)
            for reason in ("full", "deadline", "drain")
        }

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> "ServingFrontend":
        """Attach to the service and launch the worker pool (idempotent)."""
        if self._workers:
            return self
        self.service.attach_dispatcher(self)
        self._stop = False
        for index in range(self.config.num_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serving-frontend-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        logger.info(
            "serving frontend started: %d workers, queue depth %d, batch %d",
            self.config.num_workers, self.config.max_queue_depth, self.max_batch,
        )
        return self

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Detach and stop the workers; ``drain`` answers queued work first.

        With ``drain=False`` every still-queued ticket fails with a
        :class:`ServingError` — a stopped frontend never strands a waiter.
        """
        if drain and self._workers:
            self.drain(timeout=timeout)
        with self._not_empty:
            self._stop = True
            leftovers = list(self._queue)
            self._queue.clear()
            self._not_empty.notify_all()
        for worker in self._workers:
            worker.join(timeout=timeout)
        self._workers = []
        self.service.detach_dispatcher(self)
        if leftovers:
            error = ServingError("serving frontend stopped before resolving this ticket")
            for ticket in leftovers:
                ticket.error = error
                ticket.ready = True
            with self._done:
                self._done.notify_all()

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until queue and in-flight batches are empty; True on success.

        Draining flushes partial batches immediately (reason ``drain``)
        instead of waiting out their deadline budgets.
        """
        with self._not_empty:
            self._draining = True
            self._not_empty.notify_all()
        try:
            with self._done:
                return self._done.wait_for(
                    lambda: not self._queue and self._in_flight == 0, timeout
                )
        finally:
            self._draining = False

    # ------------------------------------------------------------------ submit
    def submit_top_k(self, uri: str, k: int = 10, deadline_ms: float | None = None) -> Ticket:
        """Admit one top-k query; sheds with :class:`BackpressureError` when full."""
        return self._submit("topk", (uri, k), deadline_ms)

    def submit_score(
        self, left: str, right: str, deadline_ms: float | None = None
    ) -> Ticket:
        """Admit one pair-score query; sheds with :class:`BackpressureError` when full."""
        return self._submit("score", (left, right), deadline_ms)

    def submit(self, op: str, args: tuple, deadline_ms: float | None = None) -> Ticket:
        """The service's ``enqueue_*`` entry point while attached."""
        return self._submit(op, args, deadline_ms)

    def _submit(self, op: str, args: tuple, deadline_ms: float | None) -> Ticket:
        deadline_s = (
            deadline_ms if deadline_ms is not None else self.config.default_deadline_ms
        ) / 1e3
        if deadline_s <= 0:
            raise ValueError("deadline_ms must be > 0")
        ticket = Ticket(
            self.service,
            op,
            args,
            dispatcher=self,
            deadline_s=deadline_s,
            submitted_at=time.perf_counter(),
        )
        with self._not_empty:
            depth = len(self._queue)
            if depth >= self.config.max_queue_depth:
                self._shed_counter.inc()
                raise BackpressureError(depth, self.config.max_queue_depth)
            self._queue.append(ticket)
            if depth + 1 > self._peak_depth:
                self._peak_depth = depth + 1
            self._not_empty.notify()
        self._submit_counters[op].inc()
        return ticket

    @property
    def depth(self) -> int:
        """Current admission-queue depth (in-flight batches not included)."""
        return len(self._queue)

    def wait(self, ticket: Ticket, timeout: float | None = None) -> None:
        """Block until a worker resolves ``ticket`` (used by ``Ticket.result``)."""
        with self._done:
            if not self._done.wait_for(lambda: ticket.ready, timeout):
                raise TimeoutError("ticket not resolved within timeout")

    # ------------------------------------------------------------- flush loop
    def _worker_loop(self) -> None:
        while True:
            with self._not_empty:
                while True:
                    if self._stop:
                        return
                    batch, reason = self._take_batch_locked()
                    if batch is not None:
                        break
                    self._not_empty.wait(self._wait_timeout_locked())
                self._in_flight += 1
                self._depth_gauge.set(len(self._queue))
            try:
                self._resolve_batch(batch, reason)
            finally:
                with self._lock:
                    self._in_flight -= 1
                with self._done:
                    self._done.notify_all()

    def _take_batch_locked(self) -> tuple[list[Ticket] | None, str | None]:
        """Pop a batch if a flush condition holds (called with the lock held)."""
        queue = self._queue
        if not queue:
            return None, None
        if len(queue) >= self.max_batch:
            reason = "full"
        elif self._draining:
            reason = "drain"
        elif (
            time.perf_counter() - queue[0].submitted_at
            >= 0.5 * queue[0].deadline_s
        ):
            reason = "deadline"
        else:
            return None, None
        size = min(len(queue), self.max_batch)
        return [queue.popleft() for _ in range(size)], reason

    def _wait_timeout_locked(self) -> float | None:
        """Sleep until the oldest request's half-deadline (None when idle)."""
        if not self._queue:
            return None
        oldest = self._queue[0]
        remaining = oldest.submitted_at + 0.5 * oldest.deadline_s - time.perf_counter()
        # clamp below: a just-expired deadline re-checks immediately via
        # _take_batch_locked, so a tiny positive floor only avoids busy-spin
        return max(remaining, 0.0005)

    def _resolve_batch(self, batch: list[Ticket], reason: str) -> None:
        self._flush_reasons[reason].inc()
        self._batch_hist.observe(len(batch))
        service = self.service
        by_k: dict[int, list[Ticket]] = {}
        score_tickets: list[Ticket] = []
        for ticket in batch:
            if ticket.op == "topk":
                by_k.setdefault(ticket.args[1], []).append(ticket)
            else:
                score_tickets.append(ticket)
        try:
            for k, tickets in by_k.items():
                service._resolve_group(
                    tickets,
                    lambda ts, k=k: service.top_k_alignments([t.args[0] for t in ts], k),
                )
            if score_tickets:
                service._resolve_group(
                    score_tickets,
                    lambda ts: [float(v) for v in service.score_pairs([t.args for t in ts])],
                )
        except Exception as exc:  # defensive: never strand a waiting caller
            for ticket in batch:
                if not ticket.ready:
                    ticket.error = exc
                    ticket.ready = True
        completed = time.perf_counter()
        observe = self._lat_hist.observe
        for ticket in batch:
            ticket.completed_at = completed
            observe(completed - ticket.submitted_at)

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        """Dispatcher health: depth, sheds, batch counts, latency quantiles.

        Latencies are end-to-end (admission to resolution) from the
        ``frontend.request.seconds`` histogram — queue wait included, which
        is what an external caller actually experiences.
        """
        self._depth_gauge.set(len(self._queue))
        self._peak_depth_gauge.set(self._peak_depth)
        submitted = sum(int(c.value) for c in self._submit_counters.values())
        flushes = {name: int(c.value) for name, c in self._flush_reasons.items()}
        return {
            "workers": len(self._workers),
            "queue_depth": len(self._queue),
            "peak_queue_depth": self._peak_depth,
            "max_queue_depth": self.config.max_queue_depth,
            "submitted_total": submitted,
            "shed_total": int(self._shed_counter.value),
            "resolved_total": self._lat_hist.count,
            "dispatched_batches": sum(flushes.values()),
            "flush_reasons": flushes,
            "p50_latency_ms": self._lat_hist.quantile(0.5) * 1e3,
            "p99_latency_ms": self._lat_hist.quantile(0.99) * 1e3,
        }
