"""The online :class:`AlignmentService`.

The training stack answers similarity queries by holding live models, caches
and autograd graphs.  Serving needs none of that: a *frozen snapshot* of the
similarity matrices (and just enough model state for fold-in) answers
``top_k_alignments`` and ``score_pairs`` queries with plain array gathers.

Design points:

* **Immutable snapshots, atomic swap** — all serving state lives in one
  :class:`ServingSnapshot` object referenced by a single attribute.  Hot-swap
  to a newer checkpoint and incremental fold-in both *build a new snapshot*
  and replace that one reference, so a query sequence never observes a
  half-updated state.
* **State-token cache keys** — every snapshot carries a ``token`` (the
  checkpoint's content hash, extended per fold-in).  The LRU result cache
  keys on it, so stale results can never be served after a swap or fold-in
  without any explicit invalidation.
* **Micro-batching** — ``enqueue_*`` queues single queries; ``flush`` (called
  automatically when ``max_batch`` queries are pending, or lazily by
  ``Ticket.result``) answers all pending queries of each shape with one
  vectorised gather instead of per-query matrix rows.  When a
  :class:`~repro.serving.frontend.ServingFrontend` dispatcher is attached,
  enqueued tickets route to its flush loop instead, and ``Ticket.result``
  *waits* rather than stealing the whole batch onto the caller's thread.
* **Thread safety** — the query path is safe for concurrent callers: the
  snapshot reference is read once per call (readers fan out over the frozen
  state without any global lock), while the mutable extras — the LRU result
  cache, the pending micro-batch queue and the stats counters — each take
  their own fine-grained lock.  ``hot_swap`` / ``fold_in`` serialise their
  read-modify-write of the snapshot reference behind a swap lock.
* **Incremental fold-in** — a new entity arriving with its triples gets an
  output-space embedding optimised against the frozen model (a few gradient
  steps on only the new row, via ``score_np_grad_head`` /
  ``score_np_grad_tail``), and is *appended* to the cached similarity matrix
  as one new row/column — an ``O(n·d)`` update instead of the ``O(n₁·n₂·d)``
  full similarity recompute.  Folded-in columns carry the embedding channel
  only (no structural propagation), matching how a cold entity would score
  before the next full training round.  Merged campaign snapshots fold in
  too: each piece's frozen model travels with the snapshot as a
  :class:`_PieceFoldContext`, the new entity is optimised against the single
  piece that owns all of its neighbours, and its similarity row/column is
  scattered into the global merged view (zero outside the owning piece —
  exactly the cut semantics of the partitioner).  The preferred ingestion
  surface is :meth:`AlignmentService.apply_delta` on a pure-growth
  :class:`~repro.updates.delta.KGDelta`; ``fold_in(name, triples, side)`` is
  a deprecated single-entity wrapper around it.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.alignment.calibration import AlignmentCalibrator
from repro.kg.elements import ElementKind
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.runtime.views import SimilarityView
from repro.utils.logging import get_logger
from repro.utils.math import l2_normalize

if TYPE_CHECKING:  # pragma: no cover - import cycle with core
    from repro.active.campaign import PartitionedCampaign
    from repro.core.daakg import DAAKG
    from repro.embedding.base import KGEmbeddingModel
    from repro.serving.frontend import ServingFrontend
    from repro.updates.delta import KGDelta

logger = get_logger(__name__)


class ServingError(RuntimeError):
    """Raised for unknown elements, malformed fold-in triples, or misuse."""


# Process-unique discriminator for in-memory snapshot tokens: the engine's
# version triple alone is not unique across *different* pipelines (each has
# its own snapshot/landmark counters), and a colliding token would let the
# LRU cache serve one pipeline's results for another after a hot-swap.
_TOKEN_COUNTER = itertools.count()


@dataclass(frozen=True, eq=False)
class _PieceFoldContext:
    """One campaign piece's frozen fold-in state inside a merged snapshot.

    Carries exactly what a single-pipeline snapshot carries for fold-in —
    the piece's working vocabularies, output-space matrices and frozen
    models — plus the local→global id maps (``rows_global``/``cols_global``)
    that place the piece's rows and columns inside the merged similarity
    view.  Immutable like the snapshot itself: a fold-in builds a *replaced*
    context with the new entity appended, never mutates one in place.
    """

    index: int
    entity_index_1: dict[str, int]
    entity_index_2: dict[str, int]
    relation_index_1: dict[str, int]
    relation_index_2: dict[str, int]
    map_entity: np.ndarray
    entity_out_1: np.ndarray
    entity_out_2: np.ndarray
    relation_out_1: np.ndarray
    relation_out_2: np.ndarray
    norm_mapped_1: np.ndarray  # unit rows of entity_out_1 @ map_entity
    norm_out_2: np.ndarray  # unit rows of entity_out_2
    model_1: "KGEmbeddingModel"
    model_2: "KGEmbeddingModel"
    rows_global: np.ndarray  # global merged row id of each local side-1 row
    cols_global: np.ndarray  # global merged col id of each local side-2 row


@dataclass(frozen=True)
class ServingSnapshot:
    """One immutable serving state: matrices, vocabularies, fold-in support."""

    token: str
    entity_names_1: tuple[str, ...]
    entity_names_2: tuple[str, ...]
    entity_index_1: dict[str, int]
    entity_index_2: dict[str, int]
    relation_index_1: dict[str, int]
    relation_index_2: dict[str, int]
    similarity: dict[ElementKind, SimilarityView]
    map_entity: np.ndarray
    entity_out_1: np.ndarray
    entity_out_2: np.ndarray
    relation_out_1: np.ndarray
    relation_out_2: np.ndarray
    norm_mapped_1: np.ndarray  # unit rows of entity_out_1 @ map_entity
    norm_out_2: np.ndarray  # unit rows of entity_out_2
    model_1: "KGEmbeddingModel"
    model_2: "KGEmbeddingModel"
    calibrator: AlignmentCalibrator
    fold_count: int = 0
    # False only for degraded snapshots that genuinely carry no frozen model
    # state to optimise a new entity against (neither per-side models nor
    # per-piece fold contexts) — fold-in is refused instead of silently
    # computing garbage.  Pipeline snapshots carry ``model_1``/``model_2``;
    # merged campaign snapshots carry one ``_PieceFoldContext`` per piece.
    fold_in_supported: bool = True
    # Per-piece fold contexts of a merged campaign snapshot; ``None`` for
    # single-pipeline snapshots (which fold against ``model_1``/``model_2``).
    pieces: "tuple[_PieceFoldContext, ...] | None" = None

    @classmethod
    def from_pipeline(cls, daakg: "DAAKG", token: str | None = None) -> "ServingSnapshot":
        """Freeze a fitted pipeline's current similarity state for serving."""
        model = daakg.model
        engine = model.similarity
        similarity = engine.export_state()
        snap = engine.snapshot
        if token is None:
            token = f"mem-{next(_TOKEN_COUNTER)}-{engine.backend_name}-" + "-".join(
                str(v) for v in engine.state_token()
            )
        else:
            token = f"{token}-{engine.backend_name}"
        entity_out_1 = snap.entity_matrix_1.copy()
        entity_out_2 = snap.entity_matrix_2.copy()
        map_entity = model.map_entity.data.copy()
        return cls(
            token=token,
            entity_names_1=tuple(model.kg1.entities),
            entity_names_2=tuple(model.kg2.entities),
            entity_index_1=dict(model.kg1.entity_index),
            entity_index_2=dict(model.kg2.entity_index),
            relation_index_1=dict(model.kg1.relation_index),
            relation_index_2=dict(model.kg2.relation_index),
            similarity=similarity,
            map_entity=map_entity,
            entity_out_1=entity_out_1,
            entity_out_2=entity_out_2,
            relation_out_1=snap.relation_matrix_1.copy(),
            relation_out_2=snap.relation_matrix_2.copy(),
            norm_mapped_1=l2_normalize(entity_out_1 @ map_entity),
            norm_out_2=l2_normalize(entity_out_2),
            model_1=model.model1,
            model_2=model.model2,
            calibrator=AlignmentCalibrator(daakg.config.calibration),
        )

    @classmethod
    def from_campaign(cls, campaign, token: str | None = None) -> "ServingSnapshot":
        """Freeze a partition-parallel campaign's *merged* similarity state.

        The snapshot serves ``top_k_alignments`` / ``score_pairs`` /
        ``pair_probabilities`` from the merged streamed views over the
        original pair's vocabularies.  Fold-in is supported through the
        per-piece fold contexts (``pieces``): a new entity is optimised
        against the frozen model of the single piece that owns all of its
        neighbours and scattered into the merged view at that piece's
        global ids.  A campaign with unfinished pieces (never run, or
        pieces that failed on their executor) raises
        ``CampaignExecutionError`` here instead of serving a partial merge;
        ``campaign.run()`` re-executes exactly the unfinished pieces.
        """
        from repro.active.campaign import _augmented_kgs  # circular at module level

        merged = campaign.merged_state()
        kg1, kg2 = _augmented_kgs(campaign.dataset, campaign.config)
        if token is None:
            token = (
                f"mem-{next(_TOKEN_COUNTER)}-merged-{campaign.num_partitions}p"
            )
        else:
            token = f"{token}-merged"
        contexts = []
        for index in range(campaign.num_partitions):
            model = campaign.pipeline(index).model
            snap = model.similarity.snapshot
            entity_out_1 = snap.entity_matrix_1.copy()
            entity_out_2 = snap.entity_matrix_2.copy()
            map_entity = model.map_entity.data.copy()
            contexts.append(
                _PieceFoldContext(
                    index=index,
                    entity_index_1=dict(model.kg1.entity_index),
                    entity_index_2=dict(model.kg2.entity_index),
                    relation_index_1=dict(model.kg1.relation_index),
                    relation_index_2=dict(model.kg2.relation_index),
                    map_entity=map_entity,
                    entity_out_1=entity_out_1,
                    entity_out_2=entity_out_2,
                    relation_out_1=snap.relation_matrix_1.copy(),
                    relation_out_2=snap.relation_matrix_2.copy(),
                    norm_mapped_1=l2_normalize(entity_out_1 @ map_entity),
                    norm_out_2=l2_normalize(entity_out_2),
                    model_1=model.model1,
                    model_2=model.model2,
                    # piece working names are a subset of the global working
                    # names (augmentation only appends), so name lookup is the
                    # robust local→global map even across inverse-relation and
                    # class-pseudo-entity augmentation
                    rows_global=np.array(
                        [kg1.entity_index[name] for name in model.kg1.entities],
                        dtype=np.int64,
                    ),
                    cols_global=np.array(
                        [kg2.entity_index[name] for name in model.kg2.entities],
                        dtype=np.int64,
                    ),
                )
            )
        empty = np.empty((0, 0))
        return cls(
            token=token,
            entity_names_1=tuple(kg1.entities),
            entity_names_2=tuple(kg2.entities),
            entity_index_1=dict(kg1.entity_index),
            entity_index_2=dict(kg2.entity_index),
            relation_index_1=dict(kg1.relation_index),
            relation_index_2=dict(kg2.relation_index),
            similarity=merged.export_state(),
            map_entity=empty,
            entity_out_1=empty,
            entity_out_2=empty,
            relation_out_1=empty,
            relation_out_2=empty,
            norm_mapped_1=empty,
            norm_out_2=empty,
            model_1=None,
            model_2=None,
            calibrator=AlignmentCalibrator(campaign.config.calibration),
            pieces=tuple(contexts),
        )


def _snapshot_from_source(
    source: "ServingSnapshot | DAAKG | PartitionedCampaign | str | os.PathLike",
) -> ServingSnapshot:
    """Resolve any serving source to one frozen :class:`ServingSnapshot`.

    The single dispatch point behind :func:`repro.serving.serve`, the
    ``AlignmentService.from_*`` constructors and :meth:`AlignmentService.hot_swap`:

    * a :class:`ServingSnapshot` passes through unchanged,
    * a fitted :class:`~repro.core.daakg.DAAKG` freezes via ``from_pipeline``,
    * a :class:`~repro.active.campaign.PartitionedCampaign` freezes its
      merged state via ``from_campaign``,
    * a path is a saved campaign directory (recognised by its manifest file)
      or a pipeline checkpoint — checkpoint tokens are content hashes, so
      cached results can never leak across checkpoints.
    """
    from repro.active.campaign import PartitionedCampaign  # circular at module level
    from repro.core.daakg import DAAKG  # circular at module level

    if isinstance(source, ServingSnapshot):
        return source
    if isinstance(source, PartitionedCampaign):
        return ServingSnapshot.from_campaign(source)
    if isinstance(source, DAAKG):
        return ServingSnapshot.from_pipeline(source)
    from repro.persistence.campaign import CAMPAIGN_MANIFEST_FILE

    path = Path(os.fspath(source))
    if (path / CAMPAIGN_MANIFEST_FILE).exists():
        return ServingSnapshot.from_campaign(PartitionedCampaign.load(str(path)))
    from repro.persistence import load_checkpoint, restore_pipeline

    checkpoint = load_checkpoint(path)
    token = "ckpt-" + checkpoint.manifest["arrays"]["sha256"][:16]
    return ServingSnapshot.from_pipeline(restore_pipeline(checkpoint), token=token)


@dataclass
class Ticket:
    """A pending micro-batched query; ``result()`` flushes if still queued.

    Under a :class:`~repro.serving.frontend.ServingFrontend` dispatcher the
    ticket carries the dispatcher reference plus its deadline and submit /
    complete timestamps; ``result()`` then *waits* for the flush loop to
    resolve it instead of flushing the whole queue on the caller's thread —
    one slow caller can never steal the batch.
    """

    service: "AlignmentService"
    op: str
    args: tuple
    ready: bool = False
    value: object = None
    error: Exception | None = None
    dispatcher: "ServingFrontend | None" = None
    deadline_s: float = 0.0
    submitted_at: float = 0.0
    completed_at: float = 0.0

    def result(self, timeout: float | None = None):
        if not self.ready:
            if self.dispatcher is not None:
                self.dispatcher.wait(self, timeout)
            else:
                self.service.flush()
        if self.error is not None:
            raise self.error
        return self.value


@dataclass
class FoldInReport:
    """What one incremental fold-in did, and what it cost."""

    name: str
    side: int
    index: int
    num_triples: int
    seconds: float
    token: str


@dataclass
class ServiceStats:
    """Monotonic counters for throughput accounting (lock-exact under threads)."""

    queries: int = 0
    cache_hits: int = 0
    flushes: int = 0
    folds: int = 0
    swaps: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment one counter atomically (``+=`` alone is not, under threads)."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def as_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "flushes": self.flushes,
            "folds": self.folds,
            "swaps": self.swaps,
        }


class AlignmentService:
    """Read-optimised alignment queries over a frozen pipeline snapshot."""

    def __init__(
        self,
        state: ServingSnapshot,
        max_batch: int = 64,
        cache_size: int = 4096,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self._state = state
        self.max_batch = max_batch
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self._pending: list[Ticket] = []
        self.stats = ServiceStats()
        # Fine-grained synchronization: queries read the snapshot reference
        # once and fan out lock-free over the frozen arrays; only the mutable
        # extras take a lock, each its own so readers never contend across
        # concerns.  The swap lock serialises hot_swap/fold_in — the only
        # read-modify-write of the snapshot reference.
        self._cache_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        self._dispatcher: "ServingFrontend | None" = None
        # Service-local metrics registry: always on (independent of the
        # global repro.obs gate — a serving process wants its own telemetry
        # regardless), exported through :meth:`metrics`.  Instrument handles
        # are resolved once; per-request cost is one observe/inc under the
        # instrument's own lock.
        self.obs = MetricsRegistry()
        self._created = time.perf_counter()
        self._lat_hist = self.obs.histogram(
            "service.request.seconds", buckets=DEFAULT_LATENCY_BUCKETS
        )
        self._req_counters = {
            method: self.obs.counter("service.requests.total", method=method)
            for method in ("top_k", "score_pairs", "pair_probabilities")
        }
        self._cache_hit_counter = self.obs.counter("service.cache.hits")
        self._cache_miss_counter = self.obs.counter("service.cache.misses")
        self._queue_gauge = self.obs.gauge("service.queue.depth")
        self._batch_gauge = self.obs.gauge("service.flush.batch_size")
        self._flush_counter = self.obs.counter("service.flushes.total")
        self._swap_counter = self.obs.counter("service.hot_swaps.total")
        self._fold_counter = self.obs.counter("service.fold_ins.total")

    # ------------------------------------------------------------ constructors
    #
    # All three are thin delegating aliases of ``_snapshot_from_source`` —
    # :func:`repro.serving.serve` is the unified entry point; these stay for
    # callers that know their source kind and want the narrower signature.
    @classmethod
    def from_pipeline(cls, daakg: "DAAKG", **kwargs) -> "AlignmentService":
        """Serve directly from a fitted in-memory pipeline."""
        return cls(_snapshot_from_source(daakg), **kwargs)

    @classmethod
    def from_campaign(cls, campaign, **kwargs) -> "AlignmentService":
        """Serve a partition-parallel campaign's merged similarity state."""
        return cls(_snapshot_from_source(campaign), **kwargs)

    @classmethod
    def from_checkpoint(cls, path: str | os.PathLike, **kwargs) -> "AlignmentService":
        """Serve a checkpoint: ``DAAKG.save`` output or a saved campaign dir.

        A pipeline checkpoint's state token is its content hash, so results
        cached against one checkpoint can never leak into another; a campaign
        directory (recognised by its manifest) is loaded and its merged
        state served.
        """
        return cls(_snapshot_from_source(path), **kwargs)

    # ----------------------------------------------------------------- lookups
    @property
    def state_token(self) -> str:
        """The current snapshot's token (changes on hot-swap and fold-in)."""
        return self._state.token

    def num_entities(self, side: int) -> int:
        state = self._state
        return len(state.entity_names_1 if side == 1 else state.entity_names_2)

    def _entity_id(self, state: ServingSnapshot, side: int, uri: str) -> int:
        index = state.entity_index_1 if side == 1 else state.entity_index_2
        try:
            return index[uri]
        except KeyError as exc:
            raise ServingError(f"unknown KG{side} entity {uri!r}") from exc

    # ----------------------------------------------------------------- queries
    def top_k_alignments(
        self, uris: Sequence[str], k: int = 10
    ) -> list[list[tuple[str, float]]]:
        """The ``k`` best KG2 counterparts of each KG1 entity, with scores.

        Vectorised: all cache-missing rows are gathered and ranked in one
        ``argpartition`` call, so a batch of ``m`` queries costs one
        ``(m, |E2|)`` slice rather than ``m`` row scans.
        """
        start = time.perf_counter()
        state = self._state
        if k < 1:
            raise ValueError("k must be >= 1")
        self.stats.bump("queries", len(uris))
        use_cache = self.cache_size > 0
        results: list[list[tuple[str, float]] | None] = [None] * len(uris)
        miss_rows: list[int] = []
        miss_positions: list[int] = []
        for position, uri in enumerate(uris):
            if use_cache:
                cached = self._cache_get((state.token, "topk", uri, k))
                if cached is not None:
                    results[position] = cached
                    continue
            miss_rows.append(self._entity_id(state, 1, uri))
            miss_positions.append(position)
        if miss_rows:
            view = state.similarity[ElementKind.ENTITY]
            top, values = view.top_k_for_rows(np.asarray(miss_rows, dtype=np.int64), k)
            names = state.entity_names_2
            top_lists = top.tolist()  # one bulk int/float conversion beats
            value_lists = values.tolist()  # per-element float()/int() casts
            for i, position in enumerate(miss_positions):
                entry = [
                    (names[j], v) for j, v in zip(top_lists[i], value_lists[i])
                ]
                results[position] = entry
                if use_cache:
                    self._cache_put((state.token, "topk", uris[position], k), entry)
        self._req_counters["top_k"].inc()
        self._lat_hist.observe(time.perf_counter() - start)
        return results  # type: ignore[return-value]

    def score_pairs(self, pairs: Sequence[tuple[str, str]]) -> np.ndarray:
        """Similarity scores for ``(kg1 uri, kg2 uri)`` pairs, as one array."""
        start = time.perf_counter()
        state = self._state
        self.stats.bump("queries", len(pairs))
        use_cache = self.cache_size > 0
        scores = np.empty(len(pairs), dtype=float)
        miss_lefts: list[int] = []
        miss_rights: list[int] = []
        miss_positions: list[int] = []
        for position, (left, right) in enumerate(pairs):
            if use_cache:
                cached = self._cache_get((state.token, "score", left, right))
                if cached is not None:
                    scores[position] = cached
                    continue
            miss_lefts.append(self._entity_id(state, 1, left))
            miss_rights.append(self._entity_id(state, 2, right))
            miss_positions.append(position)
        if miss_positions:
            view = state.similarity[ElementKind.ENTITY]
            values = view.gather(
                np.asarray(miss_lefts, dtype=np.int64),
                np.asarray(miss_rights, dtype=np.int64),
            )
            value_list = values.tolist()
            for i, position in enumerate(miss_positions):
                scores[position] = value_list[i]
                if use_cache:
                    left, right = pairs[position]
                    self._cache_put((state.token, "score", left, right), value_list[i])
        self._req_counters["score_pairs"].inc()
        self._lat_hist.observe(time.perf_counter() - start)
        return scores

    def pair_probabilities(self, pairs: Sequence[tuple[str, str]]) -> np.ndarray:
        """Calibrated match probabilities (Eq. 12) for entity URI pairs."""
        start = time.perf_counter()
        state = self._state
        self.stats.bump("queries", len(pairs))
        if not pairs:
            return np.zeros(0, dtype=float)
        lefts = np.asarray([self._entity_id(state, 1, a) for a, _ in pairs], dtype=np.int64)
        rights = np.asarray([self._entity_id(state, 2, b) for _, b in pairs], dtype=np.int64)
        view = state.similarity[ElementKind.ENTITY]
        probabilities = state.calibrator.pair_probabilities_from_slabs(
            view.rows(lefts), view.cols(rights), ElementKind.ENTITY, lefts, rights
        )
        self._req_counters["pair_probabilities"].inc()
        self._lat_hist.observe(time.perf_counter() - start)
        return probabilities

    # ----------------------------------------------------------- micro-batches
    def enqueue_top_k(self, uri: str, k: int = 10) -> Ticket:
        """Queue one top-k query; resolved at the next :meth:`flush`."""
        return self._enqueue("topk", (uri, k))

    def enqueue_score(self, left: str, right: str) -> Ticket:
        """Queue one pair-score query; resolved at the next :meth:`flush`."""
        return self._enqueue("score", (left, right))

    def _enqueue(self, op: str, args: tuple) -> Ticket:
        # note: the queue-depth gauge is sampled at flush()/metrics() time,
        # not here — a per-ticket gauge write would tax the hottest path for
        # a value scrapers only ever observe at collection instants
        dispatcher = self._dispatcher
        if dispatcher is not None:
            return dispatcher.submit(op, args)
        ticket = Ticket(self, op, args)
        with self._pending_lock:
            self._pending.append(ticket)
            should_flush = len(self._pending) >= self.max_batch
        if should_flush:
            self.flush()
        return ticket

    # --------------------------------------------------------- dispatcher hook
    def attach_dispatcher(self, dispatcher: "ServingFrontend") -> None:
        """Route subsequent ``enqueue_*`` tickets through ``dispatcher``.

        Called by :meth:`ServingFrontend.start`; only one dispatcher may be
        attached at a time.  Detaching restores the caller-driven flush.
        """
        if self._dispatcher is not None and self._dispatcher is not dispatcher:
            raise ServingError("a dispatcher is already attached to this service")
        self._dispatcher = dispatcher

    def detach_dispatcher(self, dispatcher: "ServingFrontend") -> None:
        if self._dispatcher is dispatcher:
            self._dispatcher = None

    def flush(self) -> int:
        """Answer every pending query, grouped into vectorised batches.

        Returns the number of tickets resolved.  Queries of the same shape
        (same ``k`` for top-k; all pair scores) share one matrix gather.  A
        bad query (e.g. an unknown URI) fails only its own ticket —
        ``Ticket.result`` re-raises its error — never the rest of the batch:
        on a group failure the group falls back to per-ticket resolution.
        """
        with self._pending_lock:
            pending, self._pending = self._pending, []
        self._queue_gauge.set(0)
        if not pending:
            return 0
        self.stats.bump("flushes")
        self._flush_counter.inc()
        self._batch_gauge.set(len(pending))
        by_k: dict[int, list[Ticket]] = {}
        score_tickets: list[Ticket] = []
        for ticket in pending:
            if ticket.op == "topk":
                by_k.setdefault(ticket.args[1], []).append(ticket)
            else:
                score_tickets.append(ticket)
        for k, tickets in by_k.items():
            self._resolve_group(
                tickets, lambda ts: self.top_k_alignments([t.args[0] for t in ts], k)
            )
        if score_tickets:
            self._resolve_group(
                score_tickets,
                lambda ts: [float(v) for v in self.score_pairs([t.args for t in ts])],
            )
        return len(pending)

    @staticmethod
    def _resolve_group(tickets: list[Ticket], answer_batch) -> None:
        try:
            answers = answer_batch(tickets)
        except ServingError:
            # isolate the offender: re-run one ticket at a time
            for ticket in tickets:
                try:
                    ticket.value = answer_batch([ticket])[0]
                except ServingError as exc:
                    ticket.error = exc
                ticket.ready = True
            return
        for ticket, answer in zip(tickets, answers):
            ticket.value = answer
            ticket.ready = True

    # -------------------------------------------------------------- hot swap
    def hot_swap(
        self,
        source: "str | os.PathLike | DAAKG | PartitionedCampaign | ServingSnapshot",
    ) -> str:
        """Atomically replace the serving state with a newer snapshot.

        ``source`` is anything :func:`_snapshot_from_source` resolves: a
        checkpoint or saved-campaign directory, a fitted pipeline, a
        partition-parallel campaign (whose *merged* similarity state is
        served) or a prebuilt snapshot.  The new snapshot is fully built
        *before* the single reference assignment, so concurrent readers
        observe either the old or the new state, never a mixture; pending
        micro-batch tickets are flushed against the old state first.
        Returns the new state token.
        """
        self.flush()
        state = _snapshot_from_source(source)
        with self._swap_lock:
            self._state = state
        self.stats.bump("swaps")
        self._swap_counter.inc()
        logger.info("hot-swapped serving state to %s", state.token)
        return state.token

    # --------------------------------------------------------------- fold-in
    def apply_delta(
        self, delta: "KGDelta", steps: int = 15, lr: float = 0.1
    ) -> list[FoldInReport]:
        """Absorb a pure-growth :class:`~repro.updates.delta.KGDelta`.

        Serving can absorb *growth* only: added entities, each arriving with
        the triples that place it.  Every added triple must involve at least
        one added entity (triples between two added entities are folded with
        the later one, when its partner already exists); each entity is
        folded through the same gradient refinement as a single
        :meth:`fold_in`, and all folds of one delta are applied under one
        swap lock — a concurrent reader observes the delta atomically per
        entity, never a half-written snapshot.

        Everything else a delta can carry — triple removals, gold-link
        additions or retractions, triples between *existing* entities —
        changes rows that are already frozen in the snapshot; route those
        through ``PartitionedCampaign.apply_update()`` and :meth:`hot_swap`
        the retrained campaign instead.
        """
        if (
            delta.removed_triples_1
            or delta.removed_triples_2
            or delta.added_gold_links
            or delta.retracted_gold_links
        ):
            raise ServingError(
                "serving fold-in only absorbs growth (new entities plus their "
                "triples); triple removals and gold-link changes need a retrain "
                "— use PartitionedCampaign.apply_update() then hot_swap()"
            )
        self._check_fold_in_supported()
        reports: list[FoldInReport] = []
        with self._swap_lock:
            for side in (1, 2):
                new_names = delta.added_entities_1 if side == 1 else delta.added_entities_2
                side_triples = delta.added_triples_1 if side == 1 else delta.added_triples_2
                order = {entity: i for i, entity in enumerate(new_names)}
                buckets: dict[str, list[tuple[str, str, str]]] = {
                    entity: [] for entity in new_names
                }
                for triple in side_triples:
                    head, _, tail = triple
                    owners = [endpoint for endpoint in (head, tail) if endpoint in order]
                    if not owners:
                        raise ServingError(
                            f"added triple {triple!r} must connect an added entity: "
                            f"it names existing side-{side} "
                            "entities only; serving fold-in cannot update frozen "
                            "rows — use PartitionedCampaign.apply_update() then "
                            "hot_swap()"
                        )
                    # a triple between two added entities belongs to the later
                    # one: by fold order its partner already exists
                    owner = max(owners, key=order.__getitem__)
                    buckets[owner].append(triple)
                for entity in new_names:
                    if not buckets[entity]:
                        raise ServingError(
                            f"added entity {entity!r} arrives with no side-{side} "
                            "triples; fold-in needs at least one to place it"
                        )
                    start = time.perf_counter()
                    reports.append(
                        self._fold_in_locked(entity, buckets[entity], side, steps, lr, start)
                    )
        return reports

    def fold_in(
        self,
        name: str,
        triples: Sequence[tuple[str, str, str]],
        side: int = 2,
        steps: int = 15,
        lr: float = 0.1,
    ) -> FoldInReport:
        """Add one new entity to the serving state without a full recompute.

        .. deprecated::
            ``fold_in(name, triples, side)`` is a thin wrapper over a
            single-entity delta; build a
            :meth:`KGDelta.single_entity <repro.updates.delta.KGDelta.single_entity>`
            (or any pure-growth delta) and call :meth:`apply_delta` instead.

        ``triples`` are ``(head, relation, tail)`` name triples in which
        ``name`` appears as head or tail and every other element already
        exists on ``side``.  The new entity's output-space embedding starts
        from the translational estimate implied by its neighbours and is
        refined by ``steps`` gradient steps of the frozen model's ``f_er`` —
        only the new row moves.  It is then appended to the cached similarity
        matrix as one new column (``side=2``) or row (``side=1``), and the
        whole updated state replaces the old one atomically.
        """
        warnings.warn(
            "AlignmentService.fold_in(name, triples, side) is deprecated; build "
            "a KGDelta (e.g. KGDelta.single_entity) and call apply_delta()",
            DeprecationWarning,
            stacklevel=2,
        )
        if side not in (1, 2):
            raise ValueError("side must be 1 or 2")
        self._check_fold_in_supported()
        if not triples:
            raise ServingError(f"fold-in of {name!r} needs at least one triple")
        from repro.updates.delta import KGDelta  # circular at module level

        reports = self.apply_delta(
            KGDelta.single_entity(name, triples, side=side), steps=steps, lr=lr
        )
        return reports[0]

    def _check_fold_in_supported(self) -> None:
        if not self._state.fold_in_supported:
            raise ServingError(
                "fold-in is not supported on this snapshot: it carries neither "
                "frozen per-side models nor per-piece fold contexts to optimise "
                "a new entity against; hot-swap a snapshot built from a "
                "pipeline, campaign or checkpoint instead"
            )

    def _fold_in_locked(
        self,
        name: str,
        triples: Sequence[tuple[str, str, str]],
        side: int,
        steps: int,
        lr: float,
        start: float,
    ) -> FoldInReport:
        # caller holds the swap lock: the read-modify-write of the snapshot
        # reference can neither be lost nor observed half-applied (queries
        # keep reading whichever snapshot is current)
        state = self._state
        if state.pieces is not None:
            new_state = self._fold_into_merged(state, name, triples, side, steps, lr)
        else:
            new_state = self._fold_into_pipeline(state, name, triples, side, steps, lr)
        self._state = new_state
        self.stats.bump("folds")
        self._fold_counter.inc()
        index = self.num_entities(side) - 1
        report = FoldInReport(
            name=name,
            side=side,
            index=index,
            num_triples=len(triples),
            seconds=time.perf_counter() - start,
            token=new_state.token,
        )
        logger.info(
            "folded in %s on side %d (%d triples, %.2f ms)",
            name, side, len(triples), report.seconds * 1e3,
        )
        return report

    def _fold_into_pipeline(
        self,
        state: ServingSnapshot,
        name: str,
        triples: Sequence[tuple[str, str, str]],
        side: int,
        steps: int,
        lr: float,
    ) -> ServingSnapshot:
        entity_index = state.entity_index_1 if side == 1 else state.entity_index_2
        if name in entity_index:
            raise ServingError(f"entity {name!r} already exists on side {side}")
        vector = self._solve_fold_vector(
            name,
            triples,
            side,
            entity_index=entity_index,
            relation_index=state.relation_index_1 if side == 1 else state.relation_index_2,
            entity_out=state.entity_out_1 if side == 1 else state.entity_out_2,
            relation_out=state.relation_out_1 if side == 1 else state.relation_out_2,
            model=state.model_1 if side == 1 else state.model_2,
            steps=steps,
            lr=lr,
        )
        return self._append_entity(state, side, name, vector)

    def _fold_into_merged(
        self,
        state: ServingSnapshot,
        name: str,
        triples: Sequence[tuple[str, str, str]],
        side: int,
        steps: int,
        lr: float,
    ) -> ServingSnapshot:
        """Fold ``name`` into the piece owning all of its neighbours.

        Partitions train independent embedding spaces, so the new entity can
        only be optimised inside one of them: the (first) piece whose
        side-``side`` vocabulary contains every neighbour entity and every
        relation of ``triples``.  Its similarity row/column is scattered into
        the merged view at the piece's global ids and left zero elsewhere —
        the same no-cross-piece-evidence semantics the partition cut gives
        trained entities.  A delta whose neighbours span several pieces has
        no such owner and must go through the campaign retrain path.
        """
        global_index = state.entity_index_1 if side == 1 else state.entity_index_2
        if name in global_index:
            raise ServingError(f"entity {name!r} already exists on side {side}")
        neighbours: set[str] = set()
        relations: set[str] = set()
        for head, relation, tail in triples:
            relations.add(relation)
            if head == name and tail != name:
                neighbours.add(tail)
            elif tail == name and head != name:
                neighbours.add(head)
            else:
                raise ServingError(
                    f"fold-in triple {(head, relation, tail)!r} must connect "
                    f"{name!r} to an existing side-{side} entity"
                )
        context = None
        position = -1
        for candidate_position, candidate in enumerate(state.pieces):
            entity_index = candidate.entity_index_1 if side == 1 else candidate.entity_index_2
            relation_index = (
                candidate.relation_index_1 if side == 1 else candidate.relation_index_2
            )
            if all(n in entity_index for n in neighbours) and all(
                r in relation_index for r in relations
            ):
                context = candidate
                position = candidate_position
                break
        if context is None:
            for neighbour in neighbours:
                if neighbour not in global_index:
                    raise ServingError(f"unknown KG{side} entity {neighbour!r}")
            global_relations = (
                state.relation_index_1 if side == 1 else state.relation_index_2
            )
            for relation in relations:
                if relation not in global_relations:
                    raise ServingError(f"unknown side-{side} relation {relation!r}")
            raise ServingError(
                f"fold-in of {name!r} spans multiple partitions (no single piece "
                "owns all of its neighbours and relations); apply the delta "
                "through PartitionedCampaign.apply_update() and hot_swap() the "
                "retrained campaign instead"
            )
        vector = self._solve_fold_vector(
            name,
            triples,
            side,
            entity_index=context.entity_index_1 if side == 1 else context.entity_index_2,
            relation_index=(
                context.relation_index_1 if side == 1 else context.relation_index_2
            ),
            entity_out=context.entity_out_1 if side == 1 else context.entity_out_2,
            relation_out=context.relation_out_1 if side == 1 else context.relation_out_2,
            model=context.model_1 if side == 1 else context.model_2,
            steps=steps,
            lr=lr,
        )
        return self._append_entity_merged(state, position, side, name, vector)

    @staticmethod
    def _solve_fold_vector(
        name: str,
        triples: Sequence[tuple[str, str, str]],
        side: int,
        *,
        entity_index: dict[str, int],
        relation_index: dict[str, int],
        entity_out: np.ndarray,
        relation_out: np.ndarray,
        model: "KGEmbeddingModel",
        steps: int,
        lr: float,
    ) -> np.ndarray:
        """The new entity's output-space embedding, refined against ``model``."""
        head_role: list[tuple[np.ndarray, np.ndarray]] = []  # (r_vec, tail_vec)
        tail_role: list[tuple[np.ndarray, np.ndarray]] = []  # (head_vec, r_vec)
        estimates: list[np.ndarray] = []
        for head, relation, tail in triples:
            if relation not in relation_index:
                raise ServingError(f"unknown side-{side} relation {relation!r}")
            r_vec = relation_out[relation_index[relation]]
            if head == name and tail in entity_index:
                tail_vec = entity_out[entity_index[tail]]
                head_role.append((r_vec, tail_vec))
                estimates.append(tail_vec - r_vec)
            elif tail == name and head in entity_index:
                head_vec = entity_out[entity_index[head]]
                tail_role.append((head_vec, r_vec))
                estimates.append(head_vec + r_vec)
            else:
                raise ServingError(
                    f"fold-in triple {(head, relation, tail)!r} must connect "
                    f"{name!r} to an existing side-{side} entity"
                )

        # Minimise Σ ½·f_er² over the new row only.  The squared objective is
        # what makes this stable: its gradient ``f_er · ∇f_er`` shrinks with
        # the residual, whereas raw ``∇f_er`` has unit magnitude for
        # norm-based scores and oscillates around the optimum.
        vector = np.mean(estimates, axis=0)
        scale = 1.0 / len(triples)
        for _ in range(max(0, steps)):
            grad = np.zeros_like(vector)
            for r_vec, tail_vec in head_role:
                score = model.score_np(vector, r_vec, tail_vec)
                grad += score * model.score_np_grad_head(vector, r_vec, tail_vec)
            for head_vec, r_vec in tail_role:
                score = model.score_np(head_vec, r_vec, vector)
                grad += score * model.score_np_grad_tail(head_vec, r_vec, vector)
            delta = lr * scale * grad
            vector -= delta
            if float(np.linalg.norm(delta)) < 1e-6 * max(1.0, float(np.linalg.norm(vector))):
                break  # converged — translational models often start at the optimum
        return vector

    @staticmethod
    def _append_entity(
        state: ServingSnapshot, side: int, name: str, vector: np.ndarray
    ) -> ServingSnapshot:
        """A new snapshot with ``vector`` appended on ``side`` (O(n·d) work).

        The explicitly-computed similarity row/column (embedding channel
        only — a cold entity has no structural evidence before the next full
        training round) is appended through the view, so dense views grow
        their matrix while streamed views collect it in a small tail shard.
        """
        similarity = dict(state.similarity)
        entity_view = similarity[ElementKind.ENTITY]
        token = f"{state.token}+fold{state.fold_count + 1}"
        if side == 2:
            unit = l2_normalize(vector)
            column = state.norm_mapped_1 @ unit
            similarity[ElementKind.ENTITY] = entity_view.append_col(column)
            index = dict(state.entity_index_2)
            index[name] = len(state.entity_names_2)
            return replace(
                state,
                token=token,
                fold_count=state.fold_count + 1,
                similarity=similarity,
                entity_names_2=state.entity_names_2 + (name,),
                entity_index_2=index,
                entity_out_2=np.concatenate([state.entity_out_2, vector[None, :]]),
                norm_out_2=np.concatenate([state.norm_out_2, unit[None, :]]),
            )
        mapped_unit = l2_normalize(vector @ state.map_entity)
        row = state.norm_out_2 @ mapped_unit
        similarity[ElementKind.ENTITY] = entity_view.append_row(row)
        index = dict(state.entity_index_1)
        index[name] = len(state.entity_names_1)
        return replace(
            state,
            token=token,
            fold_count=state.fold_count + 1,
            similarity=similarity,
            entity_names_1=state.entity_names_1 + (name,),
            entity_index_1=index,
            entity_out_1=np.concatenate([state.entity_out_1, vector[None, :]]),
            norm_mapped_1=np.concatenate([state.norm_mapped_1, mapped_unit[None, :]]),
        )

    @staticmethod
    def _append_entity_merged(
        state: ServingSnapshot,
        position: int,
        side: int,
        name: str,
        vector: np.ndarray,
    ) -> ServingSnapshot:
        """A new merged snapshot with ``vector`` folded into one piece.

        The appended similarity row/column is non-zero only at the owning
        piece's global ids (embedding channel of that piece's frozen space);
        every other piece contributes zero — a folded entity has no
        cross-piece evidence, exactly like a trained entity across the cut.
        Both the global snapshot and the owning piece's context grow by one
        entity, so later folds can neighbour on this one.
        """
        similarity = dict(state.similarity)
        entity_view = similarity[ElementKind.ENTITY]
        token = f"{state.token}+fold{state.fold_count + 1}"
        pieces = list(state.pieces)
        context = pieces[position]
        if side == 2:
            unit = l2_normalize(vector)
            column = np.zeros(entity_view.num_rows)
            column[context.rows_global] = context.norm_mapped_1 @ unit
            similarity[ElementKind.ENTITY] = entity_view.append_col(column)
            global_id = len(state.entity_names_2)
            index = dict(state.entity_index_2)
            index[name] = global_id
            local_index = dict(context.entity_index_2)
            local_index[name] = context.entity_out_2.shape[0]
            pieces[position] = replace(
                context,
                entity_index_2=local_index,
                entity_out_2=np.concatenate([context.entity_out_2, vector[None, :]]),
                norm_out_2=np.concatenate([context.norm_out_2, unit[None, :]]),
                cols_global=np.concatenate(
                    [context.cols_global, np.array([global_id], dtype=np.int64)]
                ),
            )
            return replace(
                state,
                token=token,
                fold_count=state.fold_count + 1,
                similarity=similarity,
                entity_names_2=state.entity_names_2 + (name,),
                entity_index_2=index,
                pieces=tuple(pieces),
            )
        mapped_unit = l2_normalize(vector @ context.map_entity)
        row = np.zeros(entity_view.num_cols)
        row[context.cols_global] = context.norm_out_2 @ mapped_unit
        similarity[ElementKind.ENTITY] = entity_view.append_row(row)
        global_id = len(state.entity_names_1)
        index = dict(state.entity_index_1)
        index[name] = global_id
        local_index = dict(context.entity_index_1)
        local_index[name] = context.entity_out_1.shape[0]
        pieces[position] = replace(
            context,
            entity_index_1=local_index,
            entity_out_1=np.concatenate([context.entity_out_1, vector[None, :]]),
            norm_mapped_1=np.concatenate([context.norm_mapped_1, mapped_unit[None, :]]),
            rows_global=np.concatenate(
                [context.rows_global, np.array([global_id], dtype=np.int64)]
            ),
        )
        return replace(
            state,
            token=token,
            fold_count=state.fold_count + 1,
            similarity=similarity,
            entity_names_1=state.entity_names_1 + (name,),
            entity_index_1=index,
            pieces=tuple(pieces),
        )

    # ------------------------------------------------------------------ cache
    def _cache_get(self, key: tuple):
        if self.cache_size == 0:
            return None
        with self._cache_lock:
            value = self._cache.get(key)
            if value is not None:
                self._cache.move_to_end(key)
        if value is not None:
            self.stats.bump("cache_hits")
            self._cache_hit_counter.inc()
        else:
            self._cache_miss_counter.inc()
        return value

    def _cache_put(self, key: tuple, value) -> None:
        if self.cache_size == 0:
            return
        with self._cache_lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    # ---------------------------------------------------------------- metrics
    def metrics(self) -> dict:
        """Service health in one call: throughput, latency quantiles, caches.

        Latency quantiles are read from the service's own request histogram
        (bucket interpolation — no per-request latency list is retained), so
        they cover every request since construction, are exact in count, and
        cost O(buckets) to compute.  ``snapshot`` carries the raw instrument
        state for exporters that want the full registry.
        """
        self._queue_gauge.set(len(self._pending))
        requests = sum(counter.value for counter in self._req_counters.values())
        elapsed = max(time.perf_counter() - self._created, 1e-9)
        lookups = self._cache_hit_counter.value + self._cache_miss_counter.value
        return {
            "requests_total": requests,
            "qps": requests / elapsed,
            "p50_latency_ms": self._lat_hist.quantile(0.5) * 1e3,
            "p99_latency_ms": self._lat_hist.quantile(0.99) * 1e3,
            "cache_hit_ratio": self._cache_hit_counter.value / lookups if lookups else 0.0,
            "queue_depth": len(self._pending),
            "flushes": self.stats.flushes,
            "hot_swaps": self.stats.swaps,
            "fold_ins": self.stats.folds,
            "uptime_seconds": elapsed,
            "snapshot": self.obs.snapshot(),
        }
