"""One call from any alignment artefact to a running serving surface.

:func:`serve` is the unified entry point of :mod:`repro.serving`: it accepts
whatever the rest of the stack produces — a fitted :class:`~repro.core.daakg.DAAKG`
pipeline, a :class:`~repro.active.campaign.PartitionedCampaign`, a prebuilt
:class:`~repro.serving.service.ServingSnapshot`, or a path to a pipeline
checkpoint or saved campaign directory — resolves it through the same
``_snapshot_from_source`` dispatch the service constructors use, and returns
either a bare :class:`AlignmentService` or a started
:class:`~repro.serving.frontend.ServingFrontend` around it.

The ``AlignmentService.from_pipeline`` / ``from_campaign`` /
``from_checkpoint`` constructors remain as delegating aliases for callers
that know their source kind and want the narrower signature.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.serving.frontend import FrontendConfig, ServingFrontend
from repro.serving.service import AlignmentService, _snapshot_from_source

if TYPE_CHECKING:  # pragma: no cover - import cycle with core
    from repro.active.campaign import PartitionedCampaign
    from repro.core.daakg import DAAKG
    from repro.serving.service import ServingSnapshot


def serve(
    source: "str | os.PathLike | DAAKG | PartitionedCampaign | ServingSnapshot",
    *,
    frontend: "bool | FrontendConfig | None" = None,
    max_batch: int = 64,
    cache_size: int = 4096,
) -> "AlignmentService | ServingFrontend":
    """Serve ``source``, whatever kind of alignment artefact it is.

    Parameters
    ----------
    source:
        A fitted pipeline, a partition-parallel campaign (its *merged*
        similarity state is served), a prebuilt snapshot, or a filesystem
        path holding either a pipeline checkpoint or a saved campaign.
    frontend:
        ``None``/``False`` (default) returns the bare
        :class:`AlignmentService`.  ``True`` wraps it in a
        :class:`ServingFrontend` with environment-resolved defaults; a
        :class:`FrontendConfig` wraps it with that exact configuration.
        The frontend is **started** before it is returned — callers own its
        lifecycle and should ``stop()`` it (its ``service`` attribute holds
        the underlying service).
    max_batch, cache_size:
        Forwarded to :class:`AlignmentService`.
    """
    service = AlignmentService(
        _snapshot_from_source(source), max_batch=max_batch, cache_size=cache_size
    )
    if frontend is None or frontend is False:
        return service
    config = frontend if isinstance(frontend, FrontendConfig) else None
    front = ServingFrontend(service, config=config)
    front.start()
    return front
