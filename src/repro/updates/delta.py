"""The :class:`KGDelta` value type: one immutable batch of KG changes.

Production KGs do not arrive once — they grow (new entities and triples),
shed stale facts (removed triples) and their alignments drift (gold links
appear and get retracted).  ``KGDelta`` captures one such batch as a frozen
value that every layer of the pipeline can reason about:

* :meth:`AlignedKGPair.apply_delta` (implemented here as
  :func:`apply_delta_to_pair`) turns ``pair + delta`` into a **new** pair —
  the old pair is never mutated, so snapshots, checkpoints and running
  pipelines that still reference it stay valid.
* :func:`repro.updates.routing.route_delta` restricts a delta to the
  campaign pieces it actually touches.
* :meth:`PartitionedCampaign.apply_update` warm-start retrains exactly
  those pieces; :meth:`AlignmentService.apply_delta` absorbs pure-growth
  deltas straight into a serving snapshot.

Vocabulary discipline: a delta only ever **appends** vocabulary — new
entities go to the end of the entity list in delta order, relations named by
added triples but missing from the vocabulary are appended in first-appearance
order.  Existing integer ids therefore remain valid across an update, which
is what makes warm-start checkpoints and global↔piece id maps survivable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.kg.elements import ElementKind, Triple
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair, GoldAlignment


class DeltaError(ValueError):
    """Raised for malformed deltas or deltas inconsistent with their pair."""


def _as_triples(value: Iterable[Sequence[str]], label: str) -> tuple[tuple[str, str, str], ...]:
    out = []
    for item in value:
        triple = tuple(str(part) for part in item)
        if len(triple) != 3:
            raise DeltaError(f"{label} entries must be (head, relation, tail), got {item!r}")
        out.append(triple)
    return tuple(out)


def _as_links(value: Iterable[Sequence[str]], label: str) -> tuple[tuple[str, str], ...]:
    out = []
    for item in value:
        link = tuple(str(part) for part in item)
        if len(link) != 2:
            raise DeltaError(f"{label} entries must be (kg1 name, kg2 name), got {item!r}")
        out.append(link)
    return tuple(out)


def _no_duplicates(values: Sequence, label: str) -> None:
    if len(values) != len(set(values)):
        raise DeltaError(f"duplicate entries in {label}")


@dataclass(frozen=True)
class KGDelta:
    """One immutable batch of changes to an :class:`AlignedKGPair`.

    Fields come in per-side pairs (``_1`` for KG1, ``_2`` for KG2); gold
    links always name ``(kg1 entity, kg2 entity)``.  Construction validates
    internal consistency only — consistency against a concrete pair is
    checked by :func:`apply_delta_to_pair`.
    """

    added_entities_1: tuple[str, ...] = ()
    added_entities_2: tuple[str, ...] = ()
    added_triples_1: tuple[tuple[str, str, str], ...] = ()
    added_triples_2: tuple[tuple[str, str, str], ...] = ()
    removed_triples_1: tuple[tuple[str, str, str], ...] = ()
    removed_triples_2: tuple[tuple[str, str, str], ...] = ()
    added_gold_links: tuple[tuple[str, str], ...] = ()
    retracted_gold_links: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        coerce = {
            "added_entities_1": tuple(str(e) for e in self.added_entities_1),
            "added_entities_2": tuple(str(e) for e in self.added_entities_2),
            "added_triples_1": _as_triples(self.added_triples_1, "added_triples_1"),
            "added_triples_2": _as_triples(self.added_triples_2, "added_triples_2"),
            "removed_triples_1": _as_triples(self.removed_triples_1, "removed_triples_1"),
            "removed_triples_2": _as_triples(self.removed_triples_2, "removed_triples_2"),
            "added_gold_links": _as_links(self.added_gold_links, "added_gold_links"),
            "retracted_gold_links": _as_links(self.retracted_gold_links, "retracted_gold_links"),
        }
        for name, value in coerce.items():
            object.__setattr__(self, name, value)
        for name in coerce:
            _no_duplicates(getattr(self, name), name)
        for side in (1, 2):
            added = set(getattr(self, f"added_triples_{side}"))
            removed = set(getattr(self, f"removed_triples_{side}"))
            both = added & removed
            if both:
                raise DeltaError(f"triples both added and removed on side {side}: {sorted(both)}")
        if set(self.added_gold_links) & set(self.retracted_gold_links):
            raise DeltaError("gold links both added and retracted in the same delta")
        left = [a for a, _ in self.added_gold_links]
        right = [b for _, b in self.added_gold_links]
        _no_duplicates(left, "added_gold_links left endpoints")
        _no_duplicates(right, "added_gold_links right endpoints")

    # ------------------------------------------------------------------ views
    @property
    def is_empty(self) -> bool:
        return not any(getattr(self, f.name) for f in dataclasses.fields(self))

    def entities(self, side: int) -> tuple[str, ...]:
        return self.added_entities_1 if side == 1 else self.added_entities_2

    def triples(self, side: int) -> tuple[tuple[str, str, str], ...]:
        return self.added_triples_1 if side == 1 else self.added_triples_2

    def summary(self) -> dict[str, int]:
        return {f.name: len(getattr(self, f.name)) for f in dataclasses.fields(self)}

    # ------------------------------------------------------------- constructors
    @classmethod
    def empty(cls) -> "KGDelta":
        return cls()

    @classmethod
    def single_entity(
        cls, name: str, triples: Iterable[Sequence[str]], side: int = 2
    ) -> "KGDelta":
        """The legacy ``fold_in`` payload: one new entity plus its triples."""
        if side not in (1, 2):
            raise DeltaError(f"side must be 1 or 2, got {side}")
        triples = _as_triples(triples, "triples")
        if side == 1:
            return cls(added_entities_1=(str(name),), added_triples_1=triples)
        return cls(added_entities_2=(str(name),), added_triples_2=triples)


# ----------------------------------------------------------------- application
def _apply_kg_delta(
    kg: KnowledgeGraph,
    added_entities: tuple[str, ...],
    added_triples: tuple[tuple[str, str, str], ...],
    removed_triples: tuple[tuple[str, str, str], ...],
    side: int,
) -> KnowledgeGraph:
    for entity in added_entities:
        if entity in kg.entity_index:
            raise DeltaError(f"added entity {entity!r} already exists in KG{side}")
    known = set(kg.entities)
    known.update(added_entities)
    existing = {t.as_tuple() for t in kg.triples}
    removed = set(removed_triples)
    for triple in removed_triples:
        if triple not in existing:
            raise DeltaError(f"removed triple {triple!r} does not exist in KG{side}")
    relations = list(kg.relations)
    seen_relations = set(relations)
    for head, relation, tail in added_triples:
        if head not in known or tail not in known:
            missing = head if head not in known else tail
            raise DeltaError(
                f"added triple ({head!r}, {relation!r}, {tail!r}) references "
                f"unknown KG{side} entity {missing!r}"
            )
        if (head, relation, tail) in existing:
            raise DeltaError(f"added triple ({head!r}, {relation!r}, {tail!r}) already present")
        if relation not in seen_relations:
            seen_relations.add(relation)
            relations.append(relation)
    triples = [t for t in kg.triples if t.as_tuple() not in removed]
    triples.extend(Triple(head, relation, tail) for head, relation, tail in added_triples)
    return KnowledgeGraph(
        name=kg.name,
        entities=list(kg.entities) + list(added_entities),
        relations=relations,
        classes=list(kg.classes),
        triples=triples,
        type_triples=list(kg.type_triples),
    )


def apply_delta_to_pair(pair: AlignedKGPair, delta: KGDelta) -> AlignedKGPair:
    """Pure delta application: returns a new pair, the input pair untouched.

    Vocabulary is append-only (existing ids stay valid); retracted gold
    links disappear from the alignment *and every split*; added gold links
    join the **train** split, because a freshly asserted link is supervision
    for the next (warm-start) training round, not held-out evaluation data.
    """
    if not isinstance(delta, KGDelta):
        raise DeltaError(f"expected a KGDelta, got {type(delta).__name__}")
    kg1 = _apply_kg_delta(
        pair.kg1, delta.added_entities_1, delta.added_triples_1, delta.removed_triples_1, side=1
    )
    kg2 = _apply_kg_delta(
        pair.kg2, delta.added_entities_2, delta.added_triples_2, delta.removed_triples_2, side=2
    )

    retracted = set(delta.retracted_gold_links)
    for link in delta.retracted_gold_links:
        if link not in pair.entity_alignment:
            raise DeltaError(f"retracted gold link {link!r} is not in the alignment")
    pairs = [p for p in pair.entity_alignment.pairs if p not in retracted]
    left_taken = {a for a, _ in pairs}
    right_taken = {b for _, b in pairs}
    for a, b in delta.added_gold_links:
        if a not in kg1.entity_index:
            raise DeltaError(f"added gold link names unknown KG1 entity {a!r}")
        if b not in kg2.entity_index:
            raise DeltaError(f"added gold link names unknown KG2 entity {b!r}")
        if a in left_taken:
            raise DeltaError(f"KG1 entity {a!r} already has a gold counterpart")
        if b in right_taken:
            raise DeltaError(f"KG2 entity {b!r} already has a gold counterpart")
        left_taken.add(a)
        right_taken.add(b)
    pairs.extend(delta.added_gold_links)

    def _strip(split: list[tuple[str, str]]) -> list[tuple[str, str]]:
        return [p for p in split if p not in retracted]

    return AlignedKGPair(
        name=pair.name,
        kg1=kg1,
        kg2=kg2,
        entity_alignment=GoldAlignment(ElementKind.ENTITY, pairs),
        relation_alignment=pair.relation_alignment,
        class_alignment=pair.class_alignment,
        train_entity_pairs=_strip(pair.train_entity_pairs) + list(delta.added_gold_links),
        valid_entity_pairs=_strip(pair.valid_entity_pairs),
        test_entity_pairs=_strip(pair.test_entity_pairs),
    )
