"""repro.updates — incremental end-to-end KG updates.

One immutable :class:`KGDelta` value flows through the whole pipeline:

* ``pair.apply_delta(delta)`` — pure dataset update (append-only vocabulary),
* :func:`route_delta` — restrict the delta to the campaign pieces it touches,
* ``PartitionedCampaign.apply_update(delta)`` — warm-start retrain exactly
  those pieces (:func:`warm_start_pipeline`) and re-merge,
* ``AlignmentService.apply_delta(delta)`` — absorb pure-growth deltas
  straight into a serving snapshot, merged campaign snapshots included.
"""

from repro.updates.delta import DeltaError, KGDelta, apply_delta_to_pair
from repro.updates.routing import DeltaRouting, route_delta
from repro.updates.warm_start import warm_start_pipeline

__all__ = [
    "DeltaError",
    "DeltaRouting",
    "KGDelta",
    "apply_delta_to_pair",
    "route_delta",
    "warm_start_pipeline",
]
