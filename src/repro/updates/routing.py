"""Delta routing: restrict a :class:`KGDelta` to the campaign pieces it touches.

The partition membership (``entity name → piece index``, both sides — see
:meth:`KGPairPartition.membership`) is the whole routing table: a delta
touches a piece exactly when it names one of the piece's entities or assigns
a new entity to it.  Routing produces, per touched piece, the *restriction*
of the delta to that piece — the same semantics :func:`partition_pair` uses
for triples and alignments:

* an added/removed triple lands in a piece's delta only when **both**
  endpoints live in that piece; a cross-piece triple touches both endpoint
  pieces (their boundary evidence changed) but appears in neither sub-KG,
  mirroring how partitioning cuts cross-piece edges;
* an added gold link between entities of the same piece joins that piece's
  alignment; a **cross-piece** gold link touches both pieces and joins
  neither (the no-cut-match invariant is preserved by construction for new
  entities: a new entity gold-linked to an existing one is *forced* into its
  counterpart's piece);
* new entities are assigned by neighbour vote over their added triples
  (gold-link constraints win over votes), with up to three passes so chains
  of new entities resolve, then deterministic round-robin for isolates —
  the same discipline as the partitioner's dangling attachment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.partition import KGPairPartition
from repro.updates.delta import DeltaError, KGDelta


@dataclass(frozen=True)
class DeltaRouting:
    """Where a delta lands: touched pieces, per-piece restrictions, assignments."""

    touched: tuple[int, ...]
    piece_deltas: dict[int, KGDelta]
    assignments_1: dict[str, int]
    assignments_2: dict[str, int]

    def summary(self) -> dict:
        return {
            "touched": list(self.touched),
            "new_entities_1": dict(self.assignments_1),
            "new_entities_2": dict(self.assignments_2),
        }


def _assign_new_entities(
    partition: KGPairPartition,
    delta: KGDelta,
    member: tuple[dict[str, int], dict[str, int]],
) -> tuple[dict[str, int], dict[str, int]]:
    """Deterministic piece assignment for every added entity, both sides."""
    num = partition.num_partitions
    new_1 = {name: position for position, name in enumerate(delta.added_entities_1)}
    new_2 = {name: position for position, name in enumerate(delta.added_entities_2)}

    # Units: a lone new entity, or a pair of new entities joined by a gold
    # link (assigned jointly so the link is never cut).  A new entity linked
    # to an *existing* entity is forced into the counterpart's piece.
    forced: dict[tuple[int, str], int] = {}
    partner: dict[tuple[int, str], tuple[int, str]] = {}
    for a, b in delta.added_gold_links:
        a_new, b_new = a in new_1, b in new_2
        if a_new and b_new:
            partner[(1, a)] = (2, b)
            partner[(2, b)] = (1, a)
        elif a_new:
            if b not in member[1]:
                raise DeltaError(f"gold link endpoint {b!r} is in no partition piece")
            forced[(1, a)] = member[1][b]
        elif b_new:
            if a not in member[0]:
                raise DeltaError(f"gold link endpoint {a!r} is in no partition piece")
            forced[(2, b)] = member[0][a]

    assigned: dict[tuple[int, str], int] = {}
    for key, pid in forced.items():
        assigned[key] = pid
        mate = partner.get(key)
        if mate is not None:
            assigned[mate] = pid

    def _votes(side: int, name: str) -> dict[int, int]:
        votes: dict[int, int] = {}
        triples = delta.triples(side)
        side_member = member[side - 1]
        side_new = new_1 if side == 1 else new_2
        for head, _, tail in triples:
            if name not in (head, tail):
                continue
            other = tail if head == name else head
            if other == name:
                continue
            pid = side_member.get(other)
            if pid is None and other in side_new:
                pid = assigned.get((side, other))
            if pid is not None:
                votes[pid] = votes.get(pid, 0) + 1
        return votes

    pending = [(1, name) for name in delta.added_entities_1] + [
        (2, name) for name in delta.added_entities_2
    ]
    pending = [key for key in pending if key not in assigned]
    for _ in range(3):
        if not pending:
            break
        still = []
        for key in pending:
            if key in assigned:
                continue
            side, name = key
            votes = _votes(side, name)
            mate = partner.get(key)
            if mate is not None:
                for pid, count in _votes(*mate).items():
                    votes[pid] = votes.get(pid, 0) + count
            if votes:
                best = max(votes.values())
                pid = min(p for p, count in votes.items() if count == best)
                assigned[key] = pid
                if mate is not None:
                    assigned[mate] = pid
            else:
                still.append(key)
        pending = [key for key in still if key not in assigned]
    for position, key in enumerate(pending):
        if key in assigned:
            continue
        pid = position % num
        assigned[key] = pid
        mate = partner.get(key)
        if mate is not None:
            assigned[mate] = pid

    return (
        {name: assigned[(1, name)] for name in delta.added_entities_1},
        {name: assigned[(2, name)] for name in delta.added_entities_2},
    )


def route_delta(partition: KGPairPartition, delta: KGDelta) -> DeltaRouting:
    """Split ``delta`` into per-piece restrictions and the touched-piece set."""
    if not isinstance(delta, KGDelta):
        raise DeltaError(f"expected a KGDelta, got {type(delta).__name__}")
    if delta.is_empty:
        return DeltaRouting(touched=(), piece_deltas={}, assignments_1={}, assignments_2={})
    if partition.num_partitions == 1:
        return DeltaRouting(
            touched=(0,),
            piece_deltas={0: delta},
            assignments_1=dict.fromkeys(delta.added_entities_1, 0),
            assignments_2=dict.fromkeys(delta.added_entities_2, 0),
        )

    member = partition.membership()
    assignments_1, assignments_2 = _assign_new_entities(partition, delta, member)
    assignments = (assignments_1, assignments_2)

    def _pid(side: int, name: str) -> int:
        pid = member[side - 1].get(name)
        if pid is None:
            pid = assignments[side - 1].get(name)
        if pid is None:
            raise DeltaError(f"delta names unknown KG{side} entity {name!r}")
        return pid

    touched: set[int] = set()
    touched.update(assignments_1.values())
    touched.update(assignments_2.values())

    per_piece: dict[int, dict[str, list]] = {}

    def _bucket(pid: int) -> dict[str, list]:
        return per_piece.setdefault(
            pid,
            {field: [] for field in (
                "added_entities_1", "added_entities_2",
                "added_triples_1", "added_triples_2",
                "removed_triples_1", "removed_triples_2",
                "added_gold_links", "retracted_gold_links",
            )},
        )

    for side, names in ((1, delta.added_entities_1), (2, delta.added_entities_2)):
        for name in names:
            _bucket(assignments[side - 1][name])[f"added_entities_{side}"].append(name)

    for side in (1, 2):
        for kind in ("added", "removed"):
            for triple in getattr(delta, f"{kind}_triples_{side}"):
                head_pid = _pid(side, triple[0])
                tail_pid = _pid(side, triple[2])
                touched.update((head_pid, tail_pid))
                if head_pid == tail_pid:
                    _bucket(head_pid)[f"{kind}_triples_{side}"].append(triple)

    for a, b in delta.added_gold_links:
        pid_a, pid_b = _pid(1, a), _pid(2, b)
        touched.update((pid_a, pid_b))
        if pid_a == pid_b:
            _bucket(pid_a)["added_gold_links"].append((a, b))
    for a, b in delta.retracted_gold_links:
        pid_a, pid_b = _pid(1, a), _pid(2, b)
        touched.update((pid_a, pid_b))
        if pid_a == pid_b and (a, b) in partition.pieces[pid_a].pair.entity_alignment:
            _bucket(pid_a)["retracted_gold_links"].append((a, b))

    piece_deltas = {
        pid: KGDelta(**{key: tuple(values) for key, values in bucket.items()})
        for pid, bucket in per_piece.items()
    }
    piece_deltas = {pid: d for pid, d in piece_deltas.items() if not d.is_empty}
    return DeltaRouting(
        touched=tuple(sorted(touched)),
        piece_deltas=piece_deltas,
        assignments_1=assignments_1,
        assignments_2=assignments_2,
    )
