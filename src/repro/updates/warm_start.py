"""Warm-start transplant: seed a fresh pipeline from an old piece checkpoint.

After a delta changes a campaign piece's sub-pair, the piece's checkpoint no
longer restores (`load_state_dict` is strict and the vocabularies grew), but
almost all of its learned state is still valid.  ``warm_start_pipeline``
copies every compatible parameter from the old checkpoint into a freshly
built pipeline on the *updated* pair:

* same-shape parameters are copied outright (maps, biases, encoder weights,
  and any vocabulary whose size the delta did not change);
* vocabulary-sized parameters (first dimension = an entity/relation/class
  vocabulary of the piece's **working** KGs) are transplanted *row by name*.
  Name mapping — not prefix copying — is mandatory: the working space
  appends inverse relations after the base relations
  (:func:`augment_working_kgs`), so one new relation shifts every inverse
  relation's index even though only vocabulary was appended.

Rows for new names keep their fresh initialisation (drawn from the piece's
deterministic RNG streams), and the RNG streams themselves are never
touched — so the transplant is a pure function of (old checkpoint bytes,
new piece pair, config).  That determinism is what makes an incremental
campaign resumed from disk byte-identical to one that never stopped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.persistence.checkpoint import Checkpoint
from repro.persistence.codec import pair_from_arrays

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.daakg import DAAKG


def _row_map(
    key: str,
    old_arr: np.ndarray,
    new_arr: np.ndarray,
    kgs_1: tuple,
    kgs_2: tuple,
) -> np.ndarray | None:
    """Transplant ``old_arr`` rows into a copy of ``new_arr`` by vocabulary name."""
    if old_arr.ndim != new_arr.ndim or old_arr.ndim < 1:
        return None
    if old_arr.shape[1:] != new_arr.shape[1:]:
        return None
    if key.startswith(("model1.", "class_scorer1.")):
        old_kg, new_kg = kgs_1
    elif key.startswith(("model2.", "class_scorer2.")):
        old_kg, new_kg = kgs_2
    else:
        return None
    vocabularies = (
        (old_kg.entities, new_kg.entities, new_kg.entity_index),
        (old_kg.relations, new_kg.relations, new_kg.relation_index),
        (old_kg.classes, new_kg.classes, new_kg.class_index),
    )
    for old_names, new_names, new_index in vocabularies:
        if len(old_names) != old_arr.shape[0] or len(new_names) != new_arr.shape[0]:
            continue
        targets = np.array([new_index.get(name, -1) for name in old_names], dtype=np.int64)
        keep = targets >= 0
        out = new_arr.copy()
        out[targets[keep]] = old_arr[keep]
        return out
    return None


def warm_start_pipeline(pipeline: "DAAKG", checkpoint: Checkpoint) -> dict[str, int]:
    """Seed ``pipeline`` (fresh, unfitted, on the updated pair) from ``checkpoint``.

    Returns transplant counts: ``copied`` (same shape), ``row_mapped``
    (vocabulary-sized, mapped by name) and ``fresh`` (no compatible source —
    the parameter keeps its fresh initialisation).
    """
    from repro.core.daakg import augment_working_kgs  # circular at module level

    old_pair = pair_from_arrays("dataset", checkpoint.arrays)
    old_kg1, old_kg2, _ = augment_working_kgs(old_pair, pipeline.config)
    new_kg1, new_kg2 = pipeline.pair.kg1, pipeline.pair.kg2
    old_model = checkpoint.section("model")

    state = pipeline.model.state_dict()
    counts = {"copied": 0, "row_mapped": 0, "fresh": 0}
    for key, new_arr in state.items():
        old_arr = old_model.get(key)
        if old_arr is None:
            counts["fresh"] += 1
            continue
        if old_arr.shape == new_arr.shape:
            state[key] = old_arr.copy()
            counts["copied"] += 1
            continue
        mapped = _row_map(key, old_arr, new_arr, (old_kg1, new_kg1), (old_kg2, new_kg2))
        if mapped is None:
            counts["fresh"] += 1
        else:
            state[key] = mapped
            counts["row_mapped"] += 1
    pipeline.model.load_state_dict(state, strict=True)
    return counts
