"""Reading and writing KG pairs in the OpenEA on-disk layout.

The OpenEA benchmark (used by the paper) stores each dataset as a directory::

    rel_triples_1   rel_triples_2     # tab-separated (head, relation, tail)
    attr_triples_1  attr_triples_2    # ignored here (literal attributes)
    ent_links                         # tab-separated gold entity matches

This module reads/writes that layout, extended with optional files used by
this reproduction: ``type_triples_{1,2}`` for entity-class memberships,
``rel_links`` / ``cls_links`` for gold schema matches, and
``ent_links_{train,valid,test}`` for the entity-match split (so a saved
dataset restores with the exact split it was trained on, instead of silently
dropping it).  Datasets produced by :mod:`repro.datasets` round-trip through
these functions, and a real OpenEA download can be loaded with the same call.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

from repro.kg.elements import ElementKind
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair, GoldAlignment


def _read_tsv(path: Path, n_cols: int) -> list[tuple[str, ...]]:
    rows: list[tuple[str, ...]] = []
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != n_cols:
                raise ValueError(f"{path}:{line_no}: expected {n_cols} columns, got {len(parts)}")
            rows.append(tuple(parts))
    return rows


def _write_tsv(path: Path, rows: Iterable[tuple[str, ...]]) -> None:
    with open(path, "w", encoding="utf-8") as f:
        for row in rows:
            f.write("\t".join(row) + "\n")


def _load_kg(directory: Path, side: int, name: str) -> KnowledgeGraph:
    rel_path = directory / f"rel_triples_{side}"
    triples = _read_tsv(rel_path, 3) if rel_path.exists() else []
    type_path = directory / f"type_triples_{side}"
    type_rows = _read_tsv(type_path, 2) if type_path.exists() else []
    return KnowledgeGraph.from_triples(name, triples, type_rows)


def load_openea_directory(directory: str | os.PathLike, name: str | None = None) -> AlignedKGPair:
    """Load an OpenEA-style dataset directory into an :class:`AlignedKGPair`."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"dataset directory not found: {directory}")
    dataset_name = name or directory.name
    kg1 = _load_kg(directory, 1, f"{dataset_name}-kg1")
    kg2 = _load_kg(directory, 2, f"{dataset_name}-kg2")

    ent_links_path = directory / "ent_links"
    ent_pairs = [tuple(r) for r in _read_tsv(ent_links_path, 2)] if ent_links_path.exists() else []
    rel_links_path = directory / "rel_links"
    rel_pairs = [tuple(r) for r in _read_tsv(rel_links_path, 2)] if rel_links_path.exists() else []
    cls_links_path = directory / "cls_links"
    cls_pairs = [tuple(r) for r in _read_tsv(cls_links_path, 2)] if cls_links_path.exists() else []

    splits = {}
    for split in ("train", "valid", "test"):
        split_path = directory / f"ent_links_{split}"
        splits[split] = (
            [tuple(r) for r in _read_tsv(split_path, 2)] if split_path.exists() else []
        )

    return AlignedKGPair(
        name=dataset_name,
        kg1=kg1,
        kg2=kg2,
        entity_alignment=GoldAlignment(ElementKind.ENTITY, ent_pairs),
        relation_alignment=GoldAlignment(ElementKind.RELATION, rel_pairs),
        class_alignment=GoldAlignment(ElementKind.CLASS, cls_pairs),
        train_entity_pairs=splits["train"],
        valid_entity_pairs=splits["valid"],
        test_entity_pairs=splits["test"],
    )


def save_openea_directory(pair: AlignedKGPair, directory: str | os.PathLike) -> None:
    """Write an :class:`AlignedKGPair` in the OpenEA-style layout."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for side, kg in ((1, pair.kg1), (2, pair.kg2)):
        _write_tsv(directory / f"rel_triples_{side}", (t.as_tuple() for t in kg.triples))
        _write_tsv(
            directory / f"type_triples_{side}",
            ((tt.entity, tt.cls) for tt in kg.type_triples),
        )
    _write_tsv(directory / "ent_links", pair.entity_alignment.pairs)
    _write_tsv(directory / "rel_links", pair.relation_alignment.pairs)
    _write_tsv(directory / "cls_links", pair.class_alignment.pairs)
    for split, pairs in (
        ("train", pair.train_entity_pairs),
        ("valid", pair.valid_entity_pairs),
        ("test", pair.test_entity_pairs),
    ):
        if pairs:
            _write_tsv(directory / f"ent_links_{split}", pairs)
