"""The :class:`KnowledgeGraph` data model.

A KG is the quadruple ``G = (E, R, C, T)`` from the paper: entity, relation and
class vocabularies plus two triple stores (relation triples between entities,
and type triples between entities and classes).  The class keeps dense integer
indexes for all three vocabularies, because every downstream component
(embedding models, alignment graph, pool generation) works on index arrays.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.kg.elements import INVERSE_SUFFIX, Triple, TypeTriple


class KGError(ValueError):
    """Raised for malformed KG construction or lookups of unknown elements."""


@dataclass
class KnowledgeGraph:
    """An in-memory knowledge graph with integer indexing.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"dbpedia"``).
    entities, relations, classes:
        Vocabularies.  Order defines the integer index of each element.
    triples:
        Relation triples ``(head entity, relation, tail entity)``.
    type_triples:
        Type triples ``(entity, class)``.
    """

    name: str
    entities: list[str] = field(default_factory=list)
    relations: list[str] = field(default_factory=list)
    classes: list[str] = field(default_factory=list)
    triples: list[Triple] = field(default_factory=list)
    type_triples: list[TypeTriple] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate_unique("entities", self.entities)
        self._validate_unique("relations", self.relations)
        self._validate_unique("classes", self.classes)
        self.entity_index: dict[str, int] = {e: i for i, e in enumerate(self.entities)}
        self.relation_index: dict[str, int] = {r: i for i, r in enumerate(self.relations)}
        self.class_index: dict[str, int] = {c: i for i, c in enumerate(self.classes)}
        self._check_triples()
        self._build_adjacency()

    # ------------------------------------------------------------------ setup
    @staticmethod
    def _validate_unique(kind: str, values: Sequence[str]) -> None:
        if len(values) != len(set(values)):
            raise KGError(f"duplicate {kind} in KG vocabulary")

    def _check_triples(self) -> None:
        for t in self.triples:
            if t.head not in self.entity_index or t.tail not in self.entity_index:
                raise KGError(f"triple references unknown entity: {t}")
            if t.relation not in self.relation_index:
                raise KGError(f"triple references unknown relation: {t}")
        for tt in self.type_triples:
            if tt.entity not in self.entity_index:
                raise KGError(f"type triple references unknown entity: {tt}")
            if tt.cls not in self.class_index:
                raise KGError(f"type triple references unknown class: {tt}")

    def _build_adjacency(self) -> None:
        # index arrays of shape (n_triples, 3): head idx, relation idx, tail idx
        if self.triples:
            self.triple_array = np.array(
                [
                    (
                        self.entity_index[t.head],
                        self.relation_index[t.relation],
                        self.entity_index[t.tail],
                    )
                    for t in self.triples
                ],
                dtype=np.int64,
            )
        else:
            self.triple_array = np.empty((0, 3), dtype=np.int64)
        if self.type_triples:
            self.type_array = np.array(
                [
                    (self.entity_index[tt.entity], self.class_index[tt.cls])
                    for tt in self.type_triples
                ],
                dtype=np.int64,
            )
        else:
            self.type_array = np.empty((0, 2), dtype=np.int64)

        self._out_edges: dict[int, list[tuple[int, int]]] = defaultdict(list)
        self._in_edges: dict[int, list[tuple[int, int]]] = defaultdict(list)
        self._relation_triples: dict[int, list[int]] = defaultdict(list)
        for pos, (h, r, t) in enumerate(self.triple_array):
            self._out_edges[int(h)].append((int(r), int(t)))
            self._in_edges[int(t)].append((int(r), int(h)))
            self._relation_triples[int(r)].append(pos)
        self._entity_classes: dict[int, list[int]] = defaultdict(list)
        self._class_entities: dict[int, list[int]] = defaultdict(list)
        for e, c in self.type_array:
            self._entity_classes[int(e)].append(int(c))
            self._class_entities[int(c)].append(int(e))

    # --------------------------------------------------------------- counting
    @property
    def num_entities(self) -> int:
        return len(self.entities)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def num_triples(self) -> int:
        return len(self.triples)

    @property
    def num_type_triples(self) -> int:
        return len(self.type_triples)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KnowledgeGraph(name={self.name!r}, |E|={self.num_entities}, "
            f"|R|={self.num_relations}, |C|={self.num_classes}, "
            f"|T|={self.num_triples}+{self.num_type_triples})"
        )

    # ---------------------------------------------------------------- lookups
    def entity_id(self, name: str) -> int:
        try:
            return self.entity_index[name]
        except KeyError as exc:
            raise KGError(f"unknown entity {name!r} in KG {self.name!r}") from exc

    def relation_id(self, name: str) -> int:
        try:
            return self.relation_index[name]
        except KeyError as exc:
            raise KGError(f"unknown relation {name!r} in KG {self.name!r}") from exc

    def class_id(self, name: str) -> int:
        try:
            return self.class_index[name]
        except KeyError as exc:
            raise KGError(f"unknown class {name!r} in KG {self.name!r}") from exc

    def out_edges(self, entity: int) -> list[tuple[int, int]]:
        """Outgoing ``(relation index, tail entity index)`` pairs of an entity."""
        return self._out_edges.get(entity, [])

    def in_edges(self, entity: int) -> list[tuple[int, int]]:
        """Incoming ``(relation index, head entity index)`` pairs of an entity."""
        return self._in_edges.get(entity, [])

    def neighbors(self, entity: int) -> set[int]:
        """Entity indexes adjacent to ``entity`` in either direction."""
        out = {t for _, t in self.out_edges(entity)}
        inc = {h for _, h in self.in_edges(entity)}
        return out | inc

    def entity_degree(self, entity: int) -> int:
        return len(self.out_edges(entity)) + len(self.in_edges(entity))

    def classes_of(self, entity: int) -> list[int]:
        """Class indexes an entity belongs to (may be several: many-to-one)."""
        return self._entity_classes.get(entity, [])

    def entities_of_class(self, cls: int) -> list[int]:
        return self._class_entities.get(cls, [])

    def triples_of_relation(self, relation: int) -> np.ndarray:
        """Rows of :attr:`triple_array` that use the given relation index."""
        rows = self._relation_triples.get(relation, [])
        if not rows:
            return np.empty((0, 3), dtype=np.int64)
        return self.triple_array[rows]

    def relations_of_entity(self, entity: int) -> set[int]:
        """Relation indexes incident to ``entity`` (either direction)."""
        rels = {r for r, _ in self.out_edges(entity)}
        rels |= {r for r, _ in self.in_edges(entity)}
        return rels

    def iter_triples(self) -> Iterator[Triple]:
        return iter(self.triples)

    def iter_type_triples(self) -> Iterator[TypeTriple]:
        return iter(self.type_triples)

    # ------------------------------------------------------------ derivations
    def with_inverse_relations(self) -> "KnowledgeGraph":
        """Return a copy where every triple also has a synthetic reverse triple.

        The paper adds ``(tail, r^-1, head)`` for every ``(head, r, tail)`` so
        that negative sampling only corrupts tails (Sect. 4.1, Eq. 1).
        Idempotent: inverse relations are not inverted again.
        """
        new_relations = list(self.relations)
        rel_set = set(new_relations)
        new_triples = list(self.triples)
        existing = {t.as_tuple() for t in self.triples}
        for t in self.triples:
            if t.relation.endswith(INVERSE_SUFFIX):
                continue
            inv = t.relation + INVERSE_SUFFIX
            if inv not in rel_set:
                rel_set.add(inv)
                new_relations.append(inv)
            reverse = Triple(t.tail, inv, t.head)
            if reverse.as_tuple() in existing:
                continue
            existing.add(reverse.as_tuple())
            new_triples.append(reverse)
        return KnowledgeGraph(
            name=self.name,
            entities=list(self.entities),
            relations=new_relations,
            classes=list(self.classes),
            triples=new_triples,
            type_triples=list(self.type_triples),
        )

    def subgraph_of_entities(self, keep: Iterable[str]) -> "KnowledgeGraph":
        """Restrict the KG to ``keep`` entities, dropping dangling triples.

        Relations and classes that lose all their triples are removed as well.
        Used to emulate the paper's protocol of removing 30% of KG2's entities
        to create dangling cases.
        """
        keep_set = set(keep)
        unknown = keep_set - set(self.entities)
        if unknown:
            raise KGError(f"cannot keep unknown entities: {sorted(unknown)[:5]}")
        triples = [t for t in self.triples if t.head in keep_set and t.tail in keep_set]
        type_triples = [tt for tt in self.type_triples if tt.entity in keep_set]
        used_relations = {t.relation for t in triples}
        used_classes = {tt.cls for tt in type_triples}
        return KnowledgeGraph(
            name=self.name,
            entities=[e for e in self.entities if e in keep_set],
            relations=[r for r in self.relations if r in used_relations],
            classes=[c for c in self.classes if c in used_classes],
            triples=triples,
            type_triples=type_triples,
        )

    def relation_name(self, idx: int) -> str:
        return self.relations[idx]

    def entity_name(self, idx: int) -> str:
        return self.entities[idx]

    def class_name(self, idx: int) -> str:
        return self.classes[idx]

    @classmethod
    def from_triples(
        cls,
        name: str,
        triples: Iterable[tuple[str, str, str]],
        type_triples: Iterable[tuple[str, str]] = (),
    ) -> "KnowledgeGraph":
        """Build a KG from raw string triples, inferring the vocabularies.

        Vocabulary order is first-appearance order, which keeps construction
        deterministic for a given triple order.
        """
        entities: list[str] = []
        relations: list[str] = []
        classes: list[str] = []
        seen_e: set[str] = set()
        seen_r: set[str] = set()
        seen_c: set[str] = set()
        tr: list[Triple] = []
        tt: list[TypeTriple] = []
        for h, r, t in triples:
            for e in (h, t):
                if e not in seen_e:
                    seen_e.add(e)
                    entities.append(e)
            if r not in seen_r:
                seen_r.add(r)
                relations.append(r)
            tr.append(Triple(h, r, t))
        for e, c in type_triples:
            if e not in seen_e:
                seen_e.add(e)
                entities.append(e)
            if c not in seen_c:
                seen_c.add(c)
                classes.append(c)
            tt.append(TypeTriple(e, c))
        return cls(
            name=name,
            entities=entities,
            relations=relations,
            classes=classes,
            triples=tr,
            type_triples=tt,
        )
