"""Basic KG element types.

Elements (entities, relations, classes) are referred to by string names at the
API boundary and by dense integer indexes internally.  The enum
:class:`ElementKind` tags which namespace an element or element pair lives in;
it is used throughout the alignment, inference-power and active-learning code
to mix entity/relation/class pairs in a single pool, as the paper does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ElementKind(str, enum.Enum):
    """The three element namespaces of a KG ``G = (E, R, C, T)``."""

    ENTITY = "entity"
    RELATION = "relation"
    CLASS = "class"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Triple:
    """A relation triplet ``(head entity, relation, tail entity)``."""

    head: str
    relation: str
    tail: str

    def reversed(self, suffix: str = "^-1") -> "Triple":
        """The synthetic reverse triplet ``(tail, relation^-1, head)``.

        The paper adds a reverse triplet for every relation triplet so that
        negative sampling only needs to corrupt tail entities (Sect. 4.1).
        """
        return Triple(self.tail, self.relation + suffix, self.head)

    def as_tuple(self) -> tuple[str, str, str]:
        return (self.head, self.relation, self.tail)


@dataclass(frozen=True)
class TypeTriple:
    """A type triplet ``(entity, type, class)``."""

    entity: str
    cls: str

    def as_tuple(self) -> tuple[str, str, str]:
        return (self.entity, "type", self.cls)


INVERSE_SUFFIX = "^-1"


def is_inverse_relation(name: str) -> bool:
    """True if ``name`` denotes a synthetic reverse relation."""
    return name.endswith(INVERSE_SUFFIX)


def base_relation(name: str) -> str:
    """Strip the inverse suffix, returning the forward relation name."""
    if is_inverse_relation(name):
        return name[: -len(INVERSE_SUFFIX)]
    return name
