"""Aligned KG pairs: two KGs plus gold entity/relation/class matches.

This is the unit of work for every experiment in the paper: the OpenEA-style
datasets (Table 2) are each an :class:`AlignedKGPair`, and train/valid/test
splits of the gold entity matches drive supervised, semi-supervised and active
learning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.kg.elements import ElementKind
from repro.kg.graph import KGError, KnowledgeGraph
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class SplitRatios:
    """Train/validation/test fractions of the gold entity matches."""

    train: float = 0.2
    valid: float = 0.1
    test: float = 0.7

    def __post_init__(self) -> None:
        total = self.train + self.valid + self.test
        if not np.isclose(total, 1.0):
            raise ValueError(f"split ratios must sum to 1, got {total}")
        if min(self.train, self.valid, self.test) < 0:
            raise ValueError("split ratios must be non-negative")


@dataclass
class GoldAlignment:
    """Gold matches for one element kind, as name pairs ``(kg1 name, kg2 name)``."""

    kind: ElementKind
    pairs: list[tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._left = {a: b for a, b in self.pairs}
        self._right = {b: a for a, b in self.pairs}

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return self._left.get(pair[0]) == pair[1]

    def counterpart_of_left(self, name: str) -> str | None:
        return self._left.get(name)

    def counterpart_of_right(self, name: str) -> str | None:
        return self._right.get(name)

    def as_set(self) -> set[tuple[str, str]]:
        return set(self.pairs)


@dataclass
class AlignedKGPair:
    """Two KGs, their gold alignments, and a train/valid/test split of entities."""

    name: str
    kg1: KnowledgeGraph
    kg2: KnowledgeGraph
    entity_alignment: GoldAlignment
    relation_alignment: GoldAlignment
    class_alignment: GoldAlignment
    train_entity_pairs: list[tuple[str, str]] = field(default_factory=list)
    valid_entity_pairs: list[tuple[str, str]] = field(default_factory=list)
    test_entity_pairs: list[tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._check_alignment(self.entity_alignment, self.kg1.entity_index, self.kg2.entity_index)
        self._check_alignment(
            self.relation_alignment, self.kg1.relation_index, self.kg2.relation_index
        )
        self._check_alignment(self.class_alignment, self.kg1.class_index, self.kg2.class_index)

    @staticmethod
    def _check_alignment(alignment: GoldAlignment, left: dict, right: dict) -> None:
        for a, b in alignment.pairs:
            if a not in left:
                raise KGError(f"gold {alignment.kind} match references unknown left element {a!r}")
            if b not in right:
                raise KGError(f"gold {alignment.kind} match references unknown right element {b!r}")

    # ------------------------------------------------------------------ views
    def gold(self, kind: ElementKind) -> GoldAlignment:
        if kind is ElementKind.ENTITY:
            return self.entity_alignment
        if kind is ElementKind.RELATION:
            return self.relation_alignment
        return self.class_alignment

    def entity_match_ids(self, pairs: Sequence[tuple[str, str]] | None = None) -> np.ndarray:
        """Gold entity matches as an ``(n, 2)`` array of (kg1 idx, kg2 idx)."""
        use = self.entity_alignment.pairs if pairs is None else pairs
        if not use:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(
            [(self.kg1.entity_id(a), self.kg2.entity_id(b)) for a, b in use],
            dtype=np.int64,
        )

    def relation_match_ids(self) -> np.ndarray:
        if not self.relation_alignment.pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(
            [
                (self.kg1.relation_id(a), self.kg2.relation_id(b))
                for a, b in self.relation_alignment.pairs
            ],
            dtype=np.int64,
        )

    def class_match_ids(self) -> np.ndarray:
        if not self.class_alignment.pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(
            [
                (self.kg1.class_id(a), self.kg2.class_id(b))
                for a, b in self.class_alignment.pairs
            ],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------ split
    def split_entity_matches(
        self, ratios: SplitRatios = SplitRatios(), seed: RandomState = 0
    ) -> None:
        """Shuffle gold entity matches into train/valid/test partitions in place."""
        rng = ensure_rng(seed)
        pairs = list(self.entity_alignment.pairs)
        order = rng.permutation(len(pairs))
        n_train = int(round(ratios.train * len(pairs)))
        n_valid = int(round(ratios.valid * len(pairs)))
        shuffled = [pairs[i] for i in order]
        self.train_entity_pairs = shuffled[:n_train]
        self.valid_entity_pairs = shuffled[n_train : n_train + n_valid]
        self.test_entity_pairs = shuffled[n_train + n_valid :]

    # ----------------------------------------------------------------- updates
    def apply_delta(self, delta) -> "AlignedKGPair":
        """Pure update: return a new pair with ``delta`` applied; ``self`` is untouched.

        ``delta`` is a :class:`repro.updates.KGDelta`.  Vocabulary is
        append-only, so every existing integer id stays valid in the new
        pair — see :mod:`repro.updates.delta` for the full semantics.
        """
        from repro.updates.delta import apply_delta_to_pair  # circular at module level

        return apply_delta_to_pair(self, delta)

    def dangling_entities_kg1(self) -> set[str]:
        """KG1 entities without a gold counterpart in KG2."""
        matched = {a for a, _ in self.entity_alignment.pairs}
        return set(self.kg1.entities) - matched

    def dangling_entities_kg2(self) -> set[str]:
        """KG2 entities without a gold counterpart in KG1."""
        matched = {b for _, b in self.entity_alignment.pairs}
        return set(self.kg2.entities) - matched

    def summary(self) -> dict[str, int]:
        """Dataset statistics in the shape of the paper's Table 2."""
        return {
            "entities_kg1": self.kg1.num_entities,
            "entities_kg2": self.kg2.num_entities,
            "relations_kg1": self.kg1.num_relations,
            "relations_kg2": self.kg2.num_relations,
            "classes_kg1": self.kg1.num_classes,
            "classes_kg2": self.kg2.num_classes,
            "triples_kg1": self.kg1.num_triples,
            "triples_kg2": self.kg2.num_triples,
            "entity_matches": len(self.entity_alignment),
            "relation_matches": len(self.relation_alignment),
            "class_matches": len(self.class_alignment),
        }
