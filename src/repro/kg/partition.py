"""ρ-bounded partitioning of an aligned KG pair into cross-linked sub-pairs.

The paper's Algorithm 2 partitions the *candidate pool* so that batch
selection becomes cheap per-partition work (:mod:`repro.active.partition`).
This module applies the same idea one level up — to the **campaign** itself:
it cuts an :class:`~repro.kg.pair.AlignedKGPair` into ``num_partitions``
balanced sub-pairs so that embedding training, alignment training, similarity
refresh and active selection can all run per partition (and in parallel),
instead of single-process over the entire KG pair.

The unit of partitioning is a *cross-link*: a gold entity match ``(e, e′)``.
Keeping both sides of every cross-link in the same partition is what makes a
partition a self-contained alignment subproblem — the same reachability
structure Algorithm 2's refinement loop preserves, computed here over graph
edges instead of estimator powers (no model exists before the campaign runs).
Concretely:

1. **Anchor graph** — one node per gold entity match; the weight between two
   anchors counts the KG1 edges between their left sides plus the KG2 edges
   between their right sides (the structural analogue of Algorithm 2's
   edge-power adjacency).
2. **Seeded balanced growth** — ``num_partitions`` seeds spread across the
   anchor graph grow breadth-first, always extending the currently smallest
   partition along its strongest frontier edge.
3. **ρ-refinement** — bounded passes move anchors that keep less than ``rho``
   of their adjacent edge weight inside their partition to the partition
   holding most of it, subject to a balance cap.  This is the campaign-level
   reading of Algorithm 2's ρ threshold: a member whose inside fraction
   already meets ρ is never moved.
4. **Dangling attachment** — entities without a gold counterpart join the
   partition holding most of their graph neighbours (isolated ones are
   spread round-robin), so every entity of both KGs lands in exactly one
   sub-pair.

Everything is deterministic: ties break on the lower index, vocabularies of
the sub-KGs keep the original order, and ``num_partitions=1`` returns the
*original* pair object so a single-partition campaign is bit-exact with the
monolithic pipeline.

Environment overrides (``REPRO_PARTITION_COUNT`` / ``REPRO_PARTITION_WORKERS``
/ ``REPRO_PARTITION_RHO`` / ``REPRO_CAMPAIGN_EXECUTOR``) mirror the
similarity backend's ``REPRO_SIMILARITY_*`` convention: the environment wins
over the configured value, which is how CI sweeps worker counts and executor
backends without touching any config.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import os
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair, GoldAlignment
from repro.utils.logging import get_logger

logger = get_logger(__name__)

PARTITION_COUNT_ENV = "REPRO_PARTITION_COUNT"
PARTITION_WORKERS_ENV = "REPRO_PARTITION_WORKERS"
PARTITION_RHO_ENV = "REPRO_PARTITION_RHO"
CAMPAIGN_EXECUTOR_ENV = "REPRO_CAMPAIGN_EXECUTOR"

#: Valid values of ``PartitionConfig.executor``; the concrete backends live
#: in :mod:`repro.runtime.executor`, ``"auto"`` resolves there per machine.
EXECUTOR_CHOICES = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class PartitionConfig:
    """Knobs of the campaign partitioner.

    ``num_partitions`` — how many sub-pairs to cut (1 disables partitioning);
    ``rho`` — minimum fraction of an anchor's adjacent edge weight that should
    stay inside its partition (refinement only moves anchors below it);
    ``max_refine_passes`` — bound on the ρ-refinement sweeps;
    ``balance_slack`` — a partition may exceed the ideal ``anchors/partitions``
    size by at most this fraction during refinement;
    ``workers`` — worker-pool width of the campaign runtime (results are
    deterministic for any value, same contract as ``ShardedBackend``);
    ``executor`` — which campaign executor runs the pieces (``"serial"``,
    ``"thread"``, ``"process"``, or ``"auto"`` to pick the process backend
    whenever >1 worker is requested and >1 core is available — the thread
    pool cannot scale the GIL-bound training loops).  The executor never
    changes results, only wall-clock.
    """

    num_partitions: int = 1
    rho: float = 0.9
    max_refine_passes: int = 4
    balance_slack: float = 0.25
    workers: int = 1
    executor: str = "auto"

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if not 0.0 < self.rho <= 1.0:
            raise ValueError("rho must be in (0, 1]")
        if self.max_refine_passes < 0:
            raise ValueError("max_refine_passes must be >= 0")
        if self.balance_slack < 0.0:
            raise ValueError("balance_slack must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.executor not in EXECUTOR_CHOICES:
            raise ValueError(
                f"executor must be one of {', '.join(EXECUTOR_CHOICES)}; "
                f"got {self.executor!r}"
            )


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else fallback


def resolve_partition_count(configured: int | None = None) -> int:
    """Effective partition count: env override first, then config, then 1."""
    count = _env_int(PARTITION_COUNT_ENV, configured if configured is not None else 1)
    if count < 1:
        raise ValueError("partition count must be >= 1")
    return count


def resolve_partition_workers(configured: int | None = None) -> int:
    """Effective campaign worker count: env override first, then config, then 1."""
    workers = _env_int(PARTITION_WORKERS_ENV, configured if configured is not None else 1)
    if workers < 1:
        raise ValueError("partition workers must be >= 1")
    return workers


def resolve_partition_rho(configured: float | None = None) -> float:
    """Effective ρ threshold: env override first, then config, then 0.9."""
    raw = os.environ.get(PARTITION_RHO_ENV, "").strip()
    rho = float(raw) if raw else (configured if configured is not None else 0.9)
    if not 0.0 < rho <= 1.0:
        raise ValueError("partition rho must be in (0, 1]")
    return rho


def resolve_campaign_executor(configured: str | None = None) -> str:
    """Effective executor selection: env override first, then config, then auto.

    Resolution stops at the *name* (``"auto"`` stays ``"auto"`` here); the
    campaign maps it to a concrete backend per machine via
    :func:`repro.runtime.executor.effective_executor_name`.
    """
    raw = os.environ.get(CAMPAIGN_EXECUTOR_ENV, "").strip()
    executor = raw if raw else (configured if configured is not None else "auto")
    if executor not in EXECUTOR_CHOICES:
        raise ValueError(
            f"campaign executor must be one of {', '.join(EXECUTOR_CHOICES)}; "
            f"got {executor!r}"
        )
    return executor


def resolve_partition_config(configured: "PartitionConfig | None" = None) -> "PartitionConfig":
    """``configured`` with every ``REPRO_PARTITION_*`` override applied."""
    base = configured or PartitionConfig()
    return PartitionConfig(
        num_partitions=resolve_partition_count(base.num_partitions),
        rho=resolve_partition_rho(base.rho),
        max_refine_passes=base.max_refine_passes,
        balance_slack=base.balance_slack,
        workers=resolve_partition_workers(base.workers),
        executor=resolve_campaign_executor(base.executor),
    )


@dataclass
class PartitionPiece:
    """One sub-pair plus its local→global index maps (original pair's spaces)."""

    index: int
    pair: AlignedKGPair
    entity_ids_1: np.ndarray
    entity_ids_2: np.ndarray
    relation_ids_1: np.ndarray
    relation_ids_2: np.ndarray
    class_ids_1: np.ndarray
    class_ids_2: np.ndarray

    def summary(self) -> dict[str, int]:
        return {
            "entities_kg1": self.pair.kg1.num_entities,
            "entities_kg2": self.pair.kg2.num_entities,
            "entity_matches": len(self.pair.entity_alignment),
            "triples_kg1": self.pair.kg1.num_triples,
            "triples_kg2": self.pair.kg2.num_triples,
        }


@dataclass
class KGPairPartition:
    """The result of :func:`partition_pair`: pieces plus cut statistics."""

    source: AlignedKGPair
    config: PartitionConfig
    pieces: list[PartitionPiece]
    cut_weight_fraction: float = 0.0
    rho_satisfied_fraction: float = 1.0
    anchor_partition: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def num_partitions(self) -> int:
        return len(self.pieces)

    def summary(self) -> dict:
        return {
            "num_partitions": self.num_partitions,
            "cut_weight_fraction": round(self.cut_weight_fraction, 4),
            "rho_satisfied_fraction": round(self.rho_satisfied_fraction, 4),
            "pieces": [p.summary() for p in self.pieces],
        }

    # -------------------------------------------------------------- membership
    def membership(self) -> tuple[dict[str, int], dict[str, int]]:
        """``entity name → piece index`` maps for both sides (cached).

        This is the routing surface for :func:`repro.updates.route_delta`:
        which piece owns an entity is exactly which piece's sub-KG contains
        it.  Pieces never share entities, so the maps are well defined.
        The cache is invalidated by :meth:`invalidate_membership` whenever a
        piece's pair is replaced (incremental updates do this).
        """
        cached = getattr(self, "_membership", None)
        if cached is None:
            side_1: dict[str, int] = {}
            side_2: dict[str, int] = {}
            for piece in self.pieces:
                for name in piece.pair.kg1.entities:
                    side_1[name] = piece.index
                for name in piece.pair.kg2.entities:
                    side_2[name] = piece.index
            cached = (side_1, side_2)
            self._membership = cached
        return cached

    def invalidate_membership(self) -> None:
        self._membership = None

    def membership_digest(self) -> str:
        """Order-sensitive digest of every piece's entity membership.

        Persisted in campaign manifests and used to detect when a saved
        campaign's pieces no longer describe the partition that would be
        (or was incrementally) built — the guard behind both checkpoint
        compatibility checks and delta routing.
        """
        digest = hashlib.sha256()
        for piece in self.pieces:
            digest.update(b"\x00piece\x00")
            for name in piece.pair.kg1.entities:
                digest.update(name.encode("utf-8"))
                digest.update(b"\x00")
            digest.update(b"\x00side\x00")
            for name in piece.pair.kg2.entities:
                digest.update(name.encode("utf-8"))
                digest.update(b"\x00")
        return digest.hexdigest()


# ------------------------------------------------------------------ anchors
def _anchor_adjacency(
    kg: KnowledgeGraph, anchor_of_entity: np.ndarray
) -> dict[tuple[int, int], int]:
    """Undirected anchor–anchor edge counts contributed by one KG's triples."""
    edges: dict[tuple[int, int], int] = defaultdict(int)
    if kg.triple_array.size == 0:
        return edges
    heads = anchor_of_entity[kg.triple_array[:, 0]]
    tails = anchor_of_entity[kg.triple_array[:, 2]]
    mask = (heads >= 0) & (tails >= 0) & (heads != tails)
    lo = np.minimum(heads[mask], tails[mask])
    hi = np.maximum(heads[mask], tails[mask])
    if lo.size:
        stacked = np.stack([lo, hi], axis=1)
        unique, counts = np.unique(stacked, axis=0, return_counts=True)
        for (a, b), c in zip(unique, counts):
            edges[(int(a), int(b))] += int(c)
    return edges


def _pick_seeds(
    num_anchors: int,
    num_partitions: int,
    adjacency: list[list[tuple[int, int]]],
    degree_weight: np.ndarray,
) -> list[int]:
    """Spread seeds: heaviest anchor first, then heaviest non-neighbours."""
    order = np.lexsort((np.arange(num_anchors), -degree_weight))
    seeds: list[int] = [int(order[0])]
    blocked = {int(order[0])}
    blocked.update(n for n, _ in adjacency[seeds[0]])
    for candidate in order[1:]:
        if len(seeds) == num_partitions:
            break
        candidate = int(candidate)
        if candidate in blocked:
            continue
        seeds.append(candidate)
        blocked.add(candidate)
        blocked.update(n for n, _ in adjacency[candidate])
    # not enough mutually non-adjacent anchors: fall back to heaviest unchosen
    if len(seeds) < num_partitions:
        chosen = set(seeds)
        for candidate in order:
            if len(seeds) == num_partitions:
                break
            if int(candidate) not in chosen:
                seeds.append(int(candidate))
                chosen.add(int(candidate))
    return seeds


def _grow_partitions(
    num_anchors: int,
    num_partitions: int,
    adjacency: list[list[tuple[int, int]]],
    seeds: list[int],
) -> np.ndarray:
    """Balanced multi-source growth: smallest partition extends first."""
    partition = np.full(num_anchors, -1, dtype=np.int64)
    sizes = np.zeros(num_partitions, dtype=np.int64)
    frontiers: list[list[tuple[int, int, int]]] = [[] for _ in range(num_partitions)]
    counter = 0
    unassigned_cursor = 0

    def assign(node: int, pid: int) -> None:
        nonlocal counter
        partition[node] = pid
        sizes[pid] += 1
        for neighbor, weight in adjacency[node]:
            if partition[neighbor] < 0:
                heapq.heappush(frontiers[pid], (-weight, counter, neighbor))
                counter += 1

    for pid, seed in enumerate(seeds):
        if partition[seed] < 0:
            assign(seed, pid)
        else:  # duplicate fallback seed: replace with the next free anchor
            while unassigned_cursor < num_anchors and partition[unassigned_cursor] >= 0:
                unassigned_cursor += 1
            if unassigned_cursor < num_anchors:
                assign(unassigned_cursor, pid)

    assigned = int(sizes.sum())
    while assigned < num_anchors:
        # smallest partition with a non-empty frontier grows next
        candidates = [p for p in range(num_partitions) if frontiers[p]]
        if not candidates:
            # disconnected remainder: restart from the next free anchor
            while partition[unassigned_cursor] >= 0:
                unassigned_cursor += 1
            pid = int(np.argmin(sizes))
            assign(unassigned_cursor, pid)
            assigned += 1
            continue
        pid = min(candidates, key=lambda p: (sizes[p], p))
        node = None
        while frontiers[pid]:
            _, _, node = heapq.heappop(frontiers[pid])
            if partition[node] < 0:
                break
            node = None
        if node is None:
            continue
        assign(node, pid)
        assigned += 1
    return partition


def _refine_partitions(
    partition: np.ndarray,
    adjacency: list[list[tuple[int, int]]],
    config: PartitionConfig,
) -> np.ndarray:
    """Move anchors below the ρ inside-fraction to their majority partition."""
    num_partitions = int(partition.max()) + 1
    if num_partitions < 2:
        return partition
    sizes = np.bincount(partition, minlength=num_partitions)
    cap = math.ceil(len(partition) / num_partitions * (1.0 + config.balance_slack))
    for _ in range(config.max_refine_passes):
        moved = 0
        for node in range(len(partition)):
            if not adjacency[node]:
                continue
            weight_to = np.zeros(num_partitions)
            for neighbor, weight in adjacency[node]:
                weight_to[partition[neighbor]] += weight
            total = float(weight_to.sum())
            current = int(partition[node])
            if total <= 0 or weight_to[current] / total >= config.rho:
                continue
            best = int(np.argmax(weight_to))  # ties: argmax picks the lower pid
            if (
                best != current
                and weight_to[best] > weight_to[current]
                and sizes[current] > 1
                and sizes[best] < cap
            ):
                partition[node] = best
                sizes[current] -= 1
                sizes[best] += 1
                moved += 1
        if moved == 0:
            break
    return partition


def _attach_danglings(
    kg: KnowledgeGraph,
    entity_partition: np.ndarray,
    num_partitions: int,
) -> np.ndarray:
    """Assign unanchored entities to the partition of most of their neighbours."""
    pending = [e for e in range(kg.num_entities) if entity_partition[e] < 0]
    # neighbour votes propagate (bounded passes cover dangling chains)
    for _ in range(3):
        if not pending:
            break
        still: list[int] = []
        for entity in pending:
            votes = np.zeros(num_partitions)
            for neighbor in sorted(kg.neighbors(entity)):
                pid = entity_partition[neighbor]
                if pid >= 0:
                    votes[pid] += 1.0
            if votes.sum() > 0:
                entity_partition[entity] = int(np.argmax(votes))
            else:
                still.append(entity)
        if len(still) == len(pending):
            break
        pending = still
    # isolated leftovers: deterministic round-robin keeps pieces balanced
    for position, entity in enumerate(pending):
        entity_partition[entity] = position % num_partitions
    return entity_partition


# -------------------------------------------------------------------- pieces
def _restrict_alignment(
    alignment: GoldAlignment,
    left_names: set[str],
    right_names: set[str],
) -> GoldAlignment:
    pairs = [
        (a, b) for a, b in alignment.pairs if a in left_names and b in right_names
    ]
    return GoldAlignment(alignment.kind, pairs)


def _identity_piece(pair: AlignedKGPair) -> PartitionPiece:
    """The single-partition piece: the original pair itself, identity maps."""
    return PartitionPiece(
        index=0,
        pair=pair,
        entity_ids_1=np.arange(pair.kg1.num_entities, dtype=np.int64),
        entity_ids_2=np.arange(pair.kg2.num_entities, dtype=np.int64),
        relation_ids_1=np.arange(pair.kg1.num_relations, dtype=np.int64),
        relation_ids_2=np.arange(pair.kg2.num_relations, dtype=np.int64),
        class_ids_1=np.arange(pair.kg1.num_classes, dtype=np.int64),
        class_ids_2=np.arange(pair.kg2.num_classes, dtype=np.int64),
    )


def _build_piece(
    index: int,
    pair: AlignedKGPair,
    entities_1: list[str],
    entities_2: list[str],
) -> PartitionPiece:
    kg1 = pair.kg1.subgraph_of_entities(entities_1)
    kg2 = pair.kg2.subgraph_of_entities(entities_2)
    left_entities = set(kg1.entities)
    right_entities = set(kg2.entities)
    left_relations, right_relations = set(kg1.relations), set(kg2.relations)
    left_classes, right_classes = set(kg1.classes), set(kg2.classes)
    sub_pair = AlignedKGPair(
        name=f"{pair.name}[part{index}]",
        kg1=kg1,
        kg2=kg2,
        entity_alignment=_restrict_alignment(
            pair.entity_alignment, left_entities, right_entities
        ),
        relation_alignment=_restrict_alignment(
            pair.relation_alignment, left_relations, right_relations
        ),
        class_alignment=_restrict_alignment(pair.class_alignment, left_classes, right_classes),
        train_entity_pairs=[
            (a, b)
            for a, b in pair.train_entity_pairs
            if a in left_entities and b in right_entities
        ],
        valid_entity_pairs=[
            (a, b)
            for a, b in pair.valid_entity_pairs
            if a in left_entities and b in right_entities
        ],
        test_entity_pairs=[
            (a, b)
            for a, b in pair.test_entity_pairs
            if a in left_entities and b in right_entities
        ],
    )
    return PartitionPiece(
        index=index,
        pair=sub_pair,
        entity_ids_1=np.array([pair.kg1.entity_id(e) for e in kg1.entities], dtype=np.int64),
        entity_ids_2=np.array([pair.kg2.entity_id(e) for e in kg2.entities], dtype=np.int64),
        relation_ids_1=np.array(
            [pair.kg1.relation_id(r) for r in kg1.relations], dtype=np.int64
        ),
        relation_ids_2=np.array(
            [pair.kg2.relation_id(r) for r in kg2.relations], dtype=np.int64
        ),
        class_ids_1=np.array([pair.kg1.class_id(c) for c in kg1.classes], dtype=np.int64),
        class_ids_2=np.array([pair.kg2.class_id(c) for c in kg2.classes], dtype=np.int64),
    )


# ---------------------------------------------------------------- entry point
def partition_pair(
    pair: AlignedKGPair, config: PartitionConfig | None = None
) -> KGPairPartition:
    """Cut ``pair`` into ``config.num_partitions`` cross-linked sub-pairs.

    Every gold entity match stays within one partition (a cut match would be
    unlearnable by construction), every entity of both KGs lands in exactly
    one piece, and sub-KG vocabularies keep the original order.  With
    ``num_partitions=1`` the returned piece *is* the original pair.
    """
    config = config or PartitionConfig()
    anchors = pair.entity_alignment.pairs
    if config.num_partitions == 1 or len(anchors) < 2 * config.num_partitions:
        if config.num_partitions > 1:
            logger.warning(
                "pair %s has %d gold matches — too few for %d partitions; "
                "falling back to a single partition",
                pair.name,
                len(anchors),
                config.num_partitions,
            )
        return KGPairPartition(
            source=pair,
            config=config,
            pieces=[_identity_piece(pair)],
            anchor_partition=np.zeros(len(anchors), dtype=np.int64),
        )

    num_anchors = len(anchors)
    anchor_of_1 = np.full(pair.kg1.num_entities, -1, dtype=np.int64)
    anchor_of_2 = np.full(pair.kg2.num_entities, -1, dtype=np.int64)
    for i, (a, b) in enumerate(anchors):
        anchor_of_1[pair.kg1.entity_id(a)] = i
        anchor_of_2[pair.kg2.entity_id(b)] = i

    edges: dict[tuple[int, int], int] = defaultdict(int)
    for kg, anchor_of in ((pair.kg1, anchor_of_1), (pair.kg2, anchor_of_2)):
        for key, count in _anchor_adjacency(kg, anchor_of).items():
            edges[key] += count
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(num_anchors)]
    degree_weight = np.zeros(num_anchors)
    for (a, b), weight in sorted(edges.items()):
        adjacency[a].append((b, weight))
        adjacency[b].append((a, weight))
        degree_weight[a] += weight
        degree_weight[b] += weight

    seeds = _pick_seeds(num_anchors, config.num_partitions, adjacency, degree_weight)
    partition = _grow_partitions(num_anchors, config.num_partitions, adjacency, seeds)
    partition = _refine_partitions(partition, adjacency, config)

    # ---------------------------------------------------------------- stats
    total_weight = cut_weight = 0.0
    satisfied = 0
    with_edges = 0
    for (a, b), weight in edges.items():
        total_weight += weight
        if partition[a] != partition[b]:
            cut_weight += weight
    for node in range(num_anchors):
        if not adjacency[node]:
            continue
        with_edges += 1
        inside = sum(w for n, w in adjacency[node] if partition[n] == partition[node])
        total = sum(w for _, w in adjacency[node])
        if inside / total >= config.rho:
            satisfied += 1

    # ------------------------------------------------------------- entities
    entity_partition_1 = np.full(pair.kg1.num_entities, -1, dtype=np.int64)
    entity_partition_2 = np.full(pair.kg2.num_entities, -1, dtype=np.int64)
    for i, (a, b) in enumerate(anchors):
        entity_partition_1[pair.kg1.entity_id(a)] = partition[i]
        entity_partition_2[pair.kg2.entity_id(b)] = partition[i]
    entity_partition_1 = _attach_danglings(pair.kg1, entity_partition_1, config.num_partitions)
    entity_partition_2 = _attach_danglings(pair.kg2, entity_partition_2, config.num_partitions)

    pieces = []
    for pid in range(config.num_partitions):
        entities_1 = [e for i, e in enumerate(pair.kg1.entities) if entity_partition_1[i] == pid]
        entities_2 = [e for i, e in enumerate(pair.kg2.entities) if entity_partition_2[i] == pid]
        pieces.append(_build_piece(pid, pair, entities_1, entities_2))

    result = KGPairPartition(
        source=pair,
        config=config,
        pieces=pieces,
        cut_weight_fraction=cut_weight / total_weight if total_weight else 0.0,
        rho_satisfied_fraction=satisfied / with_edges if with_edges else 1.0,
        anchor_partition=partition,
    )
    logger.info(
        "partitioned %s into %d pieces (cut fraction %.3f, rho-satisfied %.3f)",
        pair.name,
        len(pieces),
        result.cut_weight_fraction,
        result.rho_satisfied_fraction,
    )
    return result
