"""Knowledge-graph substrate: data model, IO, statistics and sampling.

A :class:`~repro.kg.graph.KnowledgeGraph` follows the paper's formulation
``G = (E, R, C, T)``: entities, relations, classes and triplets.  Relation
triplets connect two entities, type triplets connect an entity to a class.
"""

from repro.kg.elements import ElementKind, Triple, TypeTriple
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair, GoldAlignment, SplitRatios
from repro.kg.io import load_openea_directory, save_openea_directory
from repro.kg.partition import (
    KGPairPartition,
    PartitionConfig,
    PartitionPiece,
    partition_pair,
    resolve_campaign_executor,
    resolve_partition_config,
    resolve_partition_count,
    resolve_partition_rho,
    resolve_partition_workers,
)
from repro.kg.sampling import NegativeSampler
from repro.kg.statistics import KGStatistics, compute_statistics, relation_functionality

__all__ = [
    "AlignedKGPair",
    "ElementKind",
    "GoldAlignment",
    "KGPairPartition",
    "KGStatistics",
    "KnowledgeGraph",
    "NegativeSampler",
    "PartitionConfig",
    "PartitionPiece",
    "SplitRatios",
    "Triple",
    "TypeTriple",
    "compute_statistics",
    "load_openea_directory",
    "partition_pair",
    "relation_functionality",
    "resolve_campaign_executor",
    "resolve_partition_config",
    "resolve_partition_count",
    "resolve_partition_rho",
    "resolve_partition_workers",
    "save_openea_directory",
]
