"""Negative sampling for embedding training.

The paper's loss functions (Eqs. 1, 3, 5, 8) contrast observed triples and
matches against corrupted ("fake") ones.  Because every KG is augmented with
reverse triples, only tail entities need to be corrupted for relation triples
(Sect. 4.1); entity-class triples corrupt the entity side.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.utils.rng import RandomState, ensure_rng


class NegativeSampler:
    """Draws corrupted triples / pairs that avoid true positives when possible."""

    def __init__(self, kg: KnowledgeGraph, seed: RandomState = None) -> None:
        self.kg = kg
        self.rng = ensure_rng(seed)
        self._true_tails: dict[tuple[int, int], set[int]] = {}
        for h, r, t in kg.triple_array:
            self._true_tails.setdefault((int(h), int(r)), set()).add(int(t))
        self._true_classes: dict[int, set[int]] = {}
        self._class_members: dict[int, set[int]] = {}
        for e, c in kg.type_array:
            self._true_classes.setdefault(int(e), set()).add(int(c))
            self._class_members.setdefault(int(c), set()).add(int(e))

    # ----------------------------------------------------------- entity-relation
    def corrupt_tails(self, triples: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Corrupt the tail of each triple; returns ``(n * num_negatives, 3)``.

        Tails are re-drawn (a bounded number of times) when the corrupted
        triple happens to be a true triple, which keeps negatives clean on
        small graphs without risking an infinite loop on dense ones.
        """
        if triples.size == 0:
            return np.empty((0, 3), dtype=np.int64)
        n = triples.shape[0]
        repeated = np.repeat(triples, num_negatives, axis=0)
        negatives = repeated.copy()
        negatives[:, 2] = self.rng.integers(0, self.kg.num_entities, size=n * num_negatives)
        for attempt in range(3):
            bad = np.array(
                [
                    negatives[i, 2] in self._true_tails.get((negatives[i, 0], negatives[i, 1]), set())
                    for i in range(negatives.shape[0])
                ]
            )
            if not bad.any():
                break
            negatives[bad, 2] = self.rng.integers(0, self.kg.num_entities, size=int(bad.sum()))
        return negatives

    # --------------------------------------------------------------- entity-class
    def corrupt_class_entities(self, type_pairs: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Corrupt the entity of each (entity, class) pair with a non-member entity."""
        if type_pairs.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        n = type_pairs.shape[0]
        repeated = np.repeat(type_pairs, num_negatives, axis=0)
        negatives = repeated.copy()
        negatives[:, 0] = self.rng.integers(0, self.kg.num_entities, size=n * num_negatives)
        for attempt in range(3):
            bad = np.array(
                [
                    negatives[i, 0] in self._class_members.get(int(negatives[i, 1]), set())
                    for i in range(negatives.shape[0])
                ]
            )
            if not bad.any():
                break
            negatives[bad, 0] = self.rng.integers(0, self.kg.num_entities, size=int(bad.sum()))
        return negatives


def corrupt_match_pairs(
    matches: np.ndarray,
    num_left: int,
    num_right: int,
    rng: np.random.Generator,
    num_negatives: int = 1,
) -> np.ndarray:
    """Corrupt either side of match pairs (Eq. 5/8): returns ``(n*k, 2)``.

    For each positive match, one side is chosen uniformly at random and
    replaced with a random element from the corresponding KG.
    """
    if matches.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    n = matches.shape[0]
    repeated = np.repeat(matches, num_negatives, axis=0)
    negatives = repeated.copy()
    total = n * num_negatives
    flip_left = rng.random(total) < 0.5
    negatives[flip_left, 0] = rng.integers(0, num_left, size=int(flip_left.sum()))
    negatives[~flip_left, 1] = rng.integers(0, num_right, size=int((~flip_left).sum()))
    # avoid negatives identical to their positive source
    same = (negatives[:, 0] == repeated[:, 0]) & (negatives[:, 1] == repeated[:, 1])
    if same.any():
        negatives[same, 0] = (negatives[same, 0] + 1) % max(num_left, 1)
    return negatives
