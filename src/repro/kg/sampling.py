"""Negative sampling for embedding training.

The paper's loss functions (Eqs. 1, 3, 5, 8) contrast observed triples and
matches against corrupted ("fake") ones.  Because every KG is augmented with
reverse triples, only tail entities need to be corrupted for relation triples
(Sect. 4.1); entity-class triples corrupt the entity side.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.utils.rng import RandomState, ensure_rng


def _isin_sorted(sorted_keys: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Vectorized membership test of ``values`` in a sorted unique key array."""
    if sorted_keys.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.minimum(np.searchsorted(sorted_keys, values), sorted_keys.size - 1)
    return sorted_keys[pos] == values


class NegativeSampler:
    """Draws corrupted triples / pairs that avoid true positives when possible.

    True triples and type assertions are kept as sorted integer key arrays so
    the "is this corruption actually a positive?" test is a vectorized
    ``searchsorted`` instead of a Python loop over dict-of-set lookups (the
    loop dominated embedding-batch sampling in profiles).
    """

    def __init__(self, kg: KnowledgeGraph, seed: RandomState = None) -> None:
        self.kg = kg
        self.rng = ensure_rng(seed)
        self._num_entities = max(kg.num_entities, 1)
        self._num_relations = max(kg.num_relations, 1)
        triples = kg.triple_array.astype(np.int64).reshape(-1, 3)
        self._triple_keys = np.unique(self._triple_key(triples))
        types = kg.type_array.astype(np.int64).reshape(-1, 2)
        self._type_keys = np.unique(self._type_key(types[:, 0], types[:, 1]))

    def _triple_key(self, triples: np.ndarray) -> np.ndarray:
        """Encode ``(h, r, t)`` rows as single int64 keys."""
        return (
            triples[:, 0] * self._num_relations + triples[:, 1]
        ) * self._num_entities + triples[:, 2]

    def _type_key(self, entities: np.ndarray, classes: np.ndarray) -> np.ndarray:
        """Encode ``(entity, class)`` pairs as single int64 keys."""
        return classes * self._num_entities + entities

    # ----------------------------------------------------------- entity-relation
    def corrupt_tails(self, triples: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Corrupt the tail of each triple; returns ``(n * num_negatives, 3)``.

        Tails are re-drawn (a bounded number of times) when the corrupted
        triple happens to be a true triple, which keeps negatives clean on
        small graphs without risking an infinite loop on dense ones.
        """
        if triples.size == 0:
            return np.empty((0, 3), dtype=np.int64)
        n = triples.shape[0]
        repeated = np.repeat(triples, num_negatives, axis=0)
        negatives = repeated.copy()
        negatives[:, 2] = self.rng.integers(0, self.kg.num_entities, size=n * num_negatives)
        for attempt in range(3):
            bad = _isin_sorted(self._triple_keys, self._triple_key(negatives))
            if not bad.any():
                break
            negatives[bad, 2] = self.rng.integers(0, self.kg.num_entities, size=int(bad.sum()))
        return negatives

    # --------------------------------------------------------------- entity-class
    def corrupt_class_entities(self, type_pairs: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Corrupt the entity of each (entity, class) pair with a non-member entity."""
        if type_pairs.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        n = type_pairs.shape[0]
        repeated = np.repeat(type_pairs, num_negatives, axis=0)
        negatives = repeated.copy()
        negatives[:, 0] = self.rng.integers(0, self.kg.num_entities, size=n * num_negatives)
        for attempt in range(3):
            bad = _isin_sorted(
                self._type_keys, self._type_key(negatives[:, 0], negatives[:, 1])
            )
            if not bad.any():
                break
            negatives[bad, 0] = self.rng.integers(0, self.kg.num_entities, size=int(bad.sum()))
        return negatives


def corrupt_match_pairs(
    matches: np.ndarray,
    num_left: int,
    num_right: int,
    rng: np.random.Generator,
    num_negatives: int = 1,
) -> np.ndarray:
    """Corrupt either side of match pairs (Eq. 5/8): returns ``(n*k, 2)``.

    For each positive match, one side is chosen uniformly at random and
    replaced with a random element from the corresponding KG.
    """
    if matches.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    n = matches.shape[0]
    repeated = np.repeat(matches, num_negatives, axis=0)
    negatives = repeated.copy()
    total = n * num_negatives
    flip_left = rng.random(total) < 0.5
    negatives[flip_left, 0] = rng.integers(0, num_left, size=int(flip_left.sum()))
    negatives[~flip_left, 1] = rng.integers(0, num_right, size=int((~flip_left).sum()))
    # avoid negatives identical to their positive source
    same = (negatives[:, 0] == repeated[:, 0]) & (negatives[:, 1] == repeated[:, 1])
    if same.any():
        negatives[same, 0] = (negatives[same, 0] + 1) % max(num_left, 1)
    return negatives
