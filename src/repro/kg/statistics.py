"""Descriptive statistics of a KG.

These are used by the dataset benchmark (Table 2), by the blocking heuristics
(relation functionality informs how discriminative a relation is), and by the
Degree/PageRank active-learning baselines.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph


@dataclass(frozen=True)
class KGStatistics:
    """Summary statistics of one KG."""

    num_entities: int
    num_relations: int
    num_classes: int
    num_triples: int
    num_type_triples: int
    mean_entity_degree: float
    max_entity_degree: int
    mean_classes_per_entity: float
    relation_counts: dict[str, int]
    class_counts: dict[str, int]

    def as_dict(self) -> dict[str, float]:
        return {
            "entities": self.num_entities,
            "relations": self.num_relations,
            "classes": self.num_classes,
            "triples": self.num_triples,
            "type_triples": self.num_type_triples,
            "mean_degree": self.mean_entity_degree,
            "max_degree": self.max_entity_degree,
            "mean_classes_per_entity": self.mean_classes_per_entity,
        }


def compute_statistics(kg: KnowledgeGraph) -> KGStatistics:
    """Compute :class:`KGStatistics` for ``kg``."""
    degrees = [kg.entity_degree(i) for i in range(kg.num_entities)]
    classes_per_entity = [len(kg.classes_of(i)) for i in range(kg.num_entities)]
    relation_counts = Counter(t.relation for t in kg.triples)
    class_counts = Counter(tt.cls for tt in kg.type_triples)
    return KGStatistics(
        num_entities=kg.num_entities,
        num_relations=kg.num_relations,
        num_classes=kg.num_classes,
        num_triples=kg.num_triples,
        num_type_triples=kg.num_type_triples,
        mean_entity_degree=float(np.mean(degrees)) if degrees else 0.0,
        max_entity_degree=int(max(degrees)) if degrees else 0,
        mean_classes_per_entity=float(np.mean(classes_per_entity)) if classes_per_entity else 0.0,
        relation_counts=dict(relation_counts),
        class_counts=dict(class_counts),
    )


def relation_functionality(kg: KnowledgeGraph) -> dict[str, float]:
    """Functionality of each relation: ``#distinct heads / #triples``.

    A relation with functionality close to 1 behaves like a function of its
    head entity (e.g. ``birthPlace``), which is exactly the kind of relation
    the paper's Example 1.1 exploits to infer entity matches.  PARIS also uses
    functionality as its core weight.
    """
    heads: dict[str, set[str]] = defaultdict(set)
    counts: Counter[str] = Counter()
    for t in kg.triples:
        heads[t.relation].add(t.head)
        counts[t.relation] += 1
    return {
        rel: (len(heads[rel]) / counts[rel]) if counts[rel] else 0.0
        for rel in kg.relations
    }


def inverse_relation_functionality(kg: KnowledgeGraph) -> dict[str, float]:
    """Inverse functionality: ``#distinct tails / #triples`` per relation."""
    tails: dict[str, set[str]] = defaultdict(set)
    counts: Counter[str] = Counter()
    for t in kg.triples:
        tails[t.relation].add(t.tail)
        counts[t.relation] += 1
    return {
        rel: (len(tails[rel]) / counts[rel]) if counts[rel] else 0.0
        for rel in kg.relations
    }


def entity_pagerank(kg: KnowledgeGraph, damping: float = 0.85, iterations: int = 50) -> np.ndarray:
    """PageRank scores over the entity graph (used by the PageRank baseline).

    Implemented directly with power iteration on the sparse adjacency lists so
    the active-learning baselines do not need networkx at runtime.
    """
    n = kg.num_entities
    if n == 0:
        return np.empty(0)
    scores = np.full(n, 1.0 / n)
    out_degree = np.array([max(len(kg.out_edges(i)), 1) for i in range(n)], dtype=float)
    for _ in range(iterations):
        new_scores = np.full(n, (1.0 - damping) / n)
        for e in range(n):
            share = damping * scores[e] / out_degree[e]
            edges = kg.out_edges(e)
            if not edges:
                # dangling node: spread uniformly
                new_scores += damping * scores[e] / n
                continue
            for _, t in edges:
                new_scores[t] += share
        scores = new_scores
    return scores
