"""Configuration of the DAAKG pipeline.

Defaults follow Sect. 7.1 of the paper where they survive the down-scaling of
the datasets (see DESIGN.md §4): similarity threshold τ, inference-power
threshold κ, partition threshold ρ, focal γ and calibration temperatures keep
the paper's values; embedding dimensions and epoch counts are scaled to the
NumPy substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alignment.calibration import CalibrationConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.inference.power import InferencePowerConfig
from repro.active.pool import PoolConfig


@dataclass(frozen=True)
class DAAKGConfig:
    """All knobs of the DAAKG pipeline."""

    base_model: str = "compgcn"
    entity_dim: int = 32
    class_dim: int = 8
    share_gnn_weights: bool = True
    pretrain: EmbeddingTrainingConfig = EmbeddingTrainingConfig(epochs=8)
    alignment: AlignmentTrainingConfig = AlignmentTrainingConfig(
        rounds=5, epochs_per_round=30, learning_rate=0.03, num_negatives=10,
        embedding_batches_per_round=4, embedding_batch_size=512,
    )
    calibration: CalibrationConfig = CalibrationConfig()
    inference: InferencePowerConfig = InferencePowerConfig()
    pool: PoolConfig = PoolConfig()
    # Ablation switches (Table 5)
    use_class_embeddings: bool = True
    use_mean_embeddings: bool = True
    use_semi_supervision: bool = True
    use_structural_channel: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_model.lower() not in ("transe", "rotate", "compgcn"):
            raise ValueError("base_model must be one of transe, rotate, compgcn")
        if self.entity_dim <= 0 or self.class_dim <= 0:
            raise ValueError("embedding dimensions must be positive")

    def with_ablation(self, name: str) -> "DAAKGConfig":
        """Return a copy with one named component switched off.

        Recognised names mirror Table 5: ``"class_embeddings"``,
        ``"mean_embeddings"`` and ``"semi_supervision"``; ``"full"`` returns
        the configuration unchanged.
        """
        from dataclasses import replace

        key = name.lower()
        if key in ("full", "none"):
            return self
        if key in ("class_embeddings", "w/o class embeddings"):
            return replace(self, use_class_embeddings=False)
        if key in ("mean_embeddings", "w/o mean embeddings"):
            return replace(self, use_mean_embeddings=False)
        if key in ("semi_supervision", "w/o semi-supervision"):
            return replace(self, use_semi_supervision=False)
        raise ValueError(f"unknown ablation {name!r}")
