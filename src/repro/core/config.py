"""Configuration of the DAAKG pipeline.

Defaults follow Sect. 7.1 of the paper where they survive the down-scaling of
the datasets (see DESIGN.md §4): similarity threshold τ, inference-power
threshold κ, partition threshold ρ, focal γ and calibration temperatures keep
the paper's values; embedding dimensions and epoch counts are scaled to the
NumPy substrate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Type, TypeVar, get_type_hints

from repro.alignment.calibration import CalibrationConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.inference.power import InferencePowerConfig
from repro.kg.partition import PartitionConfig
from repro.active.pool import PoolConfig

C = TypeVar("C")


def config_to_dict(config: Any) -> dict:
    """A (possibly nested) config dataclass as a JSON-serialisable dict."""
    if not is_dataclass(config):
        raise TypeError(f"expected a config dataclass, got {type(config).__name__}")
    out: dict = {}
    for f in fields(config):
        value = getattr(config, f.name)
        out[f.name] = config_to_dict(value) if is_dataclass(value) else value
    return out


def config_from_dict(cls: Type[C], data: dict) -> C:
    """Rebuild a config dataclass (with nested configs) from its dict form.

    Unknown keys are rejected rather than ignored: a typo in a manifest or a
    field renamed between format versions must fail loudly, not silently fall
    back to a default.  Missing keys fall back to the dataclass defaults so
    old manifests keep loading after new fields are added.
    """
    if not isinstance(data, dict):
        raise TypeError(f"expected a dict for {cls.__name__}, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} keys: {sorted(unknown)[:5]}")
    hints = get_type_hints(cls)
    kwargs = {}
    for f in fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        hint = hints.get(f.name)
        if is_dataclass(hint) and isinstance(value, dict):
            value = config_from_dict(hint, value)
        kwargs[f.name] = value
    return cls(**kwargs)


@dataclass(frozen=True)
class DAAKGConfig:
    """All knobs of the DAAKG pipeline."""

    base_model: str = "compgcn"
    entity_dim: int = 32
    class_dim: int = 8
    share_gnn_weights: bool = True
    pretrain: EmbeddingTrainingConfig = EmbeddingTrainingConfig(epochs=8)
    alignment: AlignmentTrainingConfig = AlignmentTrainingConfig(
        rounds=5, epochs_per_round=30, learning_rate=0.03, num_negatives=10,
        embedding_batches_per_round=4, embedding_batch_size=512,
    )
    calibration: CalibrationConfig = CalibrationConfig()
    inference: InferencePowerConfig = InferencePowerConfig()
    pool: PoolConfig = PoolConfig()
    # Similarity runtime: "dense" caches full N×M matrices, "sharded" streams
    # cosine tiles with running top-k and never materialises N×M, "ann"
    # answers candidate queries sub-linearly from per-channel inverted-list
    # indexes with exact re-ranking.  The REPRO_SIMILARITY_BACKEND /
    # REPRO_SIMILARITY_WORKERS environment variables override these per
    # process (see repro.runtime.backends), and REPRO_SIMILARITY_ANN_NLIST /
    # _NPROBE / _MIN_RECALL override the ANN knobs (see repro.runtime.ann).
    similarity_backend: str = "dense"
    similarity_workers: int = 1
    ann_nlist: int = 0  # inverted lists per channel; 0 = auto (~sqrt of cols)
    ann_nprobe: int = 8  # lists probed per query (raised by calibration)
    ann_min_recall: float = 0.95  # sampled top-k recall floor at index build
    # Campaign partitioning: how PartitionedCampaign cuts the pair into
    # rho-bounded cross-linked sub-pairs and how wide its worker pool is.
    # The REPRO_PARTITION_COUNT / REPRO_PARTITION_WORKERS /
    # REPRO_PARTITION_RHO / REPRO_CAMPAIGN_EXECUTOR environment variables
    # override these per process (see repro.kg.partition);
    # num_partitions=1 keeps the monolithic path.
    partition: PartitionConfig = PartitionConfig()
    # Ablation switches (Table 5)
    use_class_embeddings: bool = True
    use_mean_embeddings: bool = True
    use_semi_supervision: bool = True
    use_structural_channel: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_model.lower() not in ("transe", "rotate", "compgcn"):
            raise ValueError("base_model must be one of transe, rotate, compgcn")
        if self.entity_dim <= 0 or self.class_dim <= 0:
            raise ValueError("embedding dimensions must be positive")
        if self.similarity_backend.lower() not in ("dense", "sharded", "ann"):
            raise ValueError("similarity_backend must be 'dense', 'sharded' or 'ann'")
        if self.similarity_workers < 1:
            raise ValueError("similarity_workers must be >= 1")
        if self.ann_nlist < 0:
            raise ValueError("ann_nlist must be >= 0 (0 = auto)")
        if self.ann_nprobe < 1:
            raise ValueError("ann_nprobe must be >= 1")
        if not (0.0 < self.ann_min_recall <= 1.0):
            raise ValueError("ann_min_recall must be in (0, 1]")

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """All knobs (nested configs included) as a JSON-serialisable dict."""
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DAAKGConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        return config_from_dict(cls, data)

    def to_json(self, indent: int | None = None) -> str:
        """JSON form of the configuration (checkpoint manifests, deployments)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DAAKGConfig":
        """Rebuild a configuration from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def with_ablation(self, name: str) -> "DAAKGConfig":
        """Return a copy with one named component switched off.

        Recognised names mirror Table 5: ``"class_embeddings"``,
        ``"mean_embeddings"`` and ``"semi_supervision"``; ``"full"`` returns
        the configuration unchanged.
        """
        from dataclasses import replace

        key = name.lower()
        if key in ("full", "none"):
            return self
        if key in ("class_embeddings", "w/o class embeddings"):
            return replace(self, use_class_embeddings=False)
        if key in ("mean_embeddings", "w/o mean embeddings"):
            return replace(self, use_mean_embeddings=False)
        if key in ("semi_supervision", "w/o semi-supervision"):
            return replace(self, use_semi_supervision=False)
        raise ValueError(f"unknown ablation {name!r}")
