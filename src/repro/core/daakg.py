"""The DAAKG pipeline facade.

Typical use::

    from repro import DAAKG, DAAKGConfig, make_benchmark

    pair = make_benchmark("D-W")
    daakg = DAAKG(pair, DAAKGConfig(base_model="compgcn"))
    daakg.fit()                                   # seed matches = train split
    scores = daakg.evaluate()                     # H@1/MRR/F1 per element kind
    loop = daakg.active_learning("daakg")         # batch active learning
    loop.run()
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

import repro.obs as obs
from repro.active.loop import ActiveLearningConfig, ActiveLearningLoop
from repro.active.oracle import Oracle
from repro.active.pool import ElementPairPool, build_pool
from repro.active.strategies import SelectionStrategy, create_strategy
from repro.alignment.calibration import AlignmentCalibrator
from repro.alignment.evaluation import (
    AlignmentScores,
    evaluate_alignment_from_engine,
    greedy_match,
)
from repro.alignment.model import JointAlignmentModel
from repro.alignment.trainer import JointAlignmentTrainer
from repro.core.config import DAAKGConfig
from repro.embedding import CompGCN, EntityClassScorer, create_embedding_model
from repro.embedding.trainer import KGEmbeddingTrainer
from repro.inference.alignment_graph import AlignmentGraph, build_alignment_graph
from repro.inference.power import InferencePowerEstimator
from repro.kg.elements import ElementKind, Triple
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair
from repro.runtime.ann import AnnParams
from repro.utils.logging import get_logger
from repro.utils.rng import ensure_rng, spawn
from repro.utils.timer import Timer

logger = get_logger(__name__)


def _classes_as_entities(kg: KnowledgeGraph) -> tuple[KnowledgeGraph, np.ndarray]:
    """Turn classes into pseudo-entities linked by a ``type`` relation.

    Used by the "w/o class embeddings" ablation: the resulting KG has one extra
    entity per class and one extra relation; the returned array maps each class
    index to its pseudo-entity index in the new KG.
    """
    class_entities = [f"__class__:{c}" for c in kg.classes]
    triples = list(kg.triples) + [
        Triple(tt.entity, "__type__", f"__class__:{tt.cls}") for tt in kg.type_triples
    ]
    new_kg = KnowledgeGraph(
        name=kg.name,
        entities=list(kg.entities) + class_entities,
        relations=list(kg.relations) + ["__type__"],
        classes=list(kg.classes),
        triples=triples,
        type_triples=list(kg.type_triples),
    )
    class_entity_map = np.array(
        [new_kg.entity_id(f"__class__:{c}") for c in kg.classes], dtype=np.int64
    )
    return new_kg, class_entity_map


def augment_working_kgs(
    pair: AlignedKGPair, config: DAAKGConfig
) -> tuple[KnowledgeGraph, KnowledgeGraph, tuple[np.ndarray, np.ndarray] | None]:
    """The working-space KGs a pipeline trains over, plus class-entity maps.

    Single source of truth for the dataset→working-space augmentation
    (inverse relations always; classes as pseudo-entities under the
    "w/o class embeddings" ablation).  The partition-parallel campaign's
    merge layer derives its global index spaces from this same function, so
    the two can never drift apart.  Augmentation only appends vocabulary —
    original element indices are preserved.
    """
    kg1 = pair.kg1.with_inverse_relations()
    kg2 = pair.kg2.with_inverse_relations()
    class_entity_maps = None
    if not config.use_class_embeddings:
        kg1, map1 = _classes_as_entities(kg1)
        kg2, map2 = _classes_as_entities(kg2)
        class_entity_maps = (map1, map2)
    return kg1, kg2, class_entity_maps


class DAAKG:
    """Deep active alignment of KG entities and schemata."""

    def __init__(self, pair: AlignedKGPair, config: DAAKGConfig | None = None) -> None:
        self.dataset = pair
        self.config = config or DAAKGConfig()
        self.rng = ensure_rng(self.config.seed)
        self._build_models()
        self.calibrator = AlignmentCalibrator(self.config.calibration)
        self.training_time = Timer()
        self._fitted = False

    # ------------------------------------------------------------------ build
    def _build_models(self) -> None:
        config = self.config
        kg1, kg2, class_entity_maps = augment_working_kgs(self.dataset, config)
        self.kg1 = kg1
        self.kg2 = kg2
        # the working pair shares gold alignments but uses the augmented KGs
        self.pair = AlignedKGPair(
            name=self.dataset.name,
            kg1=kg1,
            kg2=kg2,
            entity_alignment=self.dataset.entity_alignment,
            relation_alignment=self.dataset.relation_alignment,
            class_alignment=self.dataset.class_alignment,
            train_entity_pairs=list(self.dataset.train_entity_pairs),
            valid_entity_pairs=list(self.dataset.valid_entity_pairs),
            test_entity_pairs=list(self.dataset.test_entity_pairs),
        )
        rng1, rng2, rng3, rng4 = spawn(self.rng, 4)
        model_name = config.base_model.lower()
        self.embedding_model_1 = create_embedding_model(
            model_name, kg1, dim=config.entity_dim, rng=rng1
        )
        if model_name == "compgcn" and config.share_gnn_weights:
            self.embedding_model_2 = CompGCN(
                kg2,
                dim=config.entity_dim,
                num_layers=self.embedding_model_1.num_layers,
                rng=rng2,
                share_weights_with=self.embedding_model_1,
            )
        else:
            self.embedding_model_2 = create_embedding_model(
                model_name, kg2, dim=config.entity_dim, rng=rng2
            )
        if config.use_class_embeddings:
            self.class_scorer_1 = EntityClassScorer(
                kg1, config.entity_dim, config.class_dim, rng=rng3
            )
            self.class_scorer_2 = EntityClassScorer(
                kg2, config.entity_dim, config.class_dim, rng=rng4
            )
        else:
            self.class_scorer_1 = None
            self.class_scorer_2 = None
        self.model = JointAlignmentModel(
            self.pair,
            self.embedding_model_1,
            self.embedding_model_2,
            self.class_scorer_1,
            self.class_scorer_2,
            class_entity_maps=class_entity_maps,
            use_mean_embeddings=config.use_mean_embeddings,
            use_structural_channel=config.use_structural_channel,
            similarity_backend=config.similarity_backend,
            similarity_workers=config.similarity_workers,
            similarity_ann=AnnParams(
                nlist=config.ann_nlist,
                nprobe=config.ann_nprobe,
                min_recall=config.ann_min_recall,
            ),
            rng=self.rng,
        )
        alignment_config = replace(
            config.alignment, semi_supervised=config.use_semi_supervision
        )
        self.trainer = JointAlignmentTrainer(self.model, alignment_config, seed=self.rng)

    # -------------------------------------------------------------------- fit
    def fit(
        self,
        entity_matches: list[tuple[str, str]] | None = None,
        relation_matches: list[tuple[str, str]] | None = None,
        class_matches: list[tuple[str, str]] | None = None,
    ) -> "DAAKG":
        """Pre-train the embeddings and train the joint alignment model.

        ``entity_matches`` defaults to the dataset's training split; relation
        and class matches default to none (they are normally discovered by
        semi-supervision or active learning).  Matches are given as name pairs.
        """
        config = self.config
        with self.training_time, obs.span("pipeline.fit", base_model=config.base_model):
            if config.pretrain.epochs > 0:
                with obs.span("pipeline.pretrain"):
                    KGEmbeddingTrainer(
                        self.kg1, self.embedding_model_1, self.class_scorer_1, config.pretrain,
                        seed=self.rng,
                    ).train()
                    KGEmbeddingTrainer(
                        self.kg2, self.embedding_model_2, self.class_scorer_2, config.pretrain,
                        seed=self.rng,
                    ).train()
            seeds = entity_matches if entity_matches is not None else self.pair.train_entity_pairs
            if seeds:
                self.trainer.add_matches(ElementKind.ENTITY, self.pair.entity_match_ids(seeds))
            if relation_matches:
                ids = [
                    (self.kg1.relation_id(a), self.kg2.relation_id(b)) for a, b in relation_matches
                ]
                self.trainer.add_matches(ElementKind.RELATION, ids)
            if class_matches:
                ids = [(self.kg1.class_id(a), self.kg2.class_id(b)) for a, b in class_matches]
                self.trainer.add_matches(ElementKind.CLASS, ids)
            with obs.span("pipeline.align"):
                self.trainer.train()
        self._fitted = True
        return self

    # ------------------------------------------------------------- evaluation
    def evaluate(self, test_only: bool = True) -> dict[str, AlignmentScores]:
        """H@k / MRR / precision / recall / F1 for entity, relation and class alignment.

        Metrics are read through the similarity engine: on the dense backend
        this slices the cached matrices (bit-exact with the historical
        full-matrix evaluation); on the sharded backend ranking statistics
        are streamed from cosine tiles and only the gold-row slab is ever
        gathered.
        """
        entity_pairs = (
            self.pair.entity_match_ids(self.pair.test_entity_pairs)
            if test_only and self.pair.test_entity_pairs
            else self.pair.entity_match_ids()
        )
        engine = self.model.similarity
        return {
            "entity": evaluate_alignment_from_engine(engine, ElementKind.ENTITY, entity_pairs),
            "relation": evaluate_alignment_from_engine(
                engine, ElementKind.RELATION, self.pair.relation_match_ids()
            ),
            "class": evaluate_alignment_from_engine(
                engine, ElementKind.CLASS, self.pair.class_match_ids()
            ),
        }

    # -------------------------------------------------------------- prediction
    def predict_matches(self, kind: ElementKind, threshold: float = 0.5) -> list[tuple[str, str]]:
        """One-to-one predicted matches above ``threshold``, as element names.

        On the sharded backend the candidates above ``threshold`` are
        collected from streamed tiles and matched greedily without ever
        materialising the full matrix.
        """
        engine = self.model.similarity
        if engine.backend_name == "dense":
            matrix = self.model.similarity_matrix(kind)
            matches = greedy_match(matrix, threshold=threshold)
        else:
            matches = self._greedy_match_streamed(kind, threshold)
        if kind is ElementKind.ENTITY:
            left_names, right_names = self.kg1.entities, self.kg2.entities
        elif kind is ElementKind.RELATION:
            left_names, right_names = self.kg1.relations, self.kg2.relations
        else:
            left_names, right_names = self.kg1.classes, self.kg2.classes
        return [(left_names[i], right_names[j]) for i, j in matches]

    def _greedy_match_streamed(self, kind: ElementKind, threshold: float) -> list[tuple[int, int]]:
        """Greedy one-to-one matching over streamed above-threshold candidates.

        Same tie-sensitive greedy contract as mining: candidates come from
        the backend's row-major threshold scan (exact on every backend — the
        ANN backend prunes with covering radii) and go through
        ``resolve_conflicts`` (stable sort by descending score), so there is
        exactly one implementation of each half.
        """
        from repro.alignment.semi_supervised import resolve_conflicts

        engine = self.model.similarity
        num_rows, num_cols = engine.shape(kind)
        if num_rows == 0 or num_cols == 0:
            return []
        rows, cols, values = engine.threshold_candidates(kind, threshold)
        resolved = resolve_conflicts(list(zip(rows.tolist(), cols.tolist(), values.tolist())))
        return [(left, right) for left, right, _ in resolved]

    def match_probabilities(self, kind: ElementKind) -> np.ndarray:
        """Calibrated match probabilities (Eq. 12) for all pairs of one kind."""
        return self.calibrator.probability_matrix(self.model.similarity_matrix(kind), kind)

    # --------------------------------------------------------- active learning
    def build_pool(self) -> ElementPairPool:
        """The element pair pool from the current model (Sect. 6.1)."""
        return build_pool(self.model, self.config.pool)

    def build_inference_estimator(
        self, pool: ElementPairPool | None = None
    ) -> tuple[AlignmentGraph, InferencePowerEstimator]:
        """The alignment graph and inference power estimator for a pool."""
        pool = pool or self.build_pool()
        graph = build_alignment_graph(
            self.kg1,
            self.kg2,
            pool.entity_pair_set(),
            {(p.left, p.right) for p in pool.relation_pairs},
            {(p.left, p.right) for p in pool.class_pairs},
        )
        estimator = InferencePowerEstimator(self.model, graph, self.config.inference, rng=self.rng)
        return graph, estimator

    def active_learning(
        self,
        strategy: str | SelectionStrategy = "daakg",
        config: ActiveLearningConfig | None = None,
        oracle: Oracle | None = None,
    ) -> ActiveLearningLoop:
        """Create an active learning loop using this pipeline's trainer."""
        if isinstance(strategy, str):
            strategy = create_strategy(strategy)
        loop_config = config or ActiveLearningConfig(
            pool=self.config.pool, inference=self.config.inference, calibration=self.config.calibration
        )
        loop = ActiveLearningLoop(
            self.pair,
            self.trainer,
            oracle or Oracle(self.pair),
            strategy,
            loop_config,
            seed=self.rng,
        )
        # the loop checkpoints through the facade (it needs the original
        # dataset and config, which only the facade holds)
        loop.daakg = self
        return loop

    # ------------------------------------------------------------- persistence
    def save(self, path: str, loop: ActiveLearningLoop | None = None) -> None:
        """Checkpoint the full pipeline state to the directory ``path``.

        The checkpoint (one ``arrays.npz`` + one ``manifest.json``) captures
        the dataset, model and optimiser state, labels, mined matches,
        landmarks, the statistics snapshot and all RNG streams; pass ``loop``
        to include an active-learning campaign's progress.  ``DAAKG.load``
        restores the pipeline bit-exactly: ``evaluate()`` after a round-trip
        reproduces the in-memory scores.
        """
        from repro.persistence import save_checkpoint  # circular at module level

        save_checkpoint(path, self, loop=loop)

    @classmethod
    def load(cls, path: str) -> "DAAKG":
        """Restore a pipeline from a checkpoint written by :meth:`save`."""
        from repro.persistence import load_checkpoint, restore_pipeline

        return restore_pipeline(load_checkpoint(path))

    # ------------------------------------------------------------------ stats
    def parameter_summary(self) -> dict[str, int]:
        return self.model.parameter_summary()

    @property
    def is_fitted(self) -> bool:
        return self._fitted
