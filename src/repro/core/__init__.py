"""The DAAKG end-to-end pipeline (the paper's primary contribution, assembled).

:class:`~repro.core.daakg.DAAKG` wires together the per-KG embedding models,
the entity-class scorers, the joint alignment model with semi-supervised
training, the calibrated probabilities, the inference-power estimator and the
batch active-learning loop, behind a small configuration object.
"""

from repro.core.config import DAAKGConfig
from repro.core.daakg import DAAKG

__all__ = ["DAAKG", "DAAKGConfig"]
