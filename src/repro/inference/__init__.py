"""Inference power measurement (Sect. 5 of the paper).

Given the element-pair pool and the trained joint alignment model, this
package builds the *alignment graph* (element pairs connected when their
elements are connected in the respective KGs) and estimates how strongly a
labelled element pair would let the model infer the labels of its neighbours:

* entity pair → entity pair: embedding-difference bounds along paths
  (Eqs. 13–19),
* relation pair → entity pair: the same bound with the relation difference
  zeroed (Eq. 20),
* entity pair → class pair and entity pair → relation pair: gradient magnitude
  of the schema similarity (Eqs. 21–22),
* overall inference power of a labelled set over the pool (Eq. 23).
"""

from repro.inference.pairs import ElementPair
from repro.inference.alignment_graph import AlignmentGraph, build_alignment_graph
from repro.inference.power import InferencePowerConfig, InferencePowerEstimator

__all__ = [
    "AlignmentGraph",
    "ElementPair",
    "InferencePowerConfig",
    "InferencePowerEstimator",
    "build_alignment_graph",
]
