"""Element pairs: the unit the pool, the alignment graph and selection work on."""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.elements import ElementKind


@dataclass(frozen=True, order=True)
class ElementPair:
    """A candidate correspondence ``(left element of KG1, right element of KG2)``.

    Pairs are identified by integer element indexes within their namespace;
    the ``kind`` field says which namespace (entity, relation or class).
    Instances are hashable and ordered, so they can serve as dict keys and be
    sorted deterministically.
    """

    kind: ElementKind
    left: int
    right: int

    def key(self) -> tuple[str, int, int]:
        return (self.kind.value, self.left, self.right)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}({self.left},{self.right})"


def entity_pair(left: int, right: int) -> ElementPair:
    """Shorthand constructor for an entity pair."""
    return ElementPair(ElementKind.ENTITY, left, right)


def relation_pair(left: int, right: int) -> ElementPair:
    """Shorthand constructor for a relation pair."""
    return ElementPair(ElementKind.RELATION, left, right)


def class_pair(left: int, right: int) -> ElementPair:
    """Shorthand constructor for a class pair."""
    return ElementPair(ElementKind.CLASS, left, right)
