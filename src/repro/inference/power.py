"""Inference power estimation (Sect. 5.2).

The estimator works on NumPy snapshots of the trained joint alignment model
(entity/relation output matrices, mapping matrices, dangling-entity weights
and mean embeddings) and on the alignment graph of the pool.

Path-based power between entity pairs uses per-edge costs

``cost(edge) = ||A_ent·r̃ − r̃'|| + d + d'``

where ``(r̃, d)`` come from each embedding model's tail solver (exact for
TransE, sampled otherwise, Eqs. 13–14).  Path costs are accumulated additively
along at most ``μ`` hops, which upper-bounds the paper's path difference
``D`` (triangle inequality) and therefore lower-bounds — i.e. conservatively
estimates — the inference power ``I = 1/(1 + D)``.

Gradient-based power for class and relation pairs (Eqs. 21–22) is computed in
closed form through the mean-embedding channel of the schema similarities.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.alignment.model import JointAlignmentModel
from repro.inference.alignment_graph import AlignmentEdge, AlignmentGraph
from repro.inference.pairs import ElementPair
from repro.kg.elements import ElementKind
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class InferencePowerConfig:
    """Knobs of the inference power measurement."""

    max_hops: int = 3
    power_threshold: float = 0.8
    solver_samples: int = 3
    solver_steps: int = 15
    min_power: float = 0.05

    def __post_init__(self) -> None:
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        if not 0.0 <= self.power_threshold <= 1.0:
            raise ValueError("power_threshold must be in [0, 1]")
        if not 0.0 <= self.min_power <= 1.0:
            raise ValueError("min_power must be in [0, 1]")


def _cosine_gradient(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of ``cos(a, b)`` with respect to ``a`` and ``b``."""
    norm_a = max(float(np.linalg.norm(a)), 1e-12)
    norm_b = max(float(np.linalg.norm(b)), 1e-12)
    cos = float(np.dot(a, b)) / (norm_a * norm_b)
    grad_a = b / (norm_a * norm_b) - cos * a / (norm_a**2)
    grad_b = a / (norm_a * norm_b) - cos * b / (norm_b**2)
    return grad_a, grad_b


class InferencePowerEstimator:
    """Estimates ``I(q' | q)`` and aggregate inference power over a pool."""

    def __init__(
        self,
        model: JointAlignmentModel,
        graph: AlignmentGraph,
        config: InferencePowerConfig | None = None,
        rng: RandomState = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config or InferencePowerConfig()
        self.rng = ensure_rng(rng)
        # Snapshot arrays are read through the model's SimilarityEngine (the
        # single access point for cached NumPy state) instead of being copied
        # field by field into the estimator; the snapshot itself is built from
        # the embedding models' cached forward session, so constructing an
        # estimator never re-runs a model forward.
        self._snap = model.similarity.snapshot
        self._map_entity = model.map_entity.data
        self._tail_cache_1: dict[tuple[int, int], tuple[np.ndarray, float]] = {}
        self._tail_cache_2: dict[tuple[int, int], tuple[np.ndarray, float]] = {}
        self._edge_power_cache: dict[tuple, float] = {}
        self._source_power_cache: dict[ElementPair, dict[ElementPair, float]] = {}

    # ----------------------------------------------------------- edge costs
    def _tail_solution(self, side: int, head_idx: int, relation_idx: int) -> tuple[np.ndarray, float]:
        """``(translation, bound)`` of one tail solve; side-1 translations are
        cached pre-mapped through ``A_ent`` so the per-edge cost below is a
        plain vector subtraction instead of a matrix-vector product."""
        cache = self._tail_cache_1 if side == 1 else self._tail_cache_2
        key = (head_idx, relation_idx)
        if key in cache:
            return cache[key]
        snap = self._snap
        if side == 1:
            model, entities, relations = self.model.model1, snap.entity_matrix_1, snap.relation_matrix_1
        else:
            model, entities, relations = self.model.model2, snap.entity_matrix_2, snap.relation_matrix_2
        solution = model.solve_tail(
            entities[head_idx],
            relations[relation_idx],
            entities,
            num_samples=self.config.solver_samples,
            num_steps=self.config.solver_steps,
            rng=self.rng,
        )
        translation = solution.translation
        if side == 1:
            translation = self._map_entity.T @ translation
        result = (translation, solution.bound)
        cache[key] = result
        return result

    def edge_cost(self, edge: AlignmentEdge, zero_relation_difference: bool = False) -> float:
        """The bound ``||A_ent·r̃ − r̃'|| + d + d'`` for one alignment-graph edge.

        ``zero_relation_difference`` implements Eq. 20: when the relation pair
        itself is labelled as a match, the relation difference term vanishes.
        """
        mapped_translation_1, bound_1 = self._tail_solution(1, edge.source.left, edge.relation.left)
        translation_2, bound_2 = self._tail_solution(2, edge.source.right, edge.relation.right)
        if zero_relation_difference:
            relation_difference = 0.0
        else:
            relation_difference = float(np.linalg.norm(mapped_translation_1 - translation_2))
        return relation_difference + bound_1 + bound_2

    def edge_power(self, edge: AlignmentEdge, zero_relation_difference: bool = False) -> float:
        """``I(target | source)`` through one edge: ``1 / (1 + cost)``."""
        key = (edge.source, edge.relation, edge.target, zero_relation_difference)
        if key not in self._edge_power_cache:
            cost = self.edge_cost(edge, zero_relation_difference)
            self._edge_power_cache[key] = 1.0 / (1.0 + cost)
        return self._edge_power_cache[key]

    # --------------------------------------------------- entity → entity pairs
    def entity_path_power(self, source: ElementPair) -> dict[ElementPair, float]:
        """Best-path inference power from an entity pair to reachable entity pairs.

        Depth-limited Dijkstra over additive edge costs (≤ ``max_hops`` hops);
        results below ``min_power`` are dropped.
        """
        if source.kind is not ElementKind.ENTITY:
            raise ValueError("entity_path_power expects an entity pair")
        if source in self._source_power_cache:
            return self._source_power_cache[source]
        best_cost: dict[ElementPair, float] = {source: 0.0}
        heap: list[tuple[float, int, ElementPair]] = [(0.0, 0, source)]
        max_cost = (1.0 / max(self.config.min_power, 1e-6)) - 1.0
        while heap:
            cost, hops, node = heapq.heappop(heap)
            if cost > best_cost.get(node, float("inf")):
                continue
            if hops >= self.config.max_hops:
                continue
            for edge in self.graph.out_edges.get(node, []):
                new_cost = cost + (1.0 / self.edge_power(edge) - 1.0)
                if new_cost > max_cost:
                    continue
                if new_cost < best_cost.get(edge.target, float("inf")):
                    best_cost[edge.target] = new_cost
                    heapq.heappush(heap, (new_cost, hops + 1, edge.target))
        powers = {
            node: 1.0 / (1.0 + cost)
            for node, cost in best_cost.items()
            if node != source and 1.0 / (1.0 + cost) >= self.config.min_power
        }
        self._source_power_cache[source] = powers
        return powers

    # -------------------------------------------------- relation → entity pairs
    def relation_to_entity_power(self, source: ElementPair) -> dict[ElementPair, float]:
        """Eq. 20: power of a relation pair over entity pairs reachable through it."""
        if source.kind is not ElementKind.RELATION:
            raise ValueError("relation_to_entity_power expects a relation pair")
        powers: dict[ElementPair, float] = {}
        for edge in self.graph.edges_by_relation_pair.get(source, []):
            power = self.edge_power(edge, zero_relation_difference=True)
            if power < self.config.min_power:
                continue
            if power > powers.get(edge.target, 0.0):
                powers[edge.target] = power
        return powers

    # ------------------------------------------------------ entity → class pairs
    def entity_to_class_power(self, source: ElementPair) -> dict[ElementPair, float]:
        """Eq. 21: gradient of the class similarity with respect to the entity pair."""
        if source.kind is not ElementKind.ENTITY:
            raise ValueError("entity_to_class_power expects an entity pair")
        powers: dict[ElementPair, float] = {}
        if not self.model.use_mean_embeddings:
            return powers
        for c_pair in self.graph.classes_of_entity_pair.get(source, []):
            left_members = self.model.kg1.entities_of_class(c_pair.left)
            right_members = self.model.kg2.entities_of_class(c_pair.right)
            weight_sum_1 = float(np.sum(self._snap.weights_1[left_members])) if left_members else 0.0
            weight_sum_2 = float(np.sum(self._snap.weights_2[right_members])) if right_members else 0.0
            if weight_sum_1 < 1e-9 or weight_sum_2 < 1e-9:
                continue
            a = self._map_entity.T @ self._snap.mean_classes_1[c_pair.left]
            b = self._snap.mean_classes_2[c_pair.right]
            grad_a, grad_b = _cosine_gradient(a, b)
            grad_left = (self._snap.weights_1[source.left] / weight_sum_1) * (self._map_entity @ grad_a)
            grad_right = (self._snap.weights_2[source.right] / weight_sum_2) * grad_b
            power = float(np.sqrt(np.sum(grad_left**2) + np.sum(grad_right**2)))
            if power >= self.config.min_power:
                powers[c_pair] = min(power, 1.0)
        return powers

    # --------------------------------------------------- entity → relation pairs
    def entity_to_relation_power(self, source: ElementPair) -> dict[ElementPair, float]:
        """Eq. 22: gradient of the relation similarity via edges incident to the pair."""
        if source.kind is not ElementKind.ENTITY:
            raise ValueError("entity_to_relation_power expects an entity pair")
        powers: dict[ElementPair, float] = {}
        if not self.model.use_mean_embeddings:
            return powers
        for edge in self.graph.out_edges.get(source, []):
            r_pair = edge.relation
            triples_1 = self.model.kg1.triples_of_relation(r_pair.left)
            triples_2 = self.model.kg2.triples_of_relation(r_pair.right)
            if triples_1.size == 0 or triples_2.size == 0:
                continue
            weight_sum_1 = float(
                np.sum(np.minimum(self._snap.weights_1[triples_1[:, 0]], self._snap.weights_1[triples_1[:, 2]]))
            )
            weight_sum_2 = float(
                np.sum(np.minimum(self._snap.weights_2[triples_2[:, 0]], self._snap.weights_2[triples_2[:, 2]]))
            )
            if weight_sum_1 < 1e-9 or weight_sum_2 < 1e-9:
                continue
            a = self._map_entity.T @ self._snap.mean_relations_1[r_pair.left]
            b = self._snap.mean_relations_2[r_pair.right]
            grad_a, grad_b = _cosine_gradient(a, b)
            weight_left = min(self._snap.weights_1[edge.source.left], self._snap.weights_1[edge.target.left])
            weight_right = min(self._snap.weights_2[edge.source.right], self._snap.weights_2[edge.target.right])
            grad_left = (weight_left / weight_sum_1) * (self._map_entity @ grad_a)
            grad_right = (weight_right / weight_sum_2) * grad_b
            power = float(np.sqrt(np.sum(grad_left**2) + np.sum(grad_right**2)))
            if power >= self.config.min_power:
                if power > powers.get(r_pair, 0.0):
                    powers[r_pair] = min(power, 1.0)
        return powers

    # --------------------------------------------------------------- aggregates
    def reachable_power(self, source: ElementPair) -> dict[ElementPair, float]:
        """``I(q' | q)`` for every pair ``q'`` the source can influence."""
        if source.kind is ElementKind.ENTITY:
            powers = dict(self.entity_path_power(source))
            for target, value in self.entity_to_class_power(source).items():
                powers[target] = max(powers.get(target, 0.0), value)
            for target, value in self.entity_to_relation_power(source).items():
                powers[target] = max(powers.get(target, 0.0), value)
            return powers
        if source.kind is ElementKind.RELATION:
            return self.relation_to_entity_power(source)
        # Class pairs do not propagate inference power in the paper's model.
        return {}

    def power_to_pool(self, source: ElementPair) -> float:
        """``I(P | q)`` of Eq. 23 for a singleton labelled set ``{q}``."""
        threshold = self.config.power_threshold
        return float(
            sum(value for value in self.reachable_power(source).values() if value > threshold)
        )

    def power_from_labelled(self, labelled: list[ElementPair]) -> dict[ElementPair, float]:
        """``I(q' | L+) = max_{q ∈ L+} I(q' | q)`` for every reachable pair."""
        combined: dict[ElementPair, float] = {}
        for source in labelled:
            for target, value in self.reachable_power(source).items():
                if value > combined.get(target, 0.0):
                    combined[target] = value
        return combined

    def overall_power(self, labelled: list[ElementPair]) -> float:
        """``I(P | L+)`` of Eq. 23."""
        threshold = self.config.power_threshold
        combined = self.power_from_labelled(labelled)
        return float(sum(value for value in combined.values() if value > threshold))

    def inferred_pairs(self, labelled: list[ElementPair]) -> list[tuple[ElementPair, float]]:
        """Unlabelled pairs whose inference power from ``L+`` exceeds the threshold."""
        labelled_set = set(labelled)
        combined = self.power_from_labelled(labelled)
        return [
            (pair, value)
            for pair, value in sorted(combined.items(), key=lambda item: -item[1])
            if value > self.config.power_threshold and pair not in labelled_set
        ]


def inference_accuracy(
    estimator: InferencePowerEstimator,
    labelled_matches: list[ElementPair],
    gold: dict[ElementKind, set[tuple[int, int]]],
) -> float:
    """The Table 6 metric: fraction of inferred element pairs that are true matches."""
    inferred = estimator.inferred_pairs(labelled_matches)
    if not inferred:
        return 0.0
    correct = sum(1 for pair, _ in inferred if (pair.left, pair.right) in gold.get(pair.kind, set()))
    return correct / len(inferred)
