"""The alignment graph ``G ×_P G'`` (Sect. 5.1).

Nodes are the element pairs of the pool ``P``; a directed edge
``(x, x') --(r, r')--> (x'', x''')`` exists when ``(x, r, x'')`` is a triple of
KG1, ``(x', r', x''')`` is a triple of KG2, and all three pairs belong to the
pool.  Because the KGs are augmented with inverse relations, each structural
connection appears in both directions, which is what the path-based inference
power needs.

The graph also records two auxiliary incidence structures used by the
gradient-based inference power: which entity pairs instantiate which class
pairs (via type triples), and which entity pairs are endpoints of edges
labelled by each relation pair.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.inference.pairs import ElementPair, class_pair, entity_pair, relation_pair
from repro.kg.graph import KnowledgeGraph


@dataclass(frozen=True)
class AlignmentEdge:
    """A directed edge of the alignment graph."""

    source: ElementPair
    relation: ElementPair
    target: ElementPair


@dataclass
class AlignmentGraph:
    """Adjacency view over the element-pair pool."""

    entity_pairs: list[ElementPair] = field(default_factory=list)
    relation_pairs: list[ElementPair] = field(default_factory=list)
    class_pairs: list[ElementPair] = field(default_factory=list)
    edges: list[AlignmentEdge] = field(default_factory=list)
    out_edges: dict[ElementPair, list[AlignmentEdge]] = field(
        default_factory=lambda: defaultdict(list)
    )
    in_edges: dict[ElementPair, list[AlignmentEdge]] = field(
        default_factory=lambda: defaultdict(list)
    )
    edges_by_relation_pair: dict[ElementPair, list[AlignmentEdge]] = field(
        default_factory=lambda: defaultdict(list)
    )
    class_pair_members: dict[ElementPair, list[ElementPair]] = field(
        default_factory=lambda: defaultdict(list)
    )
    classes_of_entity_pair: dict[ElementPair, list[ElementPair]] = field(
        default_factory=lambda: defaultdict(list)
    )

    @property
    def all_pairs(self) -> list[ElementPair]:
        return self.entity_pairs + self.relation_pairs + self.class_pairs

    def neighbors(self, pair: ElementPair) -> set[ElementPair]:
        """Element pairs adjacent to ``pair`` through alignment-graph edges."""
        result = {edge.target for edge in self.out_edges.get(pair, [])}
        result |= {edge.source for edge in self.in_edges.get(pair, [])}
        return result

    def num_edges(self) -> int:
        return len(self.edges)


def build_alignment_graph(
    kg1: KnowledgeGraph,
    kg2: KnowledgeGraph,
    entity_pool: set[tuple[int, int]],
    relation_pool: set[tuple[int, int]] | None = None,
    class_pool: set[tuple[int, int]] | None = None,
) -> AlignmentGraph:
    """Construct the alignment graph restricted to the pool.

    ``entity_pool`` is a set of (kg1 entity idx, kg2 entity idx) candidates;
    ``relation_pool`` / ``class_pool`` default to the full cross products, as
    in the paper (schemas are small enough to keep every pair).
    """
    if relation_pool is None:
        relation_pool = {
            (r1, r2) for r1 in range(kg1.num_relations) for r2 in range(kg2.num_relations)
        }
    if class_pool is None:
        class_pool = {
            (c1, c2) for c1 in range(kg1.num_classes) for c2 in range(kg2.num_classes)
        }

    graph = AlignmentGraph(
        entity_pairs=[entity_pair(a, b) for a, b in sorted(entity_pool)],
        relation_pairs=[relation_pair(a, b) for a, b in sorted(relation_pool)],
        class_pairs=[class_pair(a, b) for a, b in sorted(class_pool)],
    )
    entity_pool_set = set(entity_pool)
    relation_pool_set = set(relation_pool)

    # entity-pair edges: join the out-edges of both sides
    kg2_out: dict[int, list[tuple[int, int]]] = {
        e: kg2.out_edges(e) for e in range(kg2.num_entities)
    }
    for left, right in entity_pool_set:
        source = entity_pair(left, right)
        left_edges = kg1.out_edges(left)
        right_edges = kg2_out.get(right, [])
        if not left_edges or not right_edges:
            continue
        for r1, t1 in left_edges:
            for r2, t2 in right_edges:
                if (r1, r2) not in relation_pool_set:
                    continue
                if (t1, t2) not in entity_pool_set:
                    continue
                edge = AlignmentEdge(source, relation_pair(r1, r2), entity_pair(t1, t2))
                graph.edges.append(edge)
                graph.out_edges[source].append(edge)
                graph.in_edges[edge.target].append(edge)
                graph.edges_by_relation_pair[edge.relation].append(edge)

    # class-pair membership links (for gradient-based inference power)
    class_pool_set = set(class_pool)
    classes_of_1: dict[int, list[int]] = {
        e: kg1.classes_of(e) for e in range(kg1.num_entities)
    }
    classes_of_2: dict[int, list[int]] = {
        e: kg2.classes_of(e) for e in range(kg2.num_entities)
    }
    for left, right in entity_pool_set:
        e_pair = entity_pair(left, right)
        for c1 in classes_of_1.get(left, []):
            for c2 in classes_of_2.get(right, []):
                if (c1, c2) not in class_pool_set:
                    continue
                c_pair = class_pair(c1, c2)
                graph.class_pair_members[c_pair].append(e_pair)
                graph.classes_of_entity_pair[e_pair].append(c_pair)
    return graph
