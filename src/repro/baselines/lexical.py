"""Lexical (name-based) matcher: the stand-in for BERTMap / AttrE / MultiKE.

The paper's text-driven baselines align elements from their names, textual
descriptions or literal attributes.  Without a pre-trained language model we
use character n-gram Jaccard similarity of local names, which reproduces the
qualitative behaviour: strong on datasets whose two sides share a vocabulary
(D-Y in this benchmark suite), near-useless on cross-vocabulary datasets
(D-W, EN-DE, EN-FR obfuscate the second KG's names).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AlignmentBaseline
from repro.kg.pair import AlignedKGPair


def _local_name(name: str) -> str:
    """Strip the view prefix (everything up to the first colon)."""
    return name.split(":", 1)[1] if ":" in name else name


def character_ngrams(text: str, n: int = 3) -> set[str]:
    """Character n-grams of a normalised string (padded for short names)."""
    text = text.lower().strip()
    if len(text) < n:
        return {text} if text else set()
    return {text[i : i + n] for i in range(len(text) - n + 1)}


def ngram_jaccard(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity of character n-gram sets."""
    grams_a = character_ngrams(a, n)
    grams_b = character_ngrams(b, n)
    if not grams_a or not grams_b:
        return 0.0
    return len(grams_a & grams_b) / len(grams_a | grams_b)


class LexicalMatcher(AlignmentBaseline):
    """Aligns entities, relations and classes by n-gram name similarity."""

    name = "lexical"

    def __init__(self, ngram_size: int = 3) -> None:
        super().__init__()
        if ngram_size < 1:
            raise ValueError("ngram_size must be >= 1")
        self.ngram_size = ngram_size
        self._entity: np.ndarray | None = None
        self._relation: np.ndarray | None = None
        self._class: np.ndarray | None = None

    def _similarity(self, names_1: list[str], names_2: list[str]) -> np.ndarray:
        matrix = np.zeros((len(names_1), len(names_2)))
        grams_2 = [character_ngrams(_local_name(b), self.ngram_size) for b in names_2]
        for i, a in enumerate(names_1):
            grams_a = character_ngrams(_local_name(a), self.ngram_size)
            if not grams_a:
                continue
            for j, grams_b in enumerate(grams_2):
                if not grams_b:
                    continue
                matrix[i, j] = len(grams_a & grams_b) / len(grams_a | grams_b)
        return matrix

    def fit(self, pair: AlignedKGPair) -> "LexicalMatcher":
        self.pair = pair
        with self.training_time:
            self._entity = self._similarity(pair.kg1.entities, pair.kg2.entities)
            self._relation = self._similarity(pair.kg1.relations, pair.kg2.relations)
            self._class = self._similarity(pair.kg1.classes, pair.kg2.classes)
        return self

    def entity_similarity_matrix(self) -> np.ndarray:
        return self._entity

    def relation_similarity_matrix(self) -> np.ndarray:
        return self._relation

    def class_similarity_matrix(self) -> np.ndarray:
        return self._class
