"""Embedding-based entity alignment baselines.

These are restricted configurations of the same machinery DAAKG uses —
which is exactly how the original methods relate to DAAKG in the paper:

* **MTransE**: TransE embeddings per KG plus a linear mapping trained on seed
  matches.  No class modelling, no mean embeddings, no semi-supervision, no
  hard negatives, no structural channel.
* **GCN-Align**: GNN embeddings (shared weights across the KGs) aligned with
  seed matches; classes treated as entities; no semi-supervision.
* **BootEA**: TransE embeddings with bootstrapped (semi-supervised) entity
  matches; no schema modelling.

Relation and class similarities of these baselines are computed from their
entity/relation embeddings alone (classes as entities), which is why they do
poorly at schema alignment — the effect Table 3 shows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.base import AlignmentBaseline
from repro.core.config import DAAKGConfig
from repro.core.daakg import DAAKG
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.kg.pair import AlignedKGPair


@dataclass(frozen=True)
class EmbeddingBaselineConfig:
    """Shared knobs of the embedding baselines."""

    entity_dim: int = 32
    pretrain_epochs: int = 8
    rounds: int = 3
    epochs_per_round: int = 20
    learning_rate: float = 0.03
    seed: int = 0


class _RestrictedDAAKG(AlignmentBaseline):
    """Base class: run the DAAKG pipeline with components switched off."""

    name = "restricted"
    base_model = "transe"
    semi_supervised = False
    hard_negatives = False
    entity_anchor = True

    def __init__(self, config: EmbeddingBaselineConfig | None = None) -> None:
        super().__init__()
        self.config = config or EmbeddingBaselineConfig()
        self._pipeline: DAAKG | None = None

    def _daakg_config(self) -> DAAKGConfig:
        cfg = self.config
        alignment = AlignmentTrainingConfig(
            rounds=cfg.rounds,
            epochs_per_round=cfg.epochs_per_round,
            learning_rate=cfg.learning_rate,
            num_negatives=10,
            semi_supervised=self.semi_supervised,
            embedding_batches_per_round=4,
            embedding_batch_size=512,
            align_relations_via_entity_map=False,
            hard_negative_fraction=0.5 if self.hard_negatives else 0.0,
            entity_anchor_weight=1.0 if self.entity_anchor else 0.0,
        )
        pretrain = replace(DAAKGConfig().pretrain, epochs=cfg.pretrain_epochs)
        return DAAKGConfig(
            base_model=self.base_model,
            entity_dim=cfg.entity_dim,
            pretrain=pretrain,
            alignment=alignment,
            use_class_embeddings=False,
            use_mean_embeddings=False,
            use_semi_supervision=self.semi_supervised,
            use_structural_channel=False,
            seed=cfg.seed,
        )

    def fit(self, pair: AlignedKGPair) -> "_RestrictedDAAKG":
        self.pair = pair
        with self.training_time:
            self._pipeline = DAAKG(pair, self._daakg_config())
            self._pipeline.fit()
        return self

    def entity_similarity_matrix(self) -> np.ndarray:
        return self._pipeline.model.entity_similarity_matrix()

    def relation_similarity_matrix(self) -> np.ndarray:
        return self._pipeline.model.relation_similarity_matrix()

    def class_similarity_matrix(self) -> np.ndarray:
        return self._pipeline.model.class_similarity_matrix()


class MTransE(_RestrictedDAAKG):
    """Translation embeddings + linear mapping trained on seeds only."""

    name = "mtranse"
    base_model = "transe"
    semi_supervised = False
    hard_negatives = False


class GCNAlign(_RestrictedDAAKG):
    """GNN embeddings with shared weights, structure-only, seeds only."""

    name = "gcn-align"
    base_model = "compgcn"
    semi_supervised = False
    hard_negatives = True


class BootEA(_RestrictedDAAKG):
    """Translation embeddings with bootstrapped entity matches."""

    name = "bootea"
    base_model = "transe"
    semi_supervised = True
    hard_negatives = True
