"""PARIS (Suchanek et al., 2011): probabilistic alignment of relations, instances and schema.

A training-free iterative method.  Entity match probabilities are propagated
through shared (probabilistically matched) relations weighted by relation
functionality; relation match probabilities are re-estimated from the entity
match probabilities; class match probabilities come from the overlap of the
classes' (probabilistically matched) instance sets.  This implementation keeps
PARIS's core fixed-point structure at the scale of the synthetic benchmarks:
a few global iterations over dense probability matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import AlignmentBaseline
from repro.kg.pair import AlignedKGPair
from repro.kg.statistics import relation_functionality


@dataclass(frozen=True)
class ParisConfig:
    """Iteration parameters of PARIS."""

    iterations: int = 4
    initial_entity_probability: float = 0.1
    seed_probability: float = 1.0
    use_training_seeds: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


class PARIS(AlignmentBaseline):
    """Probabilistic aligner of instances, relations and classes."""

    name = "paris"

    def __init__(self, config: ParisConfig | None = None) -> None:
        super().__init__()
        self.config = config or ParisConfig()
        self._entity_probability: np.ndarray | None = None
        self._relation_probability: np.ndarray | None = None
        self._class_probability: np.ndarray | None = None

    def fit(self, pair: AlignedKGPair) -> "PARIS":
        self.pair = pair
        kg1, kg2 = pair.kg1, pair.kg2
        config = self.config
        with self.training_time:
            functionality_1 = relation_functionality(kg1)

            entity_probability = np.zeros((kg1.num_entities, kg2.num_entities))
            if config.use_training_seeds and pair.train_entity_pairs:
                seeds = pair.entity_match_ids(pair.train_entity_pairs)
                entity_probability[seeds[:, 0], seeds[:, 1]] = config.seed_probability
            relation_probability = np.full(
                (kg1.num_relations, kg2.num_relations), config.initial_entity_probability
            )

            triples_1 = kg1.triple_array
            triples_2 = kg2.triple_array
            for _ in range(config.iterations):
                # --- entity update: evidence from matching (r, tail) / (r', tail') pairs
                new_entity = entity_probability.copy()
                evidence = np.zeros_like(entity_probability)
                for h1, r1, t1 in triples_1:
                    row = relation_probability[r1]
                    best_r2 = int(np.argmax(row))
                    rel_prob = float(row[best_r2])
                    if rel_prob < 1e-3:
                        continue
                    # heads become more likely matched if tails are matched (and vice versa)
                    tail_row = entity_probability[t1]
                    if tail_row.max() <= 0:
                        continue
                    weight = rel_prob * float(functionality_1.get(kg1.relations[r1], 0.0))
                    evidence[h1] = np.maximum(evidence[h1], weight * _tail_support(triples_2, best_r2, tail_row))
                new_entity = np.maximum(new_entity, evidence)

                # --- relation update: P(r ≡ r') from co-occurring matched endpoints
                relation_probability = _relation_update(
                    triples_1, triples_2, new_entity, kg1.num_relations, kg2.num_relations
                )
                entity_probability = new_entity

            self._entity_probability = entity_probability
            self._relation_probability = relation_probability
            self._class_probability = _class_update(pair, entity_probability)
        return self

    def entity_similarity_matrix(self) -> np.ndarray:
        return self._entity_probability

    def relation_similarity_matrix(self) -> np.ndarray:
        return self._relation_probability

    def class_similarity_matrix(self) -> np.ndarray:
        return self._class_probability


def _tail_support(triples_2: np.ndarray, relation_2: int, tail_row: np.ndarray) -> np.ndarray:
    """For each KG2 head, the best tail-match probability through ``relation_2``."""
    num_heads = int(triples_2[:, 0].max()) + 1 if triples_2.size else 0
    support = np.zeros(max(num_heads, 1))
    mask = triples_2[:, 1] == relation_2
    for h2, _, t2 in triples_2[mask]:
        support[h2] = max(support[h2], tail_row[t2])
    # pad to the full entity count of KG2 (tail_row length)
    if support.shape[0] < tail_row.shape[0]:
        support = np.pad(support, (0, tail_row.shape[0] - support.shape[0]))
    return support[: tail_row.shape[0]]


def _relation_update(
    triples_1: np.ndarray,
    triples_2: np.ndarray,
    entity_probability: np.ndarray,
    num_relations_1: int,
    num_relations_2: int,
) -> np.ndarray:
    """Estimate relation match probabilities from matched endpoints."""
    scores = np.zeros((num_relations_1, num_relations_2))
    counts = np.zeros((num_relations_1, 1)) + 1e-9
    if triples_1.size == 0 or triples_2.size == 0:
        return scores
    # index KG2 triples by relation for the co-occurrence scan
    by_relation_2: dict[int, np.ndarray] = {
        r2: triples_2[triples_2[:, 1] == r2] for r2 in range(num_relations_2)
    }
    for h1, r1, t1 in triples_1:
        counts[r1, 0] += 1.0
        head_row = entity_probability[h1]
        tail_row = entity_probability[t1]
        if head_row.max() <= 0 or tail_row.max() <= 0:
            continue
        for r2, rows in by_relation_2.items():
            if rows.size == 0:
                continue
            support = np.max(head_row[rows[:, 0]] * tail_row[rows[:, 2]])
            scores[r1, r2] += support
    return scores / counts


def _class_update(pair: AlignedKGPair, entity_probability: np.ndarray) -> np.ndarray:
    """Class match probabilities: probabilistic overlap of instance sets."""
    kg1, kg2 = pair.kg1, pair.kg2
    scores = np.zeros((kg1.num_classes, kg2.num_classes))
    for c1 in range(kg1.num_classes):
        members_1 = kg1.entities_of_class(c1)
        if not members_1:
            continue
        for c2 in range(kg2.num_classes):
            members_2 = kg2.entities_of_class(c2)
            if not members_2:
                continue
            sub = entity_probability[np.ix_(members_1, members_2)]
            overlap = float(sub.max(axis=1).sum())
            scores[c1, c2] = overlap / max(len(members_1), len(members_2))
    return scores
