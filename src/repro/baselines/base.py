"""Common interface of baseline aligners."""

from __future__ import annotations

import numpy as np

from repro.alignment.evaluation import AlignmentScores, evaluate_alignment
from repro.kg.pair import AlignedKGPair
from repro.utils.timer import Timer


class AlignmentBaseline:
    """A method that produces similarity matrices for entities, relations and classes."""

    name = "baseline"

    def __init__(self) -> None:
        self.pair: AlignedKGPair | None = None
        self.training_time = Timer()

    # ------------------------------------------------------------------- API
    def fit(self, pair: AlignedKGPair) -> "AlignmentBaseline":
        """Train (or simply prepare) the baseline on a dataset."""
        raise NotImplementedError

    def entity_similarity_matrix(self) -> np.ndarray:
        raise NotImplementedError

    def relation_similarity_matrix(self) -> np.ndarray:
        raise NotImplementedError

    def class_similarity_matrix(self) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------ evaluation
    def evaluate(self, test_only: bool = True) -> dict[str, AlignmentScores]:
        """Same metric dictionary as :meth:`repro.core.DAAKG.evaluate`."""
        if self.pair is None:
            raise RuntimeError(f"{self.name} has not been fitted")
        entity_pairs = (
            self.pair.entity_match_ids(self.pair.test_entity_pairs)
            if test_only and self.pair.test_entity_pairs
            else self.pair.entity_match_ids()
        )
        return {
            "entity": evaluate_alignment(self.entity_similarity_matrix(), entity_pairs),
            "relation": evaluate_alignment(
                self.relation_similarity_matrix(), self.pair.relation_match_ids()
            ),
            "class": evaluate_alignment(
                self.class_similarity_matrix(), self.pair.class_match_ids()
            ),
        }
