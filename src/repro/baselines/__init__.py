"""Baseline alignment methods used in the comparison experiments (Table 3/4).

One representative per family of competitors:

* :class:`~repro.baselines.paris.PARIS` — the probabilistic, training-free
  aligner of instances, relations and classes,
* :class:`~repro.baselines.embedding.MTransE` — translation embeddings plus a
  linear mapping, no schema modelling, no semi-supervision,
* :class:`~repro.baselines.embedding.GCNAlign` — GNN embeddings with shared
  weights, structure only,
* :class:`~repro.baselines.embedding.BootEA` — translation embeddings with
  bootstrapped (semi-supervised) entity matches,
* :class:`~repro.baselines.lexical.LexicalMatcher` — character n-gram name
  matching, standing in for the BERT/attribute baselines (BERTMap, AttrE,
  MultiKE).

All baselines implement ``fit(pair)`` / ``evaluate()`` with the same metric
outputs as :class:`repro.core.DAAKG`, so the benchmark harness treats them
uniformly.
"""

from repro.baselines.base import AlignmentBaseline
from repro.baselines.paris import PARIS, ParisConfig
from repro.baselines.embedding import BootEA, EmbeddingBaselineConfig, GCNAlign, MTransE
from repro.baselines.lexical import LexicalMatcher

BASELINE_REGISTRY = {
    "paris": PARIS,
    "mtranse": MTransE,
    "gcn-align": GCNAlign,
    "bootea": BootEA,
    "lexical": LexicalMatcher,
}


def create_baseline(name: str, **kwargs) -> AlignmentBaseline:
    """Instantiate a registered baseline by name (case-insensitive)."""
    key = name.lower()
    if key not in BASELINE_REGISTRY:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINE_REGISTRY)}")
    return BASELINE_REGISTRY[key](**kwargs)


__all__ = [
    "AlignmentBaseline",
    "BASELINE_REGISTRY",
    "BootEA",
    "EmbeddingBaselineConfig",
    "GCNAlign",
    "LexicalMatcher",
    "MTransE",
    "PARIS",
    "ParisConfig",
    "create_baseline",
]
