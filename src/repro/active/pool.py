"""Element pair pool generation (Sect. 6.1).

Each entity gets a *schema signature* — the concatenation of its
relation-evidence vector and class-evidence vector, where dangling relations
and classes are down-weighted by their best alignment similarity (Eqs. 24–25).
The pool keeps, for every entity, its top-N nearest neighbours by signature
cosine similarity (mutually, i.e. a pair survives only if each side ranks the
other), plus every relation pair and every class pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alignment.model import JointAlignmentModel
from repro.inference.pairs import ElementPair, class_pair, entity_pair, relation_pair
from repro.kg.elements import ElementKind
from repro.kg.graph import KnowledgeGraph
from repro.utils.math import cosine_similarity_matrix, top_k_rows


@dataclass(frozen=True)
class PoolConfig:
    """Parameters of pool generation."""

    top_n: int = 200
    include_relation_pairs: bool = True
    include_class_pairs: bool = True

    def __post_init__(self) -> None:
        if self.top_n < 1:
            raise ValueError("top_n must be >= 1")


@dataclass(frozen=True)
class ElementPairPool:
    """The candidate element pairs active learning may ask the oracle about.

    Immutable: the pair sequences are normalised to tuples at construction, so
    the membership sets built in ``__post_init__`` can never silently go stale
    (mutating a pair list after construction used to desynchronise
    ``__contains__`` and ``recall_of_matches`` from the lists).
    """

    entity_pairs: tuple[ElementPair, ...] = ()
    relation_pairs: tuple[ElementPair, ...] = ()
    class_pairs: tuple[ElementPair, ...] = ()

    @property
    def all_pairs(self) -> list[ElementPair]:
        return list(self.entity_pairs) + list(self.relation_pairs) + list(self.class_pairs)

    def __len__(self) -> int:
        return len(self.entity_pairs) + len(self.relation_pairs) + len(self.class_pairs)

    def __contains__(self, pair: ElementPair) -> bool:
        if pair.kind is ElementKind.ENTITY:
            return pair in self._entity_set
        if pair.kind is ElementKind.RELATION:
            return pair in self._relation_set
        return pair in self._class_set

    def __post_init__(self) -> None:
        object.__setattr__(self, "entity_pairs", tuple(self.entity_pairs))
        object.__setattr__(self, "relation_pairs", tuple(self.relation_pairs))
        object.__setattr__(self, "class_pairs", tuple(self.class_pairs))
        object.__setattr__(self, "_entity_set", frozenset(self.entity_pairs))
        object.__setattr__(self, "_relation_set", frozenset(self.relation_pairs))
        object.__setattr__(self, "_class_set", frozenset(self.class_pairs))

    def entity_pair_set(self) -> set[tuple[int, int]]:
        return {(p.left, p.right) for p in self.entity_pairs}

    def recall_of_matches(self, gold_pairs: set[tuple[int, int]]) -> float:
        """Fraction of gold entity matches preserved by the pool (Figure 6)."""
        if not gold_pairs:
            return 0.0
        kept = sum(1 for pair in gold_pairs if entity_pair(*pair) in self._entity_set)
        return kept / len(gold_pairs)


def _evidence_vector(
    kg: KnowledgeGraph,
    entity: int,
    weights: np.ndarray,
    embeddings: np.ndarray,
    incident: list[int],
) -> np.ndarray:
    """Weighted average of evidence embeddings incident to one entity."""
    dim = embeddings.shape[1] if embeddings.size else 0
    if not incident or dim == 0:
        return np.zeros(dim)
    w = weights[incident]
    total = w.sum()
    if total < 1e-9:
        return embeddings[incident].mean(axis=0)
    return (embeddings[incident] * w[:, None]).sum(axis=0) / total


def schema_signatures(
    kg: KnowledgeGraph,
    relation_weights: np.ndarray,
    class_weights: np.ndarray,
    mean_relations: np.ndarray,
    mean_classes: np.ndarray,
) -> np.ndarray:
    """Schema signatures ``sig(e)`` for every entity of one KG (Eq. 24).

    ``relation_weights`` / ``class_weights`` are the best alignment
    similarities of each relation / class (Eq. 25); ``mean_relations`` /
    ``mean_classes`` are the weighted mean embeddings (Eqs. 7 and 9).
    """
    rel_dim = mean_relations.shape[1] if mean_relations.size else 0
    cls_dim = mean_classes.shape[1] if mean_classes.size else 0
    signatures = np.zeros((kg.num_entities, rel_dim + cls_dim))
    for e in range(kg.num_entities):
        incident_relations = sorted(kg.relations_of_entity(e))
        incident_classes = kg.classes_of(e)
        rel_part = _evidence_vector(kg, e, relation_weights, mean_relations, incident_relations)
        cls_part = _evidence_vector(kg, e, class_weights, mean_classes, incident_classes)
        signatures[e] = np.concatenate([rel_part, cls_part])
    return signatures


def build_pool(model: JointAlignmentModel, config: PoolConfig | None = None) -> ElementPairPool:
    """Build the element pair pool from the current joint alignment model.

    Schema-evidence weights (Eq. 25) are per-row / per-column similarity
    maxima read through the engine, and the mutual top-N entity filter runs
    on the schema signatures: dense boolean masks on the dense backend
    (historical, bit-exact path), two streamed top-N passes plus a
    ``searchsorted`` membership check on the sharded backend — so pool
    construction never materialises an ``N × M`` array there either.
    """
    config = config or PoolConfig()
    kg1, kg2 = model.kg1, model.kg2
    engine = model.similarity
    snap = engine.snapshot
    rel_weights_1, rel_weights_2 = engine.row_col_max(ElementKind.RELATION)
    cls_weights_1, cls_weights_2 = engine.row_col_max(ElementKind.CLASS)

    signatures_1 = schema_signatures(
        kg1, rel_weights_1, cls_weights_1, snap.mean_relations_1, snap.mean_classes_1
    )
    signatures_2 = schema_signatures(
        kg2, rel_weights_2, cls_weights_2, snap.mean_relations_2, snap.mean_classes_2
    )
    if engine.backend_name == "dense":
        similarity = cosine_similarity_matrix(signatures_1, signatures_2)
        # Mutual top-N filter, vectorized: a pair survives when each side
        # ranks the other, i.e. both boolean membership masks are set.
        top_for_left = top_k_rows(similarity, config.top_n)
        top_for_right = top_k_rows(similarity.T, config.top_n)
        in_left_top = np.zeros(similarity.shape, dtype=bool)
        if top_for_left.size:
            in_left_top[np.arange(kg1.num_entities)[:, None], top_for_left] = True
        in_right_top = np.zeros(similarity.shape, dtype=bool)
        if top_for_right.size:
            in_right_top[top_for_right, np.arange(kg2.num_entities)[:, None]] = True
        lefts, rights = np.nonzero(in_left_top & in_right_top)
    else:
        lefts, rights = engine.mutual_top_n_pairs(signatures_1, signatures_2, config.top_n)
    entity_pairs = [entity_pair(int(a), int(b)) for a, b in zip(lefts, rights)]

    relation_pairs = (
        [relation_pair(a, b) for a in range(kg1.num_relations) for b in range(kg2.num_relations)]
        if config.include_relation_pairs
        else []
    )
    class_pairs = (
        [class_pair(a, b) for a in range(kg1.num_classes) for b in range(kg2.num_classes)]
        if config.include_class_pairs
        else []
    )
    return ElementPairPool(tuple(entity_pairs), tuple(relation_pairs), tuple(class_pairs))
