"""The active alignment loop (Figure 2, right-hand side).

Each iteration: build the selection state (pool, calibrated probabilities,
optionally the alignment graph and inference-power estimator), ask the
strategy for a batch, label it with the oracle, fine-tune the joint alignment
model on the new labels (focal loss), and record progressive evaluation
scores.  The loop stops when the labelling budget (number of batches) runs
out, as in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.active.oracle import Oracle
from repro.active.pool import ElementPairPool, PoolConfig, build_pool
from repro.active.strategies import SelectionState, SelectionStrategy
from repro.alignment.calibration import AlignmentCalibrator, CalibrationConfig
from repro.alignment.evaluation import AlignmentScores, evaluate_alignment_from_engine
from repro.alignment.trainer import JointAlignmentTrainer
from repro.inference.alignment_graph import build_alignment_graph
from repro.inference.pairs import ElementPair
from repro.inference.power import InferencePowerConfig, InferencePowerEstimator
from repro.kg.elements import ElementKind
from repro.kg.pair import AlignedKGPair
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, ensure_rng

logger = get_logger(__name__)

_KINDS = (ElementKind.ENTITY, ElementKind.RELATION, ElementKind.CLASS)


@dataclass(frozen=True)
class ActiveLearningConfig:
    """Budget and refresh settings of the active loop."""

    batch_size: int = 50
    num_batches: int = 5
    fine_tune_epochs: int = 15
    pool: PoolConfig = PoolConfig()
    inference: InferencePowerConfig = InferencePowerConfig()
    calibration: CalibrationConfig = CalibrationConfig()
    rebuild_pool_each_batch: bool = False

    def __post_init__(self) -> None:
        if self.batch_size < 1 or self.num_batches < 1:
            raise ValueError("batch_size and num_batches must be >= 1")


@dataclass
class ActiveLearningRecord:
    """Progressive scores after one labelled batch."""

    batch_index: int
    labels_used: int
    matches_labelled: int
    match_fraction: float
    entity_scores: AlignmentScores
    relation_scores: AlignmentScores
    class_scores: AlignmentScores
    seconds: float
    selected: list[ElementPair] = field(default_factory=list)


class ActiveLearningLoop:
    """Drives strategy → oracle → fine-tune iterations."""

    def __init__(
        self,
        pair: AlignedKGPair,
        trainer: JointAlignmentTrainer,
        oracle: Oracle,
        strategy: SelectionStrategy,
        config: ActiveLearningConfig | None = None,
        seed: RandomState = None,
    ) -> None:
        self.pair = pair
        self.trainer = trainer
        self.model = trainer.model
        self.oracle = oracle
        self.strategy = strategy
        self.config = config or ActiveLearningConfig()
        self.rng = ensure_rng(seed)
        self.calibrator = AlignmentCalibrator(self.config.calibration)
        self._pool: ElementPairPool | None = None
        self.records: list[ActiveLearningRecord] = []
        # Campaign persistence: ``daakg`` is the owning pipeline facade
        # (attached by ``DAAKG.active_learning``), which checkpointing needs
        # because the loop only sees the derived working pair, not the
        # original dataset.  ``autosave_path`` triggers a checkpoint after
        # every completed batch; ``_next_batch`` is the resume cursor.
        self.daakg = None
        self.autosave_path: str | None = None
        self._next_batch = 0

    # ----------------------------------------------------------------- state
    @property
    def batches_done(self) -> int:
        """Completed batches (the resume cursor) — public progress surface."""
        return self._next_batch

    def pool(self) -> ElementPairPool:
        if self._pool is None or self.config.rebuild_pool_each_batch:
            self._pool = build_pool(self.model, self.config.pool)
        return self._pool

    def _probability_lookup(self, pool: ElementPairPool) -> dict[ElementPair, float]:
        """Calibrated probability per pool pair, read through the engine.

        Similarities come from the model's SimilarityEngine (cached between
        optimiser steps).  Probabilities are computed only for the pool's
        pairs — row/column-sliced softmax on the dense backend (identical
        values to the full probability matrix at a fraction of the work),
        streamed tile softmax on the sharded backend (the full matrix never
        exists).
        """
        engine = self.model.similarity
        lookup: dict[ElementPair, float] = {}
        groups = (
            (ElementKind.ENTITY, pool.entity_pairs),
            (ElementKind.RELATION, pool.relation_pairs),
            (ElementKind.CLASS, pool.class_pairs),
        )
        for kind, pairs in groups:
            if not pairs:
                continue
            num_rows, num_cols = engine.shape(kind)
            if num_rows == 0 or num_cols == 0:
                lookup.update((pair, 0.0) for pair in pairs)
                continue
            lefts = np.fromiter((p.left for p in pairs), dtype=np.int64, count=len(pairs))
            rights = np.fromiter((p.right for p in pairs), dtype=np.int64, count=len(pairs))
            probabilities = self.calibrator.pair_probabilities_from_engine(
                engine, kind, lefts, rights
            )
            lookup.update(zip(pairs, probabilities.tolist()))
        return lookup

    def _build_state(self) -> SelectionState:
        pool = self.pool()
        labelled = {
            ElementKind.ENTITY: self.trainer.labels.labelled_pairs(ElementKind.ENTITY),
            ElementKind.RELATION: self.trainer.labels.labelled_pairs(ElementKind.RELATION),
            ElementKind.CLASS: self.trainer.labels.labelled_pairs(ElementKind.CLASS),
        }
        unlabelled = [
            pair for pair in pool.all_pairs if (pair.left, pair.right) not in labelled[pair.kind]
        ]
        probabilities = self._probability_lookup(pool)
        graph = None
        estimator = None
        if self.strategy.requires_inference:
            graph = build_alignment_graph(
                self.model.kg1,
                self.model.kg2,
                pool.entity_pair_set(),
                {(p.left, p.right) for p in pool.relation_pairs},
                {(p.left, p.right) for p in pool.class_pairs},
            )
            estimator = InferencePowerEstimator(
                self.model, graph, self.config.inference, rng=self.rng
            )
        return SelectionState(
            pool=pool,
            unlabelled=unlabelled,
            probabilities=probabilities,
            model=self.model,
            graph=graph,
            estimator=estimator,
            rng=self.rng,
        )

    # ------------------------------------------------------------- evaluation
    def evaluate(self) -> tuple[AlignmentScores, AlignmentScores, AlignmentScores]:
        """Scores on the unseen test entity matches and all schema matches.

        Reads through the SimilarityEngine, so evaluation reuses any matrix
        already computed since the last optimiser step.
        """
        engine = self.model.similarity
        test_ids = self.pair.entity_match_ids(self.pair.test_entity_pairs)
        entity = evaluate_alignment_from_engine(engine, ElementKind.ENTITY, test_ids)
        relation = evaluate_alignment_from_engine(
            engine, ElementKind.RELATION, self.pair.relation_match_ids()
        )
        cls = evaluate_alignment_from_engine(
            engine, ElementKind.CLASS, self.pair.class_match_ids()
        )
        return entity, relation, cls

    # ------------------------------------------------------------ persistence
    def save(self, path: str) -> None:
        """Checkpoint the campaign (pipeline + loop progress) to ``path``."""
        if self.daakg is None:
            raise RuntimeError(
                "loop is not attached to a DAAKG pipeline; create it via "
                "DAAKG.active_learning (or set loop.daakg) before saving"
            )
        from repro.persistence import save_checkpoint  # circular at module level

        save_checkpoint(path, self.daakg, loop=self)

    @classmethod
    def resume(cls, checkpoint, daakg=None, strategy=None) -> "ActiveLearningLoop":
        """Rebuild a campaign from a checkpoint written by :meth:`save`.

        ``checkpoint`` is a checkpoint directory path or an already-loaded
        :class:`repro.persistence.Checkpoint`.  The restored loop continues at
        its first uncompleted batch and reproduces the uninterrupted run's
        records bit-exactly (everything the next batch depends on — model,
        optimiser, labels, pool, RNG streams — is part of the checkpoint).
        """
        from repro.persistence import Checkpoint, load_checkpoint, restore_loop

        if not isinstance(checkpoint, Checkpoint):
            checkpoint = load_checkpoint(checkpoint)
        return restore_loop(checkpoint, daakg=daakg, strategy=strategy)

    # -------------------------------------------------------------------- run
    def run(self, max_batches: int | None = None) -> list[ActiveLearningRecord]:
        """Run the remaining batches; returns the full record list.

        ``max_batches`` caps how many *new* batches this call processes — a
        resumed campaign continues where the checkpoint left off, and tests /
        operators can deliberately stop a campaign mid-budget.  When
        ``autosave_path`` is set, the campaign is checkpointed after every
        completed batch, so a killed process restarts at its last completed
        round.
        """
        total_matches = max(len(self.pair.entity_alignment), 1)
        processed = 0
        while self._next_batch < self.config.num_batches:
            if max_batches is not None and processed >= max_batches:
                break
            batch_index = self._next_batch
            start = time.perf_counter()
            with obs.span("active.batch", batch=batch_index):
                state = self._build_state()
                with obs.timer("active.select.seconds"):
                    selected = self.strategy.select(state, self.config.batch_size)
                if not selected:
                    logger.info(
                        "strategy returned no pairs; stopping at batch %d", batch_index
                    )
                    break
                answers = self.oracle.label_batch(selected)
                new_matches: dict[ElementKind, list[tuple[int, int]]] = {k: [] for k in _KINDS}
                new_non_matches: dict[ElementKind, list[tuple[int, int]]] = {k: [] for k in _KINDS}
                for pair, is_match in answers:
                    target = new_matches if is_match else new_non_matches
                    target[pair.kind].append((pair.left, pair.right))
                with obs.timer("active.fine_tune.seconds"):
                    self.trainer.fine_tune(
                        new_matches, new_non_matches, epochs=self.config.fine_tune_epochs
                    )
                with obs.timer("active.evaluate.seconds"):
                    entity_scores, relation_scores, class_scores = self.evaluate()
            matches_labelled = sum(
                len(v) for v in self.trainer.labels.matches.values()
            )
            record = ActiveLearningRecord(
                batch_index=batch_index,
                labels_used=self.oracle.questions_asked,
                matches_labelled=matches_labelled,
                match_fraction=len(self.trainer.labels.matches[ElementKind.ENTITY]) / total_matches,
                entity_scores=entity_scores,
                relation_scores=relation_scores,
                class_scores=class_scores,
                seconds=time.perf_counter() - start,
                selected=selected,
            )
            self.records.append(record)
            self._next_batch = batch_index + 1
            processed += 1
            if self.autosave_path:
                self.save(self.autosave_path)
            logger.info(
                "batch %d: labels=%d entity H@1=%.3f F1=%.3f",
                batch_index,
                record.labels_used,
                entity_scores.hits_at_1,
                entity_scores.f1,
            )
        return self.records
