"""Element pair selection strategies.

``DAAKGStrategy`` is the paper's proposal (expected inference power, greedy or
partition-based).  The others are the competitors of Figure 5: Random, Degree,
PageRank, Uncertainty and an ActiveEA-style structural uncertainty strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.active.pool import ElementPairPool
from repro.active.selection import GreedySelectionConfig, greedy_select
from repro.active.partition import PartitionSelectionConfig, partition_select
from repro.alignment.model import JointAlignmentModel
from repro.inference.alignment_graph import AlignmentGraph
from repro.inference.pairs import ElementPair
from repro.inference.power import InferencePowerEstimator
from repro.kg.elements import ElementKind
from repro.kg.statistics import entity_pagerank
from repro.utils.rng import ensure_rng


@dataclass
class SelectionState:
    """Everything a strategy may need to rank the unlabelled pool."""

    pool: ElementPairPool
    unlabelled: list[ElementPair]
    probabilities: dict[ElementPair, float]
    model: JointAlignmentModel
    graph: AlignmentGraph | None = None
    estimator: InferencePowerEstimator | None = None
    rng: np.random.Generator = field(default_factory=np.random.default_rng)


class SelectionStrategy:
    """Base class: rank the unlabelled pool and return the best batch."""

    name = "base"
    requires_inference = False

    def select(self, state: SelectionState, batch_size: int) -> list[ElementPair]:
        raise NotImplementedError

    @staticmethod
    def _top_by_score(
        pairs: Sequence[ElementPair], scores: Sequence[float], batch_size: int
    ) -> list[ElementPair]:
        order = np.argsort(-np.asarray(scores, dtype=float))
        return [pairs[int(i)] for i in order[:batch_size]]


class RandomStrategy(SelectionStrategy):
    """Uniformly random unlabelled pairs (the training-set construction default)."""

    name = "random"

    def select(self, state: SelectionState, batch_size: int) -> list[ElementPair]:
        if not state.unlabelled:
            return []
        count = min(batch_size, len(state.unlabelled))
        chosen = state.rng.choice(len(state.unlabelled), size=count, replace=False)
        return [state.unlabelled[int(i)] for i in chosen]


class DegreeStrategy(SelectionStrategy):
    """Pairs whose elements have the largest combined degree."""

    name = "degree"

    def select(self, state: SelectionState, batch_size: int) -> list[ElementPair]:
        kg1, kg2 = state.model.kg1, state.model.kg2
        scores = []
        for pair in state.unlabelled:
            if pair.kind is ElementKind.ENTITY:
                score = kg1.entity_degree(pair.left) + kg2.entity_degree(pair.right)
            elif pair.kind is ElementKind.RELATION:
                score = len(kg1.triples_of_relation(pair.left)) + len(kg2.triples_of_relation(pair.right))
            else:
                score = len(kg1.entities_of_class(pair.left)) + len(kg2.entities_of_class(pair.right))
            scores.append(float(score))
        return self._top_by_score(state.unlabelled, scores, batch_size)


class PageRankStrategy(SelectionStrategy):
    """Pairs whose entities have the highest PageRank (schema pairs by usage)."""

    name = "pagerank"

    def __init__(self) -> None:
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _scores(self, state: SelectionState) -> tuple[np.ndarray, np.ndarray]:
        key = id(state.model)
        if key not in self._cache:
            self._cache[key] = (
                entity_pagerank(state.model.kg1),
                entity_pagerank(state.model.kg2),
            )
        return self._cache[key]

    def select(self, state: SelectionState, batch_size: int) -> list[ElementPair]:
        pr1, pr2 = self._scores(state)
        kg1, kg2 = state.model.kg1, state.model.kg2
        scores = []
        for pair in state.unlabelled:
            if pair.kind is ElementKind.ENTITY:
                score = pr1[pair.left] + pr2[pair.right]
            elif pair.kind is ElementKind.RELATION:
                score = (len(kg1.triples_of_relation(pair.left)) + len(kg2.triples_of_relation(pair.right))) / max(
                    kg1.num_triples + kg2.num_triples, 1
                )
            else:
                score = (len(kg1.entities_of_class(pair.left)) + len(kg2.entities_of_class(pair.right))) / max(
                    kg1.num_entities + kg2.num_entities, 1
                )
            scores.append(float(score))
        return self._top_by_score(state.unlabelled, scores, batch_size)


def _entropy(probability: float) -> float:
    p = min(max(probability, 1e-9), 1.0 - 1e-9)
    return float(-p * np.log(p) - (1.0 - p) * np.log(1.0 - p))


class UncertaintyStrategy(SelectionStrategy):
    """Pairs with the most uncertain calibrated match probability."""

    name = "uncertainty"

    def select(self, state: SelectionState, batch_size: int) -> list[ElementPair]:
        scores = [_entropy(state.probabilities.get(pair, 0.0)) for pair in state.unlabelled]
        return self._top_by_score(state.unlabelled, scores, batch_size)


class ActiveEAStrategy(SelectionStrategy):
    """ActiveEA-style structural uncertainty: own entropy plus neighbours' entropy.

    The original method scores *entities* by their uncertainty and the expected
    uncertainty reduction over their KG neighbours; here the same idea is
    applied to entity pairs through the KG1 neighbourhood.
    """

    name = "activeea"
    neighbour_weight = 0.5

    def select(self, state: SelectionState, batch_size: int) -> list[ElementPair]:
        kg1 = state.model.kg1
        entropy = {pair: _entropy(state.probabilities.get(pair, 0.0)) for pair in state.unlabelled}
        by_left: dict[int, list[ElementPair]] = {}
        for pair in state.unlabelled:
            if pair.kind is ElementKind.ENTITY:
                by_left.setdefault(pair.left, []).append(pair)
        scores = []
        for pair in state.unlabelled:
            score = entropy[pair]
            if pair.kind is ElementKind.ENTITY:
                neighbour_pairs = [
                    q for n in kg1.neighbors(pair.left) for q in by_left.get(n, [])
                ]
                if neighbour_pairs:
                    score += self.neighbour_weight * float(
                        np.mean([entropy[q] for q in neighbour_pairs])
                    )
            scores.append(score)
        return self._top_by_score(state.unlabelled, scores, batch_size)


class DAAKGStrategy(SelectionStrategy):
    """The paper's batch selection: maximise expected overall inference power."""

    name = "daakg"
    requires_inference = True

    def __init__(
        self,
        algorithm: str = "greedy",
        selection_config: GreedySelectionConfig | None = None,
        partition_config: PartitionSelectionConfig | None = None,
    ) -> None:
        if algorithm not in ("greedy", "partition"):
            raise ValueError("algorithm must be 'greedy' or 'partition'")
        self.algorithm = algorithm
        self.selection_config = selection_config or GreedySelectionConfig()
        self.partition_config = partition_config or PartitionSelectionConfig()

    def select(self, state: SelectionState, batch_size: int) -> list[ElementPair]:
        if state.estimator is None or state.graph is None:
            raise RuntimeError("DAAKGStrategy needs the alignment graph and power estimator")
        from dataclasses import replace

        config = replace(self.selection_config, batch_size=batch_size)
        if self.algorithm == "partition":
            return partition_select(
                state.unlabelled,
                state.probabilities,
                state.graph,
                state.estimator,
                selection_config=config,
                partition_config=self.partition_config,
                rng=state.rng,
            )
        return greedy_select(
            state.unlabelled,
            state.probabilities,
            state.estimator.reachable_power,
            config,
            rng=state.rng,
        )


STRATEGY_REGISTRY = {
    "random": RandomStrategy,
    "degree": DegreeStrategy,
    "pagerank": PageRankStrategy,
    "uncertainty": UncertaintyStrategy,
    "activeea": ActiveEAStrategy,
    "daakg": DAAKGStrategy,
}


def create_strategy(name: str, **kwargs) -> SelectionStrategy:
    """Instantiate a registered strategy by name (case-insensitive)."""
    key = name.lower()
    if key not in STRATEGY_REGISTRY:
        raise KeyError(f"unknown strategy {name!r}; available: {sorted(STRATEGY_REGISTRY)}")
    return STRATEGY_REGISTRY[key](**kwargs)
