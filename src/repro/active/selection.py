"""Greedy element pair selection (Algorithm 1).

The objective is the expected overall inference power of the selected batch
(Eq. 28).  The expectation over which selected pairs turn out to be matches is
approximated with Monte-Carlo samples of the match indicator vector drawn from
the calibrated alignment probabilities; because the objective is increasing
and sub-modular (Theorem 6.1), greedy selection keeps the
``(1 − 1/e)``-approximation guarantee up to the sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping


from repro.inference.pairs import ElementPair
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, ensure_rng

logger = get_logger(__name__)

# A "reach function" maps a candidate pair to {inferable pair: inference power}.
ReachFunction = Callable[[ElementPair], Mapping[ElementPair, float]]


@dataclass(frozen=True)
class GreedySelectionConfig:
    """Parameters of the greedy batch selection."""

    batch_size: int = 100
    power_threshold: float = 0.8
    num_samples: int = 8
    candidate_limit: int | None = 2000
    base_gain: float = 1e-3

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if not 0.0 <= self.power_threshold <= 1.0:
            raise ValueError("power_threshold must be in [0, 1]")


def greedy_select(
    candidates: list[ElementPair],
    probabilities: dict[ElementPair, float],
    reach: ReachFunction,
    config: GreedySelectionConfig | None = None,
    rng: RandomState = None,
) -> list[ElementPair]:
    """Select a batch maximising expected overall inference power (Algorithm 1).

    Parameters
    ----------
    candidates:
        Unlabelled pool pairs eligible for selection.
    probabilities:
        Calibrated match probabilities ``Pr[y*(q) = 1]`` per pair (Eq. 12).
    reach:
        Function returning ``I(q' | q)`` for the pairs each candidate can infer
        (typically ``InferencePowerEstimator.reachable_power``).
    """
    config = config or GreedySelectionConfig()
    rng = ensure_rng(rng)
    if not candidates:
        return []

    ranked = sorted(candidates, key=lambda q: -probabilities.get(q, 0.0))
    if config.candidate_limit is not None and len(ranked) > config.candidate_limit:
        ranked = ranked[: config.candidate_limit]

    # Pre-compute each candidate's reachable set, thresholded at kappa.
    reachable: dict[ElementPair, dict[ElementPair, float]] = {}
    for candidate in ranked:
        powers = {
            target: value
            for target, value in reach(candidate).items()
            if value > config.power_threshold
        }
        reachable[candidate] = powers

    # Monte-Carlo state: for each sample, the current best power per inferable pair.
    current_power: list[dict[ElementPair, float]] = [dict() for _ in range(config.num_samples)]
    selected: list[ElementPair] = []
    remaining = set(ranked)

    def gain(candidate: ElementPair) -> float:
        probability = probabilities.get(candidate, 0.0)
        powers = reachable[candidate]
        # The base gain keeps the objective strictly increasing so that ties
        # are broken by probability, mirroring the uncertainty fallback.
        if not powers:
            return probability * config.base_gain
        total = 0.0
        for sample in current_power:
            for target, value in powers.items():
                best = sample.get(target, 0.0)
                if value > best:
                    total += value - best
        return probability * (total / config.num_samples + config.base_gain)

    batch_size = min(config.batch_size, len(ranked))
    for _ in range(batch_size):
        best_candidate = None
        best_gain = -1.0
        for candidate in remaining:
            g = gain(candidate)
            if g > best_gain:
                best_gain = g
                best_candidate = candidate
        if best_candidate is None:
            break
        selected.append(best_candidate)
        remaining.discard(best_candidate)
        probability = probabilities.get(best_candidate, 0.0)
        for sample in current_power:
            if rng.random() < probability:
                for target, value in reachable[best_candidate].items():
                    if value > sample.get(target, 0.0):
                        sample[target] = value
    logger.debug("greedy selection picked %d pairs", len(selected))
    return selected


def expected_overall_power(
    selected: list[ElementPair],
    probabilities: dict[ElementPair, float],
    reach: ReachFunction,
    power_threshold: float = 0.8,
    num_samples: int = 16,
    rng: RandomState = None,
) -> float:
    """Monte-Carlo estimate of ``E[I(P | Q+)]`` for a selected batch (Eq. 27).

    Used by the Figure 7 benchmark to compare the quality of Algorithm 1 and
    Algorithm 2 solutions.
    """
    rng = ensure_rng(rng)
    reachable = {q: reach(q) for q in selected}
    total = 0.0
    for _ in range(num_samples):
        best: dict[ElementPair, float] = {}
        for q in selected:
            if rng.random() >= probabilities.get(q, 0.0):
                continue
            for target, value in reachable[q].items():
                if value > best.get(target, 0.0):
                    best[target] = value
        total += sum(value for value in best.values() if value > power_threshold)
    return total / num_samples
