"""Graph partitioning-based selection (Algorithm 2).

Computing the reachable set of every candidate with bounded-depth path search
(the brute-force step of Algorithm 1) dominates the selection cost.  The
partitioning algorithm first groups element pairs so that, for every pair, at
most a ``1 − ρ`` fraction of its outgoing edge power stays inside its own
group; the estimated inference power is then computed on the much smaller
quotient graph (partitions as super-nodes), and the greedy selection of
Algorithm 1 runs with that estimate.  Theorem 6.2 gives the resulting
``ρ^μ (1 − 1/e)`` approximation guarantee.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.active.selection import GreedySelectionConfig, greedy_select
from repro.inference.alignment_graph import AlignmentGraph
from repro.inference.pairs import ElementPair
from repro.inference.power import InferencePowerEstimator
from repro.kg.elements import ElementKind
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState

logger = get_logger(__name__)


@dataclass(frozen=True)
class PartitionSelectionConfig:
    """Parameters of Algorithm 2."""

    rho: float = 0.9
    max_partitions: int = 200

    def __post_init__(self) -> None:
        if not 0.0 < self.rho <= 1.0:
            raise ValueError("rho must be in (0, 1]")
        if self.max_partitions < 1:
            raise ValueError("max_partitions must be >= 1")


def partition_pool(
    graph: AlignmentGraph,
    estimator: InferencePowerEstimator,
    config: PartitionSelectionConfig | None = None,
) -> dict[ElementPair, int]:
    """Split entity pairs into groups following Algorithm 2's refinement loop.

    Returns a mapping from entity pair to partition id.  Pairs with no edges
    keep partition 0.
    """
    config = config or PartitionSelectionConfig()
    edge_power: dict[tuple[ElementPair, ElementPair], float] = {}
    edge_relation: dict[tuple[ElementPair, ElementPair], ElementPair] = {}
    for edge in graph.edges:
        power = estimator.edge_power(edge)
        key = (edge.source, edge.target)
        if power > edge_power.get(key, 0.0):
            edge_power[key] = power
            edge_relation[key] = edge.relation

    partition_of: dict[ElementPair, int] = {pair: 0 for pair in graph.entity_pairs}
    num_partitions = 1
    changed = True
    while changed and num_partitions < config.max_partitions:
        changed = False
        members: dict[int, list[ElementPair]] = defaultdict(list)
        for pair, pid in partition_of.items():
            members[pid].append(pair)
        for pid, pairs in list(members.items()):
            if len(pairs) <= 1:
                continue
            pair_set = set(pairs)
            # find the minimum outer-power ratio over members of this partition
            worst_ratio = 1.0
            for pair in pairs:
                inner = outer = 0.0
                for edge in graph.out_edges.get(pair, []):
                    power = edge_power.get((edge.source, edge.target), 0.0)
                    if edge.target in pair_set:
                        inner += power
                    else:
                        outer += power
                total = inner + outer
                if total > 0:
                    worst_ratio = min(worst_ratio, outer / total)
            if worst_ratio >= config.rho:
                continue
            # split on the relation pair carrying the most intra-partition power
            relation_power: dict[ElementPair, float] = defaultdict(float)
            for pair in pairs:
                for edge in graph.out_edges.get(pair, []):
                    if edge.target in pair_set:
                        relation_power[edge.relation] += edge_power.get(
                            (edge.source, edge.target), 0.0
                        )
            if not relation_power:
                continue
            split_relation = max(relation_power.items(), key=lambda item: item[1])[0]
            moved = {
                edge.source
                for pair in pairs
                for edge in graph.out_edges.get(pair, [])
                if edge.relation == split_relation and edge.target in pair_set
            }
            if not moved or len(moved) == len(pairs):
                continue
            for pair in moved:
                partition_of[pair] = num_partitions
            num_partitions += 1
            changed = True
            if num_partitions >= config.max_partitions:
                break
    logger.debug("partitioned %d entity pairs into %d groups", len(partition_of), num_partitions)
    return partition_of


def _quotient_reach(
    graph: AlignmentGraph,
    estimator: InferencePowerEstimator,
    partition_of: dict[ElementPair, int],
    max_hops: int,
) -> dict[int, dict[int, float]]:
    """Maximum edge power between partitions (the quotient graph)."""
    quotient: dict[int, dict[int, float]] = defaultdict(dict)
    for edge in graph.edges:
        src = partition_of.get(edge.source)
        dst = partition_of.get(edge.target)
        if src is None or dst is None or src == dst:
            continue
        power = estimator.edge_power(edge)
        if power > quotient[src].get(dst, 0.0):
            quotient[src][dst] = power
    return quotient


def partition_select(
    candidates: list[ElementPair],
    probabilities: dict[ElementPair, float],
    graph: AlignmentGraph,
    estimator: InferencePowerEstimator,
    selection_config: GreedySelectionConfig | None = None,
    partition_config: PartitionSelectionConfig | None = None,
    rng: RandomState = None,
) -> list[ElementPair]:
    """Algorithm 2: partition the pool, then run the greedy selection on estimates.

    The estimated reach of a candidate assigns each reachable partition the
    best path power on the quotient graph, and every member of that partition
    inherits it; schema pairs keep their exact (cheap) gradient-based reach.
    """
    selection_config = selection_config or GreedySelectionConfig()
    partition_config = partition_config or PartitionSelectionConfig()
    partition_of = partition_pool(graph, estimator, partition_config)
    quotient = _quotient_reach(graph, estimator, partition_of, estimator.config.max_hops)
    members: dict[int, list[ElementPair]] = defaultdict(list)
    for pair, pid in partition_of.items():
        members[pid].append(pair)

    def estimated_reach(candidate: ElementPair) -> dict[ElementPair, float]:
        if candidate.kind is not ElementKind.ENTITY:
            return estimator.reachable_power(candidate)
        # first hop: actual edges out of the candidate
        partition_power: dict[int, float] = {}
        for edge in graph.out_edges.get(candidate, []):
            pid = partition_of.get(edge.target)
            if pid is None:
                continue
            power = estimator.edge_power(edge)
            if power > partition_power.get(pid, 0.0):
                partition_power[pid] = power
        # further hops on the quotient graph (multiplicative attenuation)
        frontier = dict(partition_power)
        for _ in range(estimator.config.max_hops - 1):
            next_frontier: dict[int, float] = {}
            for pid, power in frontier.items():
                for neighbor, edge_power in quotient.get(pid, {}).items():
                    value = power * edge_power
                    if value > partition_power.get(neighbor, 0.0) and value > estimator.config.min_power:
                        partition_power[neighbor] = value
                        next_frontier[neighbor] = value
            if not next_frontier:
                break
            frontier = next_frontier
        reach: dict[ElementPair, float] = {}
        for pid, power in partition_power.items():
            for member in members.get(pid, []):
                if member != candidate:
                    reach[member] = power
        # schema pairs are cheap to reach exactly
        for target, value in estimator.entity_to_class_power(candidate).items():
            reach[target] = max(reach.get(target, 0.0), value)
        for target, value in estimator.entity_to_relation_power(candidate).items():
            reach[target] = max(reach.get(target, 0.0), value)
        return reach

    return greedy_select(candidates, probabilities, estimated_reach, selection_config, rng)
