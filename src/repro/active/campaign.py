"""Partition-parallel alignment campaigns.

A *campaign* is the full DAAKG lifecycle for one aligned KG pair: embedding
pre-training, joint alignment training, and the batch active-learning loop.
The monolithic pipeline runs all of it single-process over the entire pair;
:class:`PartitionedCampaign` instead cuts the pair into ρ-bounded
cross-linked sub-pairs (:func:`repro.kg.partition.partition_pair`), hands
one self-contained :class:`~repro.runtime.executor.PieceSpec` per partition
to a :class:`~repro.runtime.executor.CampaignExecutor` (serial, thread or
GIL-breaking process backend — all running the same
:func:`~repro.runtime.executor.run_piece_spec`), folds each piece's result
checkpoint back bit-exactly, and merges the per-partition similarity states
into one global :class:`~repro.runtime.merge.MergedSimilarityState` that
answers ``top_k`` / ``evaluate`` / ``mine`` queries over the original index
spaces without ever materialising the global matrix.

Determinism contract (same as ``ShardedBackend``): results are identical
for **any** executor backend and **any** worker count.  Each partition's
pipeline draws from its own RNG (seeded by ``(campaign seed, partition
index)``), runs from a spec that shares no mutable state with its siblings,
and the merge folds pieces in partition order — so scheduling (and even the
process boundary) can change wall-clock, never results.  With a single
partition the campaign *is* the monolithic pipeline, bit for bit: the piece
is the original pair object and the seed is the configured seed.

Failure contract: a piece that crashes (in-process exception or a worker
process dying) becomes a *failed* piece, not a corrupted campaign —
:meth:`PartitionedCampaign.run` folds every completed piece, then raises
:class:`CampaignExecutionError`; checkpoints taken afterwards stay loadable
and the next ``run()`` re-executes only the unfinished pieces.

Configuration: ``DAAKGConfig.partition`` carries the knobs;
``REPRO_PARTITION_COUNT`` / ``REPRO_PARTITION_WORKERS`` /
``REPRO_PARTITION_RHO`` / ``REPRO_CAMPAIGN_EXECUTOR`` override them per
process (environment wins), which is how CI sweeps partition/worker counts
and executor backends without touching configs.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.active.loop import ActiveLearningConfig, ActiveLearningLoop, ActiveLearningRecord
from repro.alignment.evaluation import AlignmentScores, evaluate_alignment_from_engine
from repro.alignment.similarity import DEFAULT_BLOCK_SIZE
from repro.kg.elements import ElementKind
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair
from repro.kg.partition import (
    KGPairPartition,
    PartitionConfig,
    partition_pair,
    resolve_partition_config,
)
import repro.obs as obs
from repro.runtime.executor import (
    PieceOutcome,
    PieceSpec,
    create_executor,
    effective_executor_name,
    load_piece_obs,
)
from repro.runtime.merge import MergedSimilarityState
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle with core
    from repro.core.config import DAAKGConfig
    from repro.core.daakg import DAAKG
    from repro.updates.delta import KGDelta
    from repro.updates.routing import DeltaRouting

logger = get_logger(__name__)

_KINDS = (ElementKind.ENTITY, ElementKind.RELATION, ElementKind.CLASS)

# Multiplier separating per-partition seed streams.  Any fixed odd constant
# works; what matters is that the derivation depends only on (campaign seed,
# partition index), never on scheduling.
_SEED_STRIDE = 1_000_003


def piece_seed(base_seed: int, index: int, num_partitions: int) -> int:
    """The seed of partition ``index``'s pipeline.

    A single-partition campaign uses the campaign seed itself so it is
    bit-exact with the monolithic pipeline; multi-partition campaigns give
    each piece its own deterministic stream.
    """
    if num_partitions == 1:
        return base_seed
    return (base_seed * _SEED_STRIDE + index + 1) % (2**31 - 1)


@dataclass
class PartitionRunResult:
    """Outcome of one partition's campaign run.

    ``status`` is ``"completed"`` (the piece ran and its result was folded
    in), ``"skipped"`` (the piece had already exhausted its batch budget, so
    nothing was scheduled), or ``"failed"`` (the piece crashed; ``error``
    holds the reason and the piece keeps its pre-run state).
    """

    index: int
    seconds: float
    records: list[ActiveLearningRecord] = field(default_factory=list)
    status: str = "completed"
    error: str | None = None


@dataclass
class CampaignResult:
    """Outcome of a full (possibly resumed) campaign run."""

    partition_results: list[PartitionRunResult]
    seconds: float
    executor: str = "serial"

    @property
    def total_labels(self) -> int:
        return sum(
            r.records[-1].labels_used for r in self.partition_results if r.records
        )

    @property
    def failed(self) -> list[PartitionRunResult]:
        return [r for r in self.partition_results if r.status == "failed"]


@dataclass
class UpdateReport:
    """Outcome of one :meth:`PartitionedCampaign.apply_update` call."""

    touched: tuple[int, ...]
    untouched: tuple[int, ...]
    routing: "DeltaRouting"
    delta_summary: dict
    result: CampaignResult | None
    seconds: float
    route_seconds: float


class CampaignExecutionError(RuntimeError):
    """One or more pieces failed; the campaign itself stays resumable.

    Raised by :meth:`PartitionedCampaign.run` *after* every completed
    piece's result has been folded in, so the campaign object (and any
    checkpoint taken from it) keeps all successful work.  ``result`` holds
    the full per-piece breakdown; calling ``run()`` again re-executes only
    the failed pieces.
    """

    def __init__(self, result: CampaignResult) -> None:
        self.result = result
        failed = result.failed
        detail = "; ".join(
            f"piece {r.index} after {r.seconds:.2f}s: {r.error}" for r in failed
        )
        super().__init__(
            f"{len(failed)} of {len(result.partition_results)} campaign pieces "
            f"failed on the {result.executor!r} executor ({detail}); completed "
            "pieces kept their results — run() again (or save()/load() first) "
            "re-executes only the failed pieces"
        )


def _augmented_kgs(
    pair: AlignedKGPair, config: "DAAKGConfig"
) -> tuple[KnowledgeGraph, KnowledgeGraph]:
    """The working-space KGs a ``DAAKG`` built on ``pair`` would train over.

    Delegates to :func:`repro.core.daakg.augment_working_kgs` — the same
    function ``DAAKG._build_models`` uses — so the merge layer's global index
    spaces can never drift from the pipelines' model vocabularies.  Original
    element indices are preserved (augmentation only appends), so gold id
    arrays computed on ``pair`` stay valid in the working space.
    """
    from repro.core.daakg import augment_working_kgs  # circular at module level

    kg1, kg2, _ = augment_working_kgs(pair, config)
    return kg1, kg2


class PartitionedCampaign:
    """Orchestrates per-partition DAAKG campaigns and merges their states.

    The campaign itself only *orchestrates*: it cuts the pair, derives one
    self-contained :class:`PieceSpec` per partition, hands the specs to a
    :class:`CampaignExecutor` backend (serial / thread / process — selected
    via ``partition.executor``, overridable with ``REPRO_CAMPAIGN_EXECUTOR``)
    and folds the per-piece result checkpoints back in.  All training runs
    inside :func:`repro.runtime.executor.run_piece_spec`, whichever backend
    hosts it.

    Parameters
    ----------
    pair:
        The aligned KG pair (with its entity splits already drawn).
    config:
        The pipeline configuration shared by every partition; its
        ``partition`` field supplies the partitioning knobs unless
        ``partition`` is given explicitly.  Environment overrides
        (``REPRO_PARTITION_*``) are applied on top either way.
    strategy:
        Registry name of the selection strategy (each partition gets its own
        instance).
    active_config:
        Active-loop budget settings shared by every partition (defaults to
        the pipeline config's pool/inference/calibration settings).
    """

    def __init__(
        self,
        pair: AlignedKGPair,
        config: "DAAKGConfig | None" = None,
        strategy: str = "daakg",
        active_config: ActiveLearningConfig | None = None,
        partition: PartitionConfig | None = None,
        resolve_env: bool = True,
        partition_state: KGPairPartition | None = None,
    ) -> None:
        from repro.core.config import DAAKGConfig  # circular at module level

        self.dataset = pair
        self.config = config or DAAKGConfig()
        self.strategy = strategy
        self.active_config = active_config
        configured = partition if partition is not None else self.config.partition
        # ``resolve_env=False`` is the campaign-restore path: a checkpoint's
        # partitioning must never be resharded by this process's environment.
        self.partition_config = (
            resolve_partition_config(configured) if resolve_env else configured
        )
        # ``partition_state`` is the incremental-restore path: a partition
        # whose piece pairs were evolved by deltas cannot be reproduced by
        # re-running the partitioner, so the restored pieces are adopted
        # as-is instead.
        self.partition: KGPairPartition = (
            partition_state
            if partition_state is not None
            else partition_pair(pair, self.partition_config)
        )
        # True once a delta has evolved the pieces away from what the
        # partitioner would build (persistence switches restore paths on it)
        self.incremental = partition_state is not None
        # touched pieces stash their pre-update pipelines here until the
        # retrain consumes them as warm starts
        self._warm: dict[int, "DAAKG"] = {}
        n = self.partition.num_partitions
        self.pipelines: list["DAAKG | None"] = [None] * n
        self.loops: list[ActiveLearningLoop | None] = [None] * n
        # per-piece encoded dataset arrays, built once (specs reuse them)
        self._piece_arrays: dict[int, dict[str, np.ndarray]] = {}
        # merged-state cache, keyed on every piece engine's version token so
        # training through ANY path (run(), or a piece's public pipeline()/
        # loop() accessors) invalidates it
        self._merged: tuple[tuple, MergedSimilarityState] | None = None
        # per-piece obs payloads ({"snapshot", "events"}) from the most
        # recent run() — populated only while repro.obs is enabled
        self.piece_obs: dict[int, dict] = {}

    # ------------------------------------------------------------------ build
    @property
    def num_partitions(self) -> int:
        return self.partition.num_partitions

    def _piece_config(self, index: int) -> "DAAKGConfig":
        # each piece runs a plain single-partition pipeline on its own seed
        return replace(
            self.config,
            seed=piece_seed(self.config.seed, index, self.num_partitions),
            partition=PartitionConfig(),
        )

    def pipeline(self, index: int) -> "DAAKG":
        """The partition's pipeline, built on first use."""
        if self.pipelines[index] is None:
            from repro.core.daakg import DAAKG  # circular at module level

            self.pipelines[index] = DAAKG(
                self.partition.pieces[index].pair, self._piece_config(index)
            )
        return self.pipelines[index]

    def loop(self, index: int) -> ActiveLearningLoop:
        """The partition's active-learning loop, built on first use."""
        if self.loops[index] is None:
            self.loops[index] = self.pipeline(index).active_learning(
                self.strategy, self.active_config
            )
        return self.loops[index]

    # -------------------------------------------------------------------- run
    @property
    def executor_name(self) -> str:
        """The concrete executor backend ``run()`` will use on this machine.

        ``partition_config.executor`` (after environment resolution) mapped
        through :func:`repro.runtime.executor.effective_executor_name`:
        ``"auto"`` becomes ``"process"`` when the campaign has more than one
        piece, more than one worker and more than one core.
        """
        return effective_executor_name(
            self.partition_config.executor,
            workers=self.partition_config.workers,
            num_partitions=self.num_partitions,
        )

    def _piece_complete(self, index: int) -> bool:
        """True when the piece has nothing left to run (fit + full budget)."""
        pipeline = self.pipelines[index]
        loop = self.loops[index]
        return (
            pipeline is not None
            and pipeline.is_fitted
            and loop is not None
            and loop.batches_done >= loop.config.num_batches
        )

    def piece_specs(
        self,
        directory: str | Path,
        max_batches: int | None = None,
        indices: list[int] | None = None,
    ) -> list[PieceSpec]:
        """Self-contained, picklable specs for the given (default: all) pieces.

        Each spec carries everything its runner needs: a started piece is
        snapshotted into a standard checkpoint under ``directory`` (so the
        runner resumes it bit-exactly, wherever it runs), an unstarted piece
        carries its encoded dataset arrays and seeded config JSON.  Result
        checkpoints land in per-piece ``piece_NNNN_out`` directories under
        ``directory``.  This is the whole campaign↔executor interface —
        shipping these specs to another machine (plus a shared filesystem)
        is all a multi-machine fleet needs.
        """
        from repro.core.config import config_to_dict  # circular at module level
        from repro.persistence.checkpoint import save_checkpoint  # circular at module level

        directory = Path(directory)
        active_config = (
            config_to_dict(self.active_config) if self.active_config is not None else None
        )
        specs = []
        for index in indices if indices is not None else range(self.num_partitions):
            checkpoint_dir: str | None = None
            warm_start_dir: str | None = None
            dataset_arrays = None
            if self.pipelines[index] is not None:
                path = directory / f"piece_{index:04d}_in"
                save_checkpoint(path, self.pipelines[index], loop=self.loops[index])
                checkpoint_dir = str(path)
            else:
                dataset_arrays = self._piece_dataset_arrays(index)
                if index in self._warm:
                    # the piece's pre-update pipeline: the runner transplants
                    # its parameters by name into the fresh pipeline it
                    # builds on the updated pair (see repro.updates.warm_start)
                    path = directory / f"piece_{index:04d}_warm"
                    save_checkpoint(path, self._warm[index])
                    warm_start_dir = str(path)
            specs.append(
                PieceSpec(
                    index=index,
                    config_json=self._piece_config(index).to_json(),
                    strategy=self.strategy,
                    active_config=active_config,
                    max_batches=max_batches,
                    dataset_arrays=dataset_arrays,
                    checkpoint_dir=checkpoint_dir,
                    warm_start_dir=warm_start_dir,
                    output_dir=str(directory / f"piece_{index:04d}_out"),
                    obs=obs.enabled(),
                )
            )
        return specs

    def _piece_dataset_arrays(self, index: int) -> dict[str, np.ndarray]:
        """The piece pair encoded once (specs for unstarted pieces reuse it)."""
        from repro.persistence.codec import pair_to_arrays  # circular at module level

        if index not in self._piece_arrays:
            arrays: dict[str, np.ndarray] = {}
            pair_to_arrays(self.partition.pieces[index].pair, "dataset", arrays)
            self._piece_arrays[index] = arrays
        return self._piece_arrays[index]

    def _fold_outcome(self, outcome: PieceOutcome) -> None:
        """Adopt a completed piece's result checkpoint (bit-exact restore)."""
        from repro.persistence.checkpoint import load_checkpoint, restore_loop

        loop = restore_loop(load_checkpoint(outcome.output_dir))
        self.loops[outcome.index] = loop
        self.pipelines[outcome.index] = loop.daakg
        self._warm.pop(outcome.index, None)

    def _fold_piece_obs(self, specs: list[PieceSpec]) -> None:
        """Merge every piece's serialised obs state into the current scope.

        Counter and histogram merges are exact (fixed buckets), so the
        campaign-level snapshot equals the sum of the per-piece snapshots no
        matter which executor backend produced them.  Per-piece payloads are
        also kept on ``self.piece_obs`` for inspection.
        """
        if not obs.enabled():
            return
        for spec in specs:
            payload = load_piece_obs(spec.output_dir)
            if payload is None:
                continue
            self.piece_obs[spec.index] = payload
            obs.merge_snapshot(payload.get("snapshot", {}))
            obs.extend_events(payload.get("events", []))

    def run(self, max_batches: int | None = None) -> CampaignResult:
        """Fit + run the active loop of every unfinished partition.

        Pieces execute on the configured :class:`CampaignExecutor` backend
        (``executor_name``); every backend runs the same
        :func:`~repro.runtime.executor.run_piece_spec` and every result is
        folded back through the bit-exact checkpoint restore path, so the
        backend and worker count can never change results — only wall-clock.
        ``max_batches`` caps how many *new* batches each partition processes
        this call (resume semantics identical to ``ActiveLearningLoop.run``).
        Pieces that already exhausted their batch budget are skipped; failed
        pieces raise :class:`CampaignExecutionError` *after* all completed
        pieces have been folded in, keeping the campaign resumable.
        """
        start = time.perf_counter()
        executor_name = self.executor_name
        outcomes: dict[int, PieceOutcome] = {}
        pending = [
            index
            for index in range(self.num_partitions)
            if not self._piece_complete(index)
        ]
        scratch = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
        try:
            if pending:
                with obs.span(
                    "campaign.run", executor=executor_name, pieces=len(pending)
                ):
                    specs = self.piece_specs(scratch, max_batches, indices=pending)
                    executor = create_executor(
                        executor_name, workers=self.partition_config.workers
                    )
                    for spec in specs:
                        obs.event(
                            "executor.piece.queued",
                            piece=spec.index,
                            executor=executor_name,
                        )
                    logger.info(
                        "running %d/%d pieces on the %s executor (%d workers)",
                        len(pending),
                        self.num_partitions,
                        executor_name,
                        executor.workers,
                    )
                    for outcome in executor.execute(specs):
                        outcomes[outcome.index] = outcome
                        if outcome.completed:
                            self._fold_outcome(outcome)
                    # fold piece telemetry before the scratch dir disappears:
                    # the per-piece obs payloads cross the process boundary as
                    # files, exactly like the result checkpoints above
                    self._fold_piece_obs(specs)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

        results = []
        for index in range(self.num_partitions):
            outcome = outcomes.get(index)
            loop = self.loops[index]
            records = list(loop.records) if loop is not None else []
            if outcome is None:
                results.append(
                    PartitionRunResult(
                        index=index, seconds=0.0, records=records, status="skipped"
                    )
                )
            else:
                results.append(
                    PartitionRunResult(
                        index=index,
                        seconds=outcome.seconds,
                        records=records,
                        status=outcome.status,
                        error=outcome.error,
                    )
                )
        result = CampaignResult(
            partition_results=results,
            seconds=time.perf_counter() - start,
            executor=executor_name,
        )
        if result.failed:
            raise CampaignExecutionError(result)
        return result

    # ---------------------------------------------------------------- updates
    def apply_update(
        self, delta: "KGDelta", max_batches: int | None = None
    ) -> UpdateReport:
        """Ingest one :class:`KGDelta` and warm-start retrain only touched pieces.

        The incremental path end to end:

        1. **route** — :func:`repro.updates.route_delta` restricts the delta
           to the pieces it touches via the partition membership;
        2. **apply** — the campaign dataset and every touched piece's
           sub-pair are replaced by their (pure) delta applications;
           untouched pieces keep their pairs, pipelines, checkpoints and
           cached similarity channels — byte for byte;
        3. **retrain** — touched pieces drop their pipelines, stash them as
           warm starts, and :meth:`run` re-executes exactly those pieces
           (untouched pieces report ``"skipped"``), with every transplant
           happening inside the executor's runner;
        4. **re-merge** — the merged-state cache is invalidated for real,
           but untouched pieces' channel factors stay cached under their
           unchanged engine version tokens, so the next
           :meth:`merged_state` recomputes only the scatter plus the
           retrained pieces' factors.

        A piece failure propagates as :class:`CampaignExecutionError` after
        completed pieces folded in; warm stashes for failed pieces survive
        in memory, so calling :meth:`run` again retries them warm.  An empty
        delta is a no-op.
        """
        from repro.updates.routing import route_delta  # circular at module level

        start = time.perf_counter()
        routing = route_delta(self.partition, delta)
        if not routing.touched:
            return UpdateReport(
                touched=(),
                untouched=tuple(range(self.num_partitions)),
                routing=routing,
                delta_summary=delta.summary(),
                result=None,
                seconds=time.perf_counter() - start,
                route_seconds=time.perf_counter() - start,
            )
        new_dataset = self.dataset.apply_delta(delta)
        for index in routing.touched:
            piece = self.partition.pieces[index]
            if self.num_partitions == 1:
                # the identity piece *is* the dataset (bit-exact monolithic
                # contract), so it adopts the updated pair object directly
                piece.pair = new_dataset
                piece.entity_ids_1 = np.arange(new_dataset.kg1.num_entities, dtype=np.int64)
                piece.entity_ids_2 = np.arange(new_dataset.kg2.num_entities, dtype=np.int64)
                piece.relation_ids_1 = np.arange(new_dataset.kg1.num_relations, dtype=np.int64)
                piece.relation_ids_2 = np.arange(new_dataset.kg2.num_relations, dtype=np.int64)
            else:
                piece_delta = routing.piece_deltas.get(index)
                if piece_delta is not None:
                    old_pair = piece.pair
                    piece.pair = old_pair.apply_delta(piece_delta)
                    # append-only vocabulary: extend the local→global maps
                    # for exactly the appended names (existing ids stay valid
                    # because the global vocabularies are append-only too)
                    for side in (1, 2):
                        old_kg = old_pair.kg1 if side == 1 else old_pair.kg2
                        new_kg = piece.pair.kg1 if side == 1 else piece.pair.kg2
                        global_kg = new_dataset.kg1 if side == 1 else new_dataset.kg2
                        for attr, old_names, new_names, index_map in (
                            (
                                f"entity_ids_{side}",
                                old_kg.entities,
                                new_kg.entities,
                                global_kg.entity_index,
                            ),
                            (
                                f"relation_ids_{side}",
                                old_kg.relations,
                                new_kg.relations,
                                global_kg.relation_index,
                            ),
                        ):
                            appended = new_names[len(old_names):]
                            if appended:
                                ids = np.array(
                                    [index_map[name] for name in appended], dtype=np.int64
                                )
                                setattr(
                                    piece, attr, np.concatenate([getattr(piece, attr), ids])
                                )
            if self.pipelines[index] is not None and self.pipelines[index].is_fitted:
                self._warm[index] = self.pipelines[index]
            self.pipelines[index] = None
            self.loops[index] = None
            self._piece_arrays.pop(index, None)
        self.dataset = new_dataset
        self.partition.source = new_dataset
        self.partition.invalidate_membership()
        self._merged = None
        if self.num_partitions > 1:
            self.incremental = True
        route_seconds = time.perf_counter() - start
        logger.info(
            "delta routed to pieces %s (%d untouched); warm-start retraining",
            list(routing.touched),
            self.num_partitions - len(routing.touched),
        )
        result = self.run(max_batches)
        return UpdateReport(
            touched=routing.touched,
            untouched=tuple(
                index
                for index in range(self.num_partitions)
                if index not in set(routing.touched)
            ),
            routing=routing,
            delta_summary=delta.summary(),
            result=result,
            seconds=time.perf_counter() - start,
            route_seconds=route_seconds,
        )

    # ------------------------------------------------------------------ merge
    def _working_index(self) -> dict[ElementKind, tuple[dict[str, int], dict[str, int]]]:
        kg1, kg2 = _augmented_kgs(self.dataset, self.config)
        return {
            ElementKind.ENTITY: (kg1.entity_index, kg2.entity_index),
            ElementKind.RELATION: (kg1.relation_index, kg2.relation_index),
            ElementKind.CLASS: (kg1.class_index, kg2.class_index),
        }

    @staticmethod
    def _ids(names: list[str], index: dict[str, int]) -> np.ndarray:
        return np.array([index[name] for name in names], dtype=np.int64)

    def _state_fingerprint(self) -> tuple:
        """Every piece engine's version token — changes whenever any trains."""
        return tuple(
            self.pipeline(i).model.similarity.state_token()
            for i in range(self.num_partitions)
        )

    def merged_state(self) -> MergedSimilarityState:
        """Fold every partition's similarity state into one global state.

        Per-piece channel factors are scattered into the original pair's
        (working-space) index spaces; see :mod:`repro.runtime.merge` for the
        semantics.  The merged state is cached against the pieces' engine
        version tokens, so further training through *any* path (another
        :meth:`run`, or a piece's ``pipeline()``/``loop()`` accessors)
        rebuilds it instead of serving stale similarities.
        """
        unfitted = [
            index
            for index in range(self.num_partitions)
            if self.pipelines[index] is None or not self.pipelines[index].is_fitted
        ]
        if unfitted:
            raise CampaignExecutionError(
                CampaignResult(
                    partition_results=[
                        PartitionRunResult(
                            index=index,
                            seconds=0.0,
                            status="failed",
                            error="piece has not been trained (run() the campaign "
                            "first; resume re-runs only unfinished pieces)",
                        )
                        for index in unfitted
                    ],
                    seconds=0.0,
                    executor=self.executor_name,
                )
            )
        fingerprint = self._state_fingerprint()
        if self._merged is not None and self._merged[0] == fingerprint:
            return self._merged[1]
        working = self._working_index()
        shapes = {
            kind: (len(left), len(right)) for kind, (left, right) in working.items()
        }
        contributions: dict[ElementKind, list] = {kind: [] for kind in _KINDS}
        block_size = DEFAULT_BLOCK_SIZE
        for index in range(self.num_partitions):
            pipeline = self.pipeline(index)
            engine = pipeline.model.similarity
            block_size = engine.block_size
            model = pipeline.model
            names = {
                ElementKind.ENTITY: (model.kg1.entities, model.kg2.entities),
                ElementKind.RELATION: (model.kg1.relations, model.kg2.relations),
                ElementKind.CLASS: (model.kg1.classes, model.kg2.classes),
            }
            for kind in _KINDS:
                left_index, right_index = working[kind]
                left_names, right_names = names[kind]
                contributions[kind].append(
                    (
                        engine.channels(kind),
                        self._ids(left_names, left_index),
                        self._ids(right_names, right_index),
                    )
                )
        merged = MergedSimilarityState.from_contributions(
            contributions,
            shapes,
            block_size=block_size,
            workers=self.partition_config.workers,
        )
        # token read after building: channel construction may lazily refresh
        # a piece snapshot, which bumps that piece's version
        self._merged = (self._state_fingerprint(), merged)
        return merged

    # ------------------------------------------------------------- evaluation
    def evaluate(self, test_only: bool = True) -> dict[str, AlignmentScores]:
        """Merged-state metrics over the *original* pair's gold matches.

        Gold id arrays computed on the original pair stay valid in the
        working space (augmentation only appends vocabulary), so this is
        directly comparable to ``DAAKG.evaluate`` on a monolithic run.
        """
        merged = self.merged_state()
        pair = self.dataset
        entity_pairs = (
            pair.entity_match_ids(pair.test_entity_pairs)
            if test_only and pair.test_entity_pairs
            else pair.entity_match_ids()
        )
        return {
            "entity": evaluate_alignment_from_engine(merged, ElementKind.ENTITY, entity_pairs),
            "relation": evaluate_alignment_from_engine(
                merged, ElementKind.RELATION, pair.relation_match_ids()
            ),
            "class": evaluate_alignment_from_engine(
                merged, ElementKind.CLASS, pair.class_match_ids()
            ),
        }

    # ------------------------------------------------------------ persistence
    def save(self, path: str) -> None:
        """Checkpoint the whole campaign (manifest + per-partition dirs)."""
        from repro.persistence.campaign import save_campaign  # circular at module level

        save_campaign(path, self)

    @classmethod
    def load(cls, path: str) -> "PartitionedCampaign":
        """Restore a campaign saved by :meth:`save`; ``run()`` resumes it."""
        from repro.persistence.campaign import load_campaign  # circular at module level

        return load_campaign(path)

    # ------------------------------------------------------------------ stats
    def summary(self) -> dict:
        """Partitioning statistics plus per-piece progress."""
        return {
            "partition": self.partition.summary(),
            "strategy": self.strategy,
            "workers": self.partition_config.workers,
            "executor": self.executor_name,
            "progress": [
                {
                    "index": i,
                    "fitted": self.pipelines[i] is not None and self.pipelines[i].is_fitted,
                    "batches_done": self.loops[i].batches_done if self.loops[i] else 0,
                }
                for i in range(self.num_partitions)
            ],
        }
