"""Partition-parallel alignment campaigns.

A *campaign* is the full DAAKG lifecycle for one aligned KG pair: embedding
pre-training, joint alignment training, and the batch active-learning loop.
The monolithic pipeline runs all of it single-process over the entire pair;
:class:`PartitionedCampaign` instead cuts the pair into ρ-bounded
cross-linked sub-pairs (:func:`repro.kg.partition.partition_pair`), runs one
**independent** campaign per partition on a thread pool, and folds the
per-partition similarity states into one global
:class:`~repro.runtime.merge.MergedSimilarityState` that answers
``top_k`` / ``evaluate`` / ``mine`` queries over the original index spaces
without ever materialising the global matrix.

Determinism contract (same as ``ShardedBackend``): results are identical for
**any** worker count.  Each partition's pipeline draws from its own RNG
(seeded by ``(campaign seed, partition index)``), shares no mutable state
with its siblings (autograd grad-mode is thread-local, the global parameter
version is lock-protected), and the merge folds pieces in partition order —
so thread scheduling can change wall-clock, never results.  With a single
partition the campaign *is* the monolithic pipeline, bit for bit: the piece
is the original pair object and the seed is the configured seed.

Configuration: ``DAAKGConfig.partition`` carries the knobs;
``REPRO_PARTITION_COUNT`` / ``REPRO_PARTITION_WORKERS`` /
``REPRO_PARTITION_RHO`` override them per process (environment wins), which
is how CI sweeps partition/worker counts without touching configs.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.active.loop import ActiveLearningConfig, ActiveLearningLoop, ActiveLearningRecord
from repro.alignment.evaluation import AlignmentScores, evaluate_alignment_from_engine
from repro.alignment.similarity import DEFAULT_BLOCK_SIZE
from repro.kg.elements import ElementKind
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair
from repro.kg.partition import (
    KGPairPartition,
    PartitionConfig,
    partition_pair,
    resolve_partition_config,
)
from repro.runtime.merge import MergedSimilarityState
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle with core
    from repro.core.config import DAAKGConfig
    from repro.core.daakg import DAAKG

logger = get_logger(__name__)

_KINDS = (ElementKind.ENTITY, ElementKind.RELATION, ElementKind.CLASS)

# Multiplier separating per-partition seed streams.  Any fixed odd constant
# works; what matters is that the derivation depends only on (campaign seed,
# partition index), never on scheduling.
_SEED_STRIDE = 1_000_003


def piece_seed(base_seed: int, index: int, num_partitions: int) -> int:
    """The seed of partition ``index``'s pipeline.

    A single-partition campaign uses the campaign seed itself so it is
    bit-exact with the monolithic pipeline; multi-partition campaigns give
    each piece its own deterministic stream.
    """
    if num_partitions == 1:
        return base_seed
    return (base_seed * _SEED_STRIDE + index + 1) % (2**31 - 1)


@dataclass
class PartitionRunResult:
    """Outcome of one partition's campaign run."""

    index: int
    seconds: float
    records: list[ActiveLearningRecord] = field(default_factory=list)


@dataclass
class CampaignResult:
    """Outcome of a full (possibly resumed) campaign run."""

    partition_results: list[PartitionRunResult]
    seconds: float

    @property
    def total_labels(self) -> int:
        return sum(
            r.records[-1].labels_used for r in self.partition_results if r.records
        )


def _augmented_kgs(
    pair: AlignedKGPair, config: "DAAKGConfig"
) -> tuple[KnowledgeGraph, KnowledgeGraph]:
    """The working-space KGs a ``DAAKG`` built on ``pair`` would train over.

    Delegates to :func:`repro.core.daakg.augment_working_kgs` — the same
    function ``DAAKG._build_models`` uses — so the merge layer's global index
    spaces can never drift from the pipelines' model vocabularies.  Original
    element indices are preserved (augmentation only appends), so gold id
    arrays computed on ``pair`` stay valid in the working space.
    """
    from repro.core.daakg import augment_working_kgs  # circular at module level

    kg1, kg2, _ = augment_working_kgs(pair, config)
    return kg1, kg2


class PartitionedCampaign:
    """Runs per-partition DAAKG campaigns in parallel and merges their states.

    Parameters
    ----------
    pair:
        The aligned KG pair (with its entity splits already drawn).
    config:
        The pipeline configuration shared by every partition; its
        ``partition`` field supplies the partitioning knobs unless
        ``partition`` is given explicitly.  Environment overrides
        (``REPRO_PARTITION_*``) are applied on top either way.
    strategy:
        Registry name of the selection strategy (each partition gets its own
        instance).
    active_config:
        Active-loop budget settings shared by every partition (defaults to
        the pipeline config's pool/inference/calibration settings).
    """

    def __init__(
        self,
        pair: AlignedKGPair,
        config: "DAAKGConfig | None" = None,
        strategy: str = "daakg",
        active_config: ActiveLearningConfig | None = None,
        partition: PartitionConfig | None = None,
        resolve_env: bool = True,
    ) -> None:
        from repro.core.config import DAAKGConfig  # circular at module level

        self.dataset = pair
        self.config = config or DAAKGConfig()
        self.strategy = strategy
        self.active_config = active_config
        configured = partition if partition is not None else self.config.partition
        # ``resolve_env=False`` is the campaign-restore path: a checkpoint's
        # partitioning must never be resharded by this process's environment.
        self.partition_config = (
            resolve_partition_config(configured) if resolve_env else configured
        )
        self.partition: KGPairPartition = partition_pair(pair, self.partition_config)
        n = self.partition.num_partitions
        self.pipelines: list["DAAKG | None"] = [None] * n
        self.loops: list[ActiveLearningLoop | None] = [None] * n
        # merged-state cache, keyed on every piece engine's version token so
        # training through ANY path (run(), or a piece's public pipeline()/
        # loop() accessors) invalidates it
        self._merged: tuple[tuple, MergedSimilarityState] | None = None

    # ------------------------------------------------------------------ build
    @property
    def num_partitions(self) -> int:
        return self.partition.num_partitions

    def _piece_config(self, index: int) -> "DAAKGConfig":
        # each piece runs a plain single-partition pipeline on its own seed
        return replace(
            self.config,
            seed=piece_seed(self.config.seed, index, self.num_partitions),
            partition=PartitionConfig(),
        )

    def pipeline(self, index: int) -> "DAAKG":
        """The partition's pipeline, built on first use."""
        if self.pipelines[index] is None:
            from repro.core.daakg import DAAKG  # circular at module level

            self.pipelines[index] = DAAKG(
                self.partition.pieces[index].pair, self._piece_config(index)
            )
        return self.pipelines[index]

    def loop(self, index: int) -> ActiveLearningLoop:
        """The partition's active-learning loop, built on first use."""
        if self.loops[index] is None:
            self.loops[index] = self.pipeline(index).active_learning(
                self.strategy, self.active_config
            )
        return self.loops[index]

    # -------------------------------------------------------------------- run
    def _run_piece(self, index: int, max_batches: int | None) -> PartitionRunResult:
        start = time.perf_counter()
        pipeline = self.pipeline(index)
        if not pipeline.is_fitted:
            pipeline.fit()
        loop = self.loop(index)
        loop.run(max_batches)
        seconds = time.perf_counter() - start
        logger.info(
            "partition %d/%d done in %.2fs (%d records)",
            index + 1,
            self.num_partitions,
            seconds,
            len(loop.records),
        )
        return PartitionRunResult(index=index, seconds=seconds, records=list(loop.records))

    def run(self, max_batches: int | None = None) -> CampaignResult:
        """Fit + run the active loop of every partition (thread pool).

        ``max_batches`` caps how many *new* batches each partition processes
        this call (resume semantics identical to ``ActiveLearningLoop.run``).
        Partitions are independent, so the result is the same for any
        ``workers`` value; only wall-clock changes.
        """
        start = time.perf_counter()
        workers = self.partition_config.workers
        indices = list(range(self.num_partitions))
        if workers <= 1 or self.num_partitions <= 1:
            results = [self._run_piece(i, max_batches) for i in indices]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(lambda i: self._run_piece(i, max_batches), indices)
                )
        return CampaignResult(
            partition_results=results, seconds=time.perf_counter() - start
        )

    # ------------------------------------------------------------------ merge
    def _working_index(self) -> dict[ElementKind, tuple[dict[str, int], dict[str, int]]]:
        kg1, kg2 = _augmented_kgs(self.dataset, self.config)
        return {
            ElementKind.ENTITY: (kg1.entity_index, kg2.entity_index),
            ElementKind.RELATION: (kg1.relation_index, kg2.relation_index),
            ElementKind.CLASS: (kg1.class_index, kg2.class_index),
        }

    @staticmethod
    def _ids(names: list[str], index: dict[str, int]) -> np.ndarray:
        return np.array([index[name] for name in names], dtype=np.int64)

    def _state_fingerprint(self) -> tuple:
        """Every piece engine's version token — changes whenever any trains."""
        return tuple(
            self.pipeline(i).model.similarity.state_token()
            for i in range(self.num_partitions)
        )

    def merged_state(self) -> MergedSimilarityState:
        """Fold every partition's similarity state into one global state.

        Per-piece channel factors are scattered into the original pair's
        (working-space) index spaces; see :mod:`repro.runtime.merge` for the
        semantics.  The merged state is cached against the pieces' engine
        version tokens, so further training through *any* path (another
        :meth:`run`, or a piece's ``pipeline()``/``loop()`` accessors)
        rebuilds it instead of serving stale similarities.
        """
        fingerprint = self._state_fingerprint()
        if self._merged is not None and self._merged[0] == fingerprint:
            return self._merged[1]
        working = self._working_index()
        shapes = {
            kind: (len(left), len(right)) for kind, (left, right) in working.items()
        }
        contributions: dict[ElementKind, list] = {kind: [] for kind in _KINDS}
        block_size = DEFAULT_BLOCK_SIZE
        for index in range(self.num_partitions):
            pipeline = self.pipeline(index)
            engine = pipeline.model.similarity
            block_size = engine.block_size
            model = pipeline.model
            names = {
                ElementKind.ENTITY: (model.kg1.entities, model.kg2.entities),
                ElementKind.RELATION: (model.kg1.relations, model.kg2.relations),
                ElementKind.CLASS: (model.kg1.classes, model.kg2.classes),
            }
            for kind in _KINDS:
                left_index, right_index = working[kind]
                left_names, right_names = names[kind]
                contributions[kind].append(
                    (
                        engine.channels(kind),
                        self._ids(left_names, left_index),
                        self._ids(right_names, right_index),
                    )
                )
        merged = MergedSimilarityState.from_contributions(
            contributions,
            shapes,
            block_size=block_size,
            workers=self.partition_config.workers,
        )
        # token read after building: channel construction may lazily refresh
        # a piece snapshot, which bumps that piece's version
        self._merged = (self._state_fingerprint(), merged)
        return merged

    # ------------------------------------------------------------- evaluation
    def evaluate(self, test_only: bool = True) -> dict[str, AlignmentScores]:
        """Merged-state metrics over the *original* pair's gold matches.

        Gold id arrays computed on the original pair stay valid in the
        working space (augmentation only appends vocabulary), so this is
        directly comparable to ``DAAKG.evaluate`` on a monolithic run.
        """
        merged = self.merged_state()
        pair = self.dataset
        entity_pairs = (
            pair.entity_match_ids(pair.test_entity_pairs)
            if test_only and pair.test_entity_pairs
            else pair.entity_match_ids()
        )
        return {
            "entity": evaluate_alignment_from_engine(merged, ElementKind.ENTITY, entity_pairs),
            "relation": evaluate_alignment_from_engine(
                merged, ElementKind.RELATION, pair.relation_match_ids()
            ),
            "class": evaluate_alignment_from_engine(
                merged, ElementKind.CLASS, pair.class_match_ids()
            ),
        }

    # ------------------------------------------------------------ persistence
    def save(self, path: str) -> None:
        """Checkpoint the whole campaign (manifest + per-partition dirs)."""
        from repro.persistence.campaign import save_campaign  # circular at module level

        save_campaign(path, self)

    @classmethod
    def load(cls, path: str) -> "PartitionedCampaign":
        """Restore a campaign saved by :meth:`save`; ``run()`` resumes it."""
        from repro.persistence.campaign import load_campaign  # circular at module level

        return load_campaign(path)

    # ------------------------------------------------------------------ stats
    def summary(self) -> dict:
        """Partitioning statistics plus per-piece progress."""
        return {
            "partition": self.partition.summary(),
            "strategy": self.strategy,
            "workers": self.partition_config.workers,
            "progress": [
                {
                    "index": i,
                    "fitted": self.pipelines[i] is not None and self.pipelines[i].is_fitted,
                    "batches_done": self.loops[i].batches_done if self.loops[i] else 0,
                }
                for i in range(self.num_partitions)
            ],
        }
