"""The labelling oracle.

Experiments follow the paper's assumption of a perfect oracle: the answer for
an element pair is looked up in the gold alignment (any pair not in the gold
alignment is a non-match).  The class also counts how many questions have been
asked, which is the labelling budget the active-learning curves are plotted
against.
"""

from __future__ import annotations

from repro.inference.pairs import ElementPair
from repro.kg.elements import ElementKind
from repro.kg.pair import AlignedKGPair


class Oracle:
    """Answers match/non-match questions from the gold alignment of a dataset."""

    def __init__(self, pair: AlignedKGPair) -> None:
        self.pair = pair
        self._gold: dict[ElementKind, set[tuple[int, int]]] = {
            ElementKind.ENTITY: {tuple(row) for row in pair.entity_match_ids().tolist()},
            ElementKind.RELATION: {tuple(row) for row in pair.relation_match_ids().tolist()},
            ElementKind.CLASS: {tuple(row) for row in pair.class_match_ids().tolist()},
        }
        self.questions_asked = 0

    def label(self, element_pair: ElementPair) -> bool:
        """True when the pair is a gold match; increments the budget counter."""
        self.questions_asked += 1
        return (element_pair.left, element_pair.right) in self._gold[element_pair.kind]

    def label_batch(self, element_pairs: list[ElementPair]) -> list[tuple[ElementPair, bool]]:
        """Label a batch; order is preserved."""
        return [(pair, self.label(pair)) for pair in element_pairs]

    def gold_set(self, kind: ElementKind) -> set[tuple[int, int]]:
        """The gold matches of one element kind (used by evaluation code)."""
        return self._gold[kind]

    def num_matches(self, kind: ElementKind) -> int:
        return len(self._gold[kind])
