"""Batch active learning (Sect. 6 of the paper).

The pool generator couples each entity with its nearest neighbours by schema
signature (Eqs. 24–25) and keeps all relation and class pairs; the selection
algorithms pick the batch of element pairs with the greatest expected overall
inference power — greedily (Algorithm 1) or via graph partitioning
(Algorithm 2) — and the active loop drives the oracle-label / fine-tune cycle
until the labelling budget is exhausted.
"""

from repro.active.pool import ElementPairPool, PoolConfig, build_pool, schema_signatures
from repro.active.oracle import Oracle
from repro.active.selection import GreedySelectionConfig, greedy_select
from repro.active.partition import PartitionSelectionConfig, partition_select, partition_pool
from repro.active.strategies import (
    ActiveEAStrategy,
    DAAKGStrategy,
    DegreeStrategy,
    PageRankStrategy,
    RandomStrategy,
    SelectionState,
    SelectionStrategy,
    UncertaintyStrategy,
    STRATEGY_REGISTRY,
    create_strategy,
)
from repro.active.loop import ActiveLearningConfig, ActiveLearningLoop, ActiveLearningRecord
from repro.active.campaign import (
    CampaignExecutionError,
    CampaignResult,
    PartitionRunResult,
    PartitionedCampaign,
    piece_seed,
)

__all__ = [
    "ActiveEAStrategy",
    "ActiveLearningConfig",
    "ActiveLearningLoop",
    "ActiveLearningRecord",
    "CampaignExecutionError",
    "CampaignResult",
    "PartitionRunResult",
    "PartitionedCampaign",
    "piece_seed",
    "DAAKGStrategy",
    "DegreeStrategy",
    "ElementPairPool",
    "GreedySelectionConfig",
    "Oracle",
    "PageRankStrategy",
    "PartitionSelectionConfig",
    "PoolConfig",
    "RandomStrategy",
    "STRATEGY_REGISTRY",
    "SelectionState",
    "SelectionStrategy",
    "UncertaintyStrategy",
    "build_pool",
    "create_strategy",
    "greedy_select",
    "partition_pool",
    "partition_select",
    "schema_signatures",
]
