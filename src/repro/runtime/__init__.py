"""The similarity runtime: pluggable backends, streaming kernels, serving views.

See :mod:`repro.runtime.backends` for the backend protocol (dense / sharded /
ann), :mod:`repro.runtime.streaming` for the factored-cosine streaming
kernels, :mod:`repro.runtime.ann` for the IVF-indexed sub-linear retrieval
backend, :mod:`repro.runtime.views` for the frozen serving views, and
:mod:`repro.runtime.executor` for the campaign executors (serial / thread /
process piece execution behind one picklable piece runner).
"""

from repro.runtime.ann import (
    AnnBackend,
    AnnParams,
    AnnSearcher,
    ChannelIVFIndex,
    build_channel_index,
    resolve_ann_params,
    topk_recall,
)
from repro.runtime.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    DenseBackend,
    ShardedBackend,
    SimilarityBackend,
    TopKTable,
    create_backend,
    resolve_backend_name,
    resolve_workers,
)
from repro.runtime.streaming import (
    ChannelPair,
    CosineChannels,
    canonical_topk,
    collect_threshold_candidates,
    mutual_pairs_from_topn,
    mutual_top_n,
    rerank_pairs_topk,
    stream_row_col_max,
    stream_row_max,
    stream_threshold_candidates,
    stream_topk,
)
from repro.runtime.executor import (
    EXECUTOR_NAMES,
    CampaignExecutor,
    PieceOutcome,
    PieceSpec,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
    effective_executor_name,
    run_piece_spec,
)
from repro.runtime.merge import MergedSimilarityState, scatter_channels
from repro.runtime.views import AnnView, DenseView, SimilarityView, StreamedView

__all__ = [
    "AnnBackend",
    "AnnParams",
    "AnnSearcher",
    "AnnView",
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "CampaignExecutor",
    "ChannelIVFIndex",
    "ChannelPair",
    "CosineChannels",
    "DenseBackend",
    "DenseView",
    "EXECUTOR_NAMES",
    "MergedSimilarityState",
    "PieceOutcome",
    "PieceSpec",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "build_channel_index",
    "scatter_channels",
    "ShardedBackend",
    "SimilarityBackend",
    "SimilarityView",
    "StreamedView",
    "TopKTable",
    "canonical_topk",
    "collect_threshold_candidates",
    "create_backend",
    "create_executor",
    "effective_executor_name",
    "mutual_pairs_from_topn",
    "mutual_top_n",
    "rerank_pairs_topk",
    "resolve_ann_params",
    "resolve_backend_name",
    "resolve_workers",
    "run_piece_spec",
    "stream_row_col_max",
    "stream_row_max",
    "stream_threshold_candidates",
    "stream_topk",
    "topk_recall",
]
