"""The similarity runtime: pluggable backends, streaming kernels, serving views.

See :mod:`repro.runtime.backends` for the backend protocol (dense vs sharded),
:mod:`repro.runtime.streaming` for the factored-cosine streaming kernels, and
:mod:`repro.runtime.views` for the frozen serving views.
"""

from repro.runtime.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    DenseBackend,
    ShardedBackend,
    SimilarityBackend,
    TopKTable,
    create_backend,
    resolve_backend_name,
    resolve_workers,
)
from repro.runtime.streaming import (
    ChannelPair,
    CosineChannels,
    canonical_topk,
    collect_threshold_candidates,
    mutual_top_n,
    stream_row_col_max,
    stream_row_max,
    stream_threshold_candidates,
    stream_topk,
)
from repro.runtime.merge import MergedSimilarityState, scatter_channels
from repro.runtime.views import DenseView, SimilarityView, StreamedView

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "ChannelPair",
    "CosineChannels",
    "DenseBackend",
    "DenseView",
    "MergedSimilarityState",
    "scatter_channels",
    "ShardedBackend",
    "SimilarityBackend",
    "SimilarityView",
    "StreamedView",
    "TopKTable",
    "canonical_topk",
    "collect_threshold_candidates",
    "create_backend",
    "mutual_top_n",
    "resolve_backend_name",
    "resolve_workers",
    "stream_row_col_max",
    "stream_row_max",
    "stream_threshold_candidates",
    "stream_topk",
]
