"""Merging per-partition similarity states into one global, streamed state.

The partition-parallel campaign runtime (:mod:`repro.active.campaign`) trains
one :class:`~repro.alignment.similarity.SimilarityEngine` per sub-pair.  This
module folds those per-partition states into a single
:class:`MergedSimilarityState` over the *original* pair's index spaces —
without ever materialising the global ``N × M`` matrix.

The trick is the same factorisation the sharded backend streams from: every
per-partition similarity channel is a cosine of row-normalised factor
matrices.  Scattering a piece's factors into global factor matrices that are
zero outside the piece's rows/columns yields a **global cosine channel**
whose in-block tiles equal the piece's similarity bit-for-bit and whose
cross-block entries are exactly zero (disjoint supports ⇒ zero dot products).
The merged state is therefore just a bigger
:class:`~repro.runtime.streaming.CosineChannels` — ``max`` over all pieces'
scattered channels — and every streaming kernel (``stream_topk``, threshold
scans, :class:`~repro.runtime.views.StreamedView` with its fold-in tail
shards) applies unchanged.

Semantics of the merged similarity:

* within a partition block: the piece's own similarity (clipped at zero once
  two or more pieces exist — a cross-block entry is 0, so a negative in-block
  cosine can never outrank it anyway);
* across partition blocks: exactly ``0`` — the partitioner already
  established (ρ-bounded) that cross-partition evidence is negligible, which
  is precisely what makes partition-parallel campaigns sound.

The class duck-types the narrow engine query surface that every downstream
consumer reads (``shape`` / ``rows`` / ``cols`` / ``iter_*_blocks`` /
``stream_blocks`` / ``top_k`` / ``row_max`` / ``export_state``), so
:func:`~repro.alignment.evaluation.evaluate_alignment_from_engine`,
:func:`~repro.alignment.semi_supervised.mine_potential_matches_from_engine`
and the calibrator's streamed probability paths work on a merged state
unchanged.  With a single identity partition the piece's channels are reused
as-is, making every merged query bit-equal to the monolithic sharded path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kg.elements import ElementKind
from repro.runtime.backends import StreamedChannelQueries, TopKTable
from repro.runtime.streaming import ChannelPair, CosineChannels
from repro.runtime.views import SimilarityView, StreamedView

_KINDS = (ElementKind.ENTITY, ElementKind.RELATION, ElementKind.CLASS)


def scatter_channels(
    contributions: Sequence[tuple[CosineChannels, np.ndarray, np.ndarray]],
    shape: tuple[int, int],
) -> CosineChannels:
    """Fold piece channel sets into one global block-structured channel set.

    ``contributions`` holds ``(channels, row_ids, col_ids)`` triples: the
    piece's factored similarity plus its local→global row/column id maps.
    Every channel factor is scattered into a zero matrix over the global
    vocabulary, so tiles inside a piece's block reproduce the piece similarity
    exactly and tiles across blocks are exactly zero.

    A single contribution covering the whole global space (the 1-partition
    case) is returned as-is — bit-exact with the monolithic channels.
    """
    if len(contributions) == 1:
        channels, row_ids, col_ids = contributions[0]
        if (
            channels.shape == shape
            and np.array_equal(row_ids, np.arange(shape[0]))
            and np.array_equal(col_ids, np.arange(shape[1]))
        ):
            return channels
    # One global channel per (piece, channel): simple, and every streamed
    # kernel applies unchanged.  Cost note: merged queries evaluate all
    # pieces' channels over the full N×M grid even though cross-block
    # entries are zero by construction — ~P× the FLOPs of running the
    # kernels per piece over piece-local blocks and scattering the results
    # through the id maps.  That per-piece evaluation is the known cheaper
    # design if merged-query cost ever dominates a campaign; it is not done
    # here because zero-fill-aware top-k/row-max merging adds real
    # complexity to every kernel for a path that is query-, not train-,
    # bound today.
    pairs: list[ChannelPair] = []
    clip = False
    for channels, row_ids, col_ids in contributions:
        clip = clip or channels.clip_at_zero
        for pair in channels.pairs:
            left = np.zeros((shape[0], pair.left.shape[1]))
            right = np.zeros((shape[1], pair.right.shape[1]))
            left[row_ids] = pair.left
            right[col_ids] = pair.right
            # rows are already unit (or exactly zero), so no re-normalisation
            pairs.append(ChannelPair(left, right))
    return CosineChannels(pairs, shape=shape, clip_at_zero=clip)


class MergedSimilarityState(StreamedChannelQueries):
    """A frozen, streamed similarity state over the original pair's indexes.

    Built by :meth:`from_contributions` (one entry per partition and element
    kind).  The whole streamed query surface (``rows`` / ``cols`` /
    ``iter_*_blocks`` / ``stream_blocks`` / ``row_max`` …) is inherited from
    :class:`~repro.runtime.backends.StreamedChannelQueries` — the same code
    the sharded backend runs — parameterised by the merged channel factors.
    Top-k tables are cached per ``(kind, k)``; the state is immutable, so the
    cache never invalidates.
    """

    backend_name = "merged"

    def __init__(
        self,
        channels: dict[ElementKind, CosineChannels],
        block_size: int,
        workers: int = 1,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._merged_channels = dict(channels)
        self.block_size = block_size
        self.workers = workers
        self._top_k: dict[tuple[ElementKind, int], TopKTable] = {}

    @classmethod
    def from_contributions(
        cls,
        contributions: dict[
            ElementKind, list[tuple[CosineChannels, np.ndarray, np.ndarray]]
        ],
        shapes: dict[ElementKind, tuple[int, int]],
        block_size: int,
        workers: int = 1,
    ) -> "MergedSimilarityState":
        """Merge per-piece ``(channels, row_ids, col_ids)`` lists per kind."""
        merged = {
            kind: scatter_channels(contributions.get(kind, []), shapes[kind])
            if contributions.get(kind)
            else CosineChannels([], shape=shapes[kind])
            for kind in _KINDS
        }
        return cls(merged, block_size=block_size, workers=workers)

    # ------------------------------------------------------- mixin accessors
    def _channels(self, kind: ElementKind) -> CosineChannels:
        return self._merged_channels[kind]

    @property
    def _block(self) -> int:
        return self.block_size

    @property
    def _workers(self) -> int:
        return self.workers

    # -------------------------------------------------------------- geometry
    def shape(self, kind: ElementKind) -> tuple[int, int]:
        return self._merged_channels[kind].shape

    def channels(self, kind: ElementKind) -> CosineChannels:
        return self._merged_channels[kind]

    # ------------------------------------------------- cached/derived queries
    def top_k_table(self, kind: ElementKind, k: int) -> TopKTable:
        key = (kind, k)
        cached = self._top_k.get(key)
        if cached is not None:
            return cached
        table = super().top_k_table(kind, k)
        self._top_k[key] = table
        return table

    def top_k(self, kind: ElementKind, k: int) -> tuple[np.ndarray, np.ndarray]:
        table = self.top_k_table(kind, k)
        return table.left_indices, table.right_indices

    def matrix(self, kind: ElementKind) -> np.ndarray:
        """Assemble the full matrix by streaming (debugging / parity tests)."""
        return self.compute_full(kind)

    # --------------------------------------------------------------- serving
    def export_state(self) -> dict[ElementKind, SimilarityView]:
        """Frozen serving views (streamed, fold-in tail shards available)."""
        return {
            kind: StreamedView(self._merged_channels[kind], block_size=self.block_size)
            for kind in _KINDS
        }
