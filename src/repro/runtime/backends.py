"""Pluggable similarity backends: dense (cached N×M), sharded, and ANN.

The :class:`~repro.alignment.similarity.SimilarityEngine` delegates every
query to one of two backends behind a common, *narrow* surface — ``rows``,
``cols``, ``stream_blocks``, ``top_k_table``, ``row_max``/``col_max``,
``view`` (a frozen serving export) — so none of the five consuming subsystems
(evaluation, pool building, semi-supervised mining, calibration, serving)
needs to know whether the full matrix exists:

* :class:`DenseBackend` — the historical path: the full matrix is computed
  once per version token, cached, and every query is an array slice.  This
  path is kept *bit-exact* with the pre-backend code and remains the default.
* :class:`ShardedBackend` — streaming: every query is answered from
  row-block × column-block cosine tiles produced on the fly from the engine's
  channel factors, with per-row running top-k merges.  Peak memory is
  ``O(block² + N·k)``; the ``N × M`` matrix is never materialised on any
  query path.  Row shards may be fanned out over a thread pool — results are
  deterministic for any worker count because each row's merge happens
  entirely within its own shard.
* :class:`~repro.runtime.ann.AnnBackend` — sub-linear candidate retrieval:
  one inverted-list index per cosine channel over the column factors, exact
  re-rank of the candidate union (returned scores are bit-identical to exact
  pair scores; only recall depends on the ``nprobe`` knob), exact streamed
  fallback below its indexing threshold.

Backend selection: ``DAAKGConfig.similarity_backend`` chooses per pipeline,
and the ``REPRO_SIMILARITY_BACKEND`` environment variable overrides it
globally (that is how CI runs the whole tier-1 suite against the sharded
runtime without touching any test).  ``REPRO_SIMILARITY_WORKERS`` likewise
overrides the worker count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.runtime.streaming import (
    CosineChannels,
    _as_blocks,
    collect_threshold_candidates,
    mutual_top_n,
    stream_row_col_max,
    stream_row_max,
    stream_threshold_candidates,
    stream_topk,
)
from repro.runtime.views import DenseView, SimilarityView, StreamedView
from repro.utils.math import top_k_rows

if TYPE_CHECKING:  # pragma: no cover - import cycle with similarity.py
    from repro.alignment.similarity import SimilarityEngine
    from repro.kg.elements import ElementKind

BACKEND_NAMES = ("dense", "sharded", "ann")
BACKEND_ENV = "REPRO_SIMILARITY_BACKEND"
WORKERS_ENV = "REPRO_SIMILARITY_WORKERS"


def resolve_backend_name(configured: str | None = None) -> str:
    """The effective backend name: env override first, then config, then dense."""
    name = os.environ.get(BACKEND_ENV, "").strip().lower() or (configured or "dense").lower()
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown similarity backend {name!r}; expected one of {BACKEND_NAMES}")
    return name


def resolve_workers(configured: int | None = None) -> int:
    """The effective worker count: env override first, then config, then 1."""
    env = os.environ.get(WORKERS_ENV, "").strip()
    workers = int(env) if env else (configured if configured is not None else 1)
    if workers < 1:
        raise ValueError("similarity workers must be >= 1")
    return workers


@dataclass(frozen=True)
class TopKTable:
    """Per-row and per-column top-k candidates with their similarity values."""

    left_indices: np.ndarray  # (N, k) best KG2 columns per KG1 row, descending
    left_values: np.ndarray
    right_indices: np.ndarray  # (M, k) best KG1 rows per KG2 column, descending
    right_values: np.ndarray


class SimilarityBackend:
    """Shared query surface; concrete backends fill in the primitives."""

    name: str = "abstract"

    def __init__(self, engine: "SimilarityEngine") -> None:
        self.engine = engine

    # -- primitives each backend must provide -------------------------------
    def compute_full(self, kind: "ElementKind") -> np.ndarray:
        """Compute the full matrix (called only by the engine's cached accessor)."""
        raise NotImplementedError

    def rows(self, kind: "ElementKind", indices: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def cols(self, kind: "ElementKind", indices: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def iter_rows_blocks(
        self, kind: "ElementKind", indices: np.ndarray
    ) -> Iterator[tuple[slice, np.ndarray]]:
        """Column-block tiles ``(col_slice, tile)`` of the selected rows."""
        raise NotImplementedError

    def iter_cols_blocks(
        self, kind: "ElementKind", indices: np.ndarray
    ) -> Iterator[tuple[slice, np.ndarray]]:
        """Row-block tiles ``(row_slice, tile)`` of the selected columns."""
        raise NotImplementedError

    def stream_blocks(
        self, kind: "ElementKind"
    ) -> Iterator[tuple[slice, slice, np.ndarray]]:
        """All ``(row_slice, col_slice, tile)`` tiles of the similarity."""
        raise NotImplementedError

    def top_k_table(self, kind: "ElementKind", k: int) -> TopKTable:
        raise NotImplementedError

    def row_max(self, kind: "ElementKind") -> np.ndarray:
        raise NotImplementedError

    def col_max(self, kind: "ElementKind") -> np.ndarray:
        raise NotImplementedError

    def row_col_max(self, kind: "ElementKind") -> tuple[np.ndarray, np.ndarray]:
        """Both directions at once (one fused sweep on streaming backends)."""
        return self.row_max(kind), self.col_max(kind)

    def threshold_candidates(
        self, kind: "ElementKind", threshold: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All ``(rows, cols, values)`` with value ≥ threshold, row-major."""
        return collect_threshold_candidates(self.stream_blocks(kind), threshold)

    def mutual_top_n_pairs(
        self, left_factors: np.ndarray, right_factors: np.ndarray, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mutually-top-``n`` cosine pairs between two raw factor sets."""
        return mutual_top_n(
            left_factors, right_factors, n, self.engine.block_size, self.engine.workers
        )

    def view(self, kind: "ElementKind") -> SimilarityView:
        """A frozen, appendable serving view of the current similarity."""
        raise NotImplementedError


class DenseBackend(SimilarityBackend):
    """Today's cached full-matrix path; every query is a slice (bit-exact)."""

    name = "dense"

    def compute_full(self, kind: "ElementKind") -> np.ndarray:
        return self.engine._dense_matrix(kind)

    def matrix(self, kind: "ElementKind") -> np.ndarray:
        """The engine's *cached* full matrix (one compute per version token)."""
        return self.engine.matrix(kind)

    def rows(self, kind: "ElementKind", indices: np.ndarray) -> np.ndarray:
        return self.matrix(kind)[np.asarray(indices, dtype=np.int64)]

    def cols(self, kind: "ElementKind", indices: np.ndarray) -> np.ndarray:
        return self.matrix(kind)[:, np.asarray(indices, dtype=np.int64)]

    def iter_rows_blocks(self, kind, indices):
        slab = self.rows(kind, indices)
        for cs in _as_blocks(slab.shape[1], self.engine.block_size):
            yield cs, slab[:, cs]

    def iter_cols_blocks(self, kind, indices):
        slab = self.cols(kind, indices)
        for rs in _as_blocks(slab.shape[0], self.engine.block_size):
            yield rs, slab[rs]

    def stream_blocks(self, kind):
        matrix = self.matrix(kind)
        block = self.engine.block_size
        for rs in _as_blocks(matrix.shape[0], block):
            for cs in _as_blocks(matrix.shape[1], block):
                yield rs, cs, matrix[rs, cs]

    def top_k_table(self, kind, k: int) -> TopKTable:
        matrix = self.matrix(kind)
        left = top_k_rows(matrix, k)
        right = top_k_rows(matrix.T, k)
        rows_l = np.arange(matrix.shape[0])[:, None]
        rows_r = np.arange(matrix.shape[1])[:, None]
        return TopKTable(
            left_indices=left,
            left_values=matrix[rows_l, left] if left.size else np.empty(left.shape),
            right_indices=right,
            right_values=matrix.T[rows_r, right] if right.size else np.empty(right.shape),
        )

    def row_max(self, kind) -> np.ndarray:
        matrix = self.matrix(kind)
        if matrix.size == 0:
            return np.zeros(matrix.shape[0])
        return matrix.max(axis=1)

    def col_max(self, kind) -> np.ndarray:
        matrix = self.matrix(kind)
        if matrix.size == 0:
            return np.zeros(matrix.shape[1])
        return matrix.max(axis=0)

    def threshold_candidates(self, kind, threshold):
        # same row-major (row, col) order as the streamed collector
        rows, cols = np.nonzero(self.matrix(kind) >= threshold)
        return rows, cols, self.matrix(kind)[rows, cols]

    def view(self, kind) -> SimilarityView:
        # serving appends fold-in rows/columns, so never alias the cache
        return DenseView(self.matrix(kind).copy())


class StreamedChannelQueries:
    """Streamed query surface over factored cosine channels (shared mixin).

    Everything is expressed through three accessors — ``_channels(kind)``,
    ``_block``, ``_workers`` — so the sharded backend (live engine state) and
    the campaign merge layer's frozen :class:`~repro.runtime.merge.
    MergedSimilarityState` answer queries through the *same* code; a fix to
    the streamed kernels' call sites lands in both automatically.
    """

    def _channels(self, kind: "ElementKind") -> CosineChannels:
        raise NotImplementedError

    @property
    def _block(self) -> int:
        raise NotImplementedError

    @property
    def _workers(self) -> int:
        raise NotImplementedError

    def _channels_cache_token(self, kind: "ElementKind"):
        """Cache token for per-kind derived channel state (None = immutable).

        Live backends override this with the engine's version token so a
        parameter/snapshot/landmark bump invalidates derived state; frozen
        holders (the campaign merge state) keep the immutable default.
        """
        return None

    def _transposed_channels(self, kind: "ElementKind") -> CosineChannels:
        """The kind's column-side channels, cached instead of rebuilt per query.

        Every column-direction query (``col_max``, the right half of
        ``top_k_table``) previously called ``channels.transpose()`` afresh;
        one token-checked cache entry per kind serves them all.
        """
        cache = self.__dict__.setdefault("_transposed_cache", {})
        token = self._channels_cache_token(kind)
        entry = cache.get(kind)
        if entry is not None and entry[0] == token:
            return entry[1]
        transposed = self._channels(kind).transpose()
        cache[kind] = (token, transposed)
        return transposed

    def compute_full(self, kind) -> np.ndarray:
        channels = self._channels(kind)
        out = np.empty(channels.shape)
        for rs, cs, tile in self.stream_blocks(kind):
            out[rs, cs] = tile
        return out

    def rows(self, kind, indices) -> np.ndarray:
        channels = self._channels(kind)
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((indices.shape[0], channels.num_cols))
        for cs, tile in self.iter_rows_blocks(kind, indices):
            out[:, cs] = tile
        return out

    def cols(self, kind, indices) -> np.ndarray:
        channels = self._channels(kind)
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((channels.num_rows, indices.shape[0]))
        for rs, tile in self.iter_cols_blocks(kind, indices):
            out[rs] = tile
        return out

    def iter_rows_blocks(self, kind, indices):
        # gather the selected row factors once, then slice per column block
        selected = self._channels(kind).select_rows(np.asarray(indices, dtype=np.int64))
        for cs in _as_blocks(selected.num_cols, self._block):
            yield cs, selected.tile(slice(None), cs)

    def iter_cols_blocks(self, kind, indices):
        selected = self._channels(kind).select_cols(np.asarray(indices, dtype=np.int64))
        for rs in _as_blocks(selected.num_rows, self._block):
            yield rs, selected.tile(rs, slice(None))

    def stream_blocks(self, kind):
        channels = self._channels(kind)
        block = self._block
        for rs in _as_blocks(channels.num_rows, block):
            for cs in _as_blocks(channels.num_cols, block):
                yield rs, cs, channels.tile(rs, cs)

    def top_k_table(self, kind, k: int) -> TopKTable:
        channels = self._channels(kind)
        left_idx, left_val = stream_topk(channels, k, self._block, self._workers)
        right_idx, right_val = stream_topk(
            self._transposed_channels(kind), k, self._block, self._workers
        )
        return TopKTable(left_idx, left_val, right_idx, right_val)

    def row_max(self, kind) -> np.ndarray:
        return stream_row_max(self._channels(kind), self._block, self._workers)

    def col_max(self, kind) -> np.ndarray:
        return stream_row_max(self._transposed_channels(kind), self._block, self._workers)

    def row_col_max(self, kind) -> tuple[np.ndarray, np.ndarray]:
        return stream_row_col_max(self._channels(kind), self._block, self._workers)

    def threshold_candidates(self, kind, threshold):
        return stream_threshold_candidates(
            self._channels(kind), threshold, self._block, self._workers
        )

    def mutual_top_n_pairs(self, left_factors, right_factors, n):
        return mutual_top_n(left_factors, right_factors, n, self._block, self._workers)


class ShardedBackend(StreamedChannelQueries, SimilarityBackend):
    """Streaming tiles + running top-k; never materialises N×M on query paths.

    ``SimilarityEngine.matrix`` remains available as an explicitly-documented
    escape hatch for legacy full-matrix consumers (it assembles the matrix by
    streaming); none of the production query paths use it.
    """

    name = "sharded"

    def _channels(self, kind: "ElementKind") -> CosineChannels:
        return self.engine.channels(kind)

    @property
    def _block(self) -> int:
        return self.engine.block_size

    @property
    def _workers(self) -> int:
        return self.engine.workers

    def _channels_cache_token(self, kind: "ElementKind"):
        return self.engine._token_for(kind)

    def view(self, kind) -> SimilarityView:
        # channels hold freshly-normalised factor copies; StreamedView never
        # mutates them (fold-ins land in tail arrays), so sharing is safe
        return StreamedView(self._channels(kind), block_size=self._block)


def create_backend(engine: "SimilarityEngine", name: str) -> SimilarityBackend:
    if name == "dense":
        return DenseBackend(engine)
    if name == "sharded":
        return ShardedBackend(engine)
    if name == "ann":
        from repro.runtime.ann import AnnBackend  # lazy: ann imports this module

        return AnnBackend(engine)
    raise ValueError(f"unknown similarity backend {name!r}; expected one of {BACKEND_NAMES}")
