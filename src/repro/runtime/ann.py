"""Sub-linear candidate retrieval: IVF indexes over cosine channel factors.

The third similarity backend.  Every similarity in this codebase is
``max_c A_c · B_cᵀ`` over row-normalised factor channels, so candidate
retrieval reduces to (approximate) maximum-inner-product search over each
channel's *column* factors: one coarse inverted-list index per channel
(spherical k-means quantisation, seeded and deterministic), probe the
``nprobe`` closest lists per query, union the candidates across channels,
then **re-rank the candidates exactly** with the factored pair kernel
(:func:`repro.runtime.streaming.rerank_pairs_topk`, built on
``CosineChannels.pair_values`` — the same kernel the serving views' ``gather``
uses).  Returned scores are therefore bit-identical to exact pair scores;
only *recall* (which candidates are found) depends on the knobs.

Knobs and guarantees:

* ``nlist`` — inverted lists per channel (0 = auto ``≈ √M``, which makes a
  probe-plus-rerank query ``O(√M)`` instead of ``O(M)``);
* ``nprobe`` — lists probed per query; the build-time calibration pass
  doubles it until sampled top-k recall reaches ``min_recall`` (so the
  configured floor, not the raw knob, is what the index delivers);
* threshold-candidate queries are **exact** for any knob setting: each list
  stores its covering radius, and on unit vectors
  ``dot(q, x) ≤ dot(q, c) + ‖x − c‖`` prunes lists rigorously;
* below ``min_index_cols`` columns (or when probing would degenerate to a
  full scan) the backend silently serves the exact streamed kernels — the
  parity suite runs unmodified against ``REPRO_SIMILARITY_BACKEND=ann``.

Indexes are *derived state*: cached per engine version token
``(parameter, snapshot, landmark)`` and rebuilt on demand after any bump —
never checkpointed, never served stale.  Landmark machinery is reused where
available: the entity-kind index seeds its initial centroids from the
current landmark entities' factor rows.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

import repro.obs as obs
from repro.runtime.backends import SimilarityBackend, StreamedChannelQueries, TopKTable
from repro.runtime.streaming import (
    ChannelPair,
    CosineChannels,
    _as_blocks,
    canonical_topk,
    mutual_pairs_from_topn,
    rerank_pairs_topk,
    stream_topk,
)
from repro.runtime.views import AnnView, SimilarityView, StreamedView
from repro.utils.math import safe_l2_normalize

if TYPE_CHECKING:  # pragma: no cover - import cycle with similarity.py
    from repro.kg.elements import ElementKind

ANN_NLIST_ENV = "REPRO_SIMILARITY_ANN_NLIST"
ANN_NPROBE_ENV = "REPRO_SIMILARITY_ANN_NPROBE"
ANN_MIN_RECALL_ENV = "REPRO_SIMILARITY_ANN_MIN_RECALL"

# top-k width used by the build-time recall calibration pass
_CALIBRATION_K = 10
# safety margin on covering radii: the probe bound is computed with a GEMM
# while the re-rank uses einsum; both round in the last ulp, so the exact
# threshold-pruning guarantee needs a hair of slack
_RADIUS_MARGIN = 1e-9


@dataclass(frozen=True)
class AnnParams:
    """Knobs of the ANN backend (see the module docstring for semantics)."""

    nlist: int = 0  # inverted lists per channel; 0 = auto (~sqrt of columns)
    nprobe: int = 8  # lists probed per query (calibration may raise it)
    min_recall: float = 0.95  # sampled top-k recall floor enforced at build
    min_index_cols: int = 1024  # below this, serve the exact streamed kernels
    seed: int = 0  # k-means init seed (with knobs, fully determines the index)
    kmeans_iters: int = 6
    calibration_rows: int = 64  # sample size of the recall calibration pass

    def __post_init__(self) -> None:
        if self.nlist < 0:
            raise ValueError("ann nlist must be >= 0 (0 = auto)")
        if self.nprobe < 1:
            raise ValueError("ann nprobe must be >= 1")
        if not (0.0 < self.min_recall <= 1.0):
            raise ValueError("ann min_recall must be in (0, 1]")
        if self.min_index_cols < 1:
            raise ValueError("ann min_index_cols must be >= 1")
        if self.kmeans_iters < 1 or self.calibration_rows < 1:
            raise ValueError("ann kmeans_iters and calibration_rows must be >= 1")


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else fallback


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else fallback


def resolve_ann_params(configured: AnnParams | None = None) -> AnnParams:
    """Effective ANN knobs: env overrides first, then config, then defaults.

    Mirrors ``resolve_backend_name`` — ``REPRO_SIMILARITY_ANN_NLIST`` /
    ``REPRO_SIMILARITY_ANN_NPROBE`` / ``REPRO_SIMILARITY_ANN_MIN_RECALL``
    win over the configured values, field by field.
    """
    base = configured if configured is not None else AnnParams()
    return replace(
        base,
        nlist=_env_int(ANN_NLIST_ENV, base.nlist),
        nprobe=_env_int(ANN_NPROBE_ENV, base.nprobe),
        min_recall=_env_float(ANN_MIN_RECALL_ENV, base.min_recall),
    )


# ----------------------------------------------------------- index structure
@dataclass(frozen=True)
class ChannelIVFIndex:
    """One channel's inverted-list index over its column factors.

    ``members[indptr[j]:indptr[j+1]]`` are list ``j``'s column ids
    (ascending); ``radii[j]`` covers ``max ‖x − c_j‖`` over the members plus
    a rounding margin, which is what makes threshold pruning exact.
    ``vectors`` stores *every* channel's member factor rows in list order —
    probing a list scores a contiguous slab per channel with one GEMM each
    instead of a scattered gather (the exact scan is pure GEMM too, so a
    gather-based probe could never beat it), and having all channels lets
    the probe rank candidates by the full max-combined score: a column
    retrieved here because of *this* channel's geometry still competes with
    its best channel's value, so per-list truncation loses nothing.
    """

    centroids: np.ndarray  # (nlist, d), unit rows
    radii: np.ndarray  # (nlist,)
    indptr: np.ndarray  # (nlist + 1,)
    members: np.ndarray  # (M,) column ids grouped by list, ascending per list
    vectors: tuple[np.ndarray, ...]  # per channel: (M, d_c) rows, grouped order

    @property
    def nlist(self) -> int:
        return self.centroids.shape[0]


def build_channel_index(
    right: np.ndarray,
    nlist: int,
    iters: int,
    seed,
    initial: np.ndarray | None = None,
    slab_rights: tuple[np.ndarray, ...] | None = None,
) -> ChannelIVFIndex:
    """Spherical k-means over unit column factors (seeded, deterministic).

    ``initial`` rows (e.g. landmark factor rows) seed the first centroids;
    the remainder is a seeded sample of the data.  Assignment maximises the
    dot product (factors are unit rows, so this is cosine k-means); empty
    clusters keep their previous centroid.  ``slab_rights`` are the column
    factors of *all* channels (default: just this one) — each is reordered
    into the contiguous per-list scoring slabs of ``vectors``.
    """
    right = np.asarray(right, dtype=float)
    num_cols, dim = right.shape
    nlist = max(1, min(nlist, num_cols))
    centroids = np.empty((0, dim))
    if initial is not None and initial.size:
        centroids = safe_l2_normalize(np.asarray(initial, dtype=float))[:nlist]
    if centroids.shape[0] < nlist:
        rng = np.random.default_rng(seed)
        extra = rng.permutation(num_cols)[: nlist - centroids.shape[0]]
        centroids = np.concatenate([centroids, right[np.sort(extra)]], axis=0)
    centroids = centroids.copy()
    assign = np.argmax(right @ centroids.T, axis=1)
    for _ in range(iters):
        order = np.argsort(assign, kind="stable")
        counts = np.bincount(assign, minlength=nlist)
        nonempty = counts > 0
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        sums = np.add.reduceat(right[order], starts[nonempty], axis=0)
        norms = np.linalg.norm(sums, axis=1)
        ok = norms > 1e-12
        updated = centroids[nonempty]
        updated[ok] = sums[ok] / norms[ok, None]
        centroids[nonempty] = updated
        assign = np.argmax(right @ centroids.T, axis=1)
    order = np.argsort(assign, kind="stable")  # stable: members ascend per list
    counts = np.bincount(assign, minlength=nlist)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    dots = np.einsum("ij,ij->i", right, centroids[assign])
    dist = np.sqrt(np.maximum(2.0 - 2.0 * dots, 0.0))
    radii = np.zeros(nlist)
    np.maximum.at(radii, assign, dist)
    members = order.astype(np.int64)
    slabs = tuple(
        np.ascontiguousarray(np.asarray(r, dtype=float)[members])
        for r in (slab_rights if slab_rights is not None else (right,))
    )
    return ChannelIVFIndex(centroids, radii + _RADIUS_MARGIN, indptr, members, slabs)


# ------------------------------------------------------------- query kernels
# GEMM scores and einsum-based ``pair_values`` both round in the last ulp;
# the threshold pre-filter keeps a slack band so the exact filter that
# follows never loses a qualifying pair to that rounding
_SCORE_SLACK = 1e-9


def _group_by_list(row_local: np.ndarray, lists: np.ndarray):
    """Group probe ``(row, list)`` pairs by list for per-list GEMM scoring.

    Returns ``(uniq_lists, starts, ends, rows_sorted)``: the rows probing
    ``uniq_lists[g]`` are ``rows_sorted[starts[g]:ends[g]]``.
    """
    order = np.argsort(lists, kind="stable")
    lists_sorted = lists[order]
    rows_sorted = row_local[order]
    uniq, starts = np.unique(lists_sorted, return_index=True)
    ends = np.append(starts[1:], lists_sorted.size)
    return uniq, starts, ends, rows_sorted


def _channel_probe_topk(
    all_queries: tuple[np.ndarray, ...],
    channel_idx: int,
    index: ChannelIVFIndex,
    nprobe: int,
    k: int,
    clip_at_zero: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-query top-``k`` candidates within one channel's probed lists.

    Lists are probed by *this* channel's geometry (query factors against its
    centroids), but every probed list is scored with the full max-combined
    similarity — one contiguous GEMM per channel over the list's ``vectors``
    slabs.  Ranking by the combined score makes per-list top-``k`` lossless
    relative to the retrieved union: a column this index retrieved that the
    overall top-``k`` needs cannot be beaten by ``k`` others in its own list
    without being beaten by ``k`` others overall.  Returns ``(cols, counts)``:
    a per-row top-``k`` candidate table (``-1`` marks padding) and the
    per-row count of *distinct* columns the probed lists retrieved (lists
    within a channel are disjoint, so list sizes sum exactly).
    """
    queries = all_queries[channel_idx]
    num_q = queries.shape[0]
    probe = min(nprobe, index.nlist)
    scores = queries @ index.centroids.T
    if probe >= index.nlist:
        probed = np.broadcast_to(np.arange(index.nlist), (num_q, index.nlist))
    else:
        probed = np.argpartition(-scores, probe - 1, axis=1)[:, :probe]
    row_local = np.repeat(np.arange(num_q, dtype=np.int64), probed.shape[1])
    uniq, starts, ends, rows_sorted = _group_by_list(row_local, probed.ravel())
    out_vals = np.full((num_q, probe * k), -np.inf)
    out_cols = np.full((num_q, probe * k), -1, dtype=np.int64)
    fill = np.zeros(num_q, dtype=np.int64)
    retrieved = np.zeros(num_q, dtype=np.int64)
    for j, gs, ge in zip(uniq, starts, ends):
        ls, le = int(index.indptr[j]), int(index.indptr[j + 1])
        size = le - ls
        if size == 0:
            continue
        rows_j = rows_sorted[gs:ge]
        tile = all_queries[0][rows_j] @ index.vectors[0][ls:le].T
        for c in range(1, len(index.vectors)):
            np.maximum(tile, all_queries[c][rows_j] @ index.vectors[c][ls:le].T, out=tile)
        if clip_at_zero:
            np.maximum(tile, 0.0, out=tile)
        kk = min(k, size)
        if kk < size:
            top = np.argpartition(-tile, kk - 1, axis=1)[:, :kk]
            vals = np.take_along_axis(tile, top, axis=1)
        else:
            top = np.broadcast_to(np.arange(size), (rows_j.size, size))
            vals = tile
        cols = index.members[ls:le][top]
        dest = fill[rows_j][:, None] * k + np.arange(kk)
        out_vals[rows_j[:, None], dest] = vals
        out_cols[rows_j[:, None], dest] = cols
        fill[rows_j] += 1
        retrieved[rows_j] += size
    # reduce ≤ nprobe·k survivors to the per-index top-k by combined score
    _, top_cols = canonical_topk(out_vals, out_cols, k)
    return top_cols, retrieved


def _dedupe_candidate_rows(cand: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted-unique per-row candidates of a padded table (``-1`` = padding).

    Returns flat ``(cols, counts)`` in row-major order — the CSR form
    :func:`rerank_pairs_topk` consumes.
    """
    sorted_cols = np.sort(cand, axis=1)  # padding sorts first
    keep = sorted_cols >= 0
    keep[:, 1:] &= sorted_cols[:, 1:] != sorted_cols[:, :-1]
    return sorted_cols[keep], keep.sum(axis=1)


def ann_topk(
    channels: CosineChannels,
    indexes: tuple[ChannelIVFIndex, ...],
    row_ids: np.ndarray,
    k: int,
    nprobe: int,
    block: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Approximate per-row top-``k``: probe per channel, union, exact re-rank.

    Per channel, the probed inverted lists are scored with contiguous GEMMs
    and reduced to a per-channel top-``k`` — lossless relative to the probed
    candidate set, because a pair in the overall (max-combined) top-``k``
    ranks at least as high in its best channel.  The cross-channel union
    (≤ ``channels·k`` per row) is then re-ranked by
    :func:`rerank_pairs_topk`, so every returned score is bit-identical to
    the exact pair score; candidate selection is the only approximate step.
    Rows whose probed lists retrieve fewer than ``k`` distinct candidates
    deterministically escalate to an exact scan of that row, so the output
    always has ``min(k, num_cols)`` columns.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    num_cols = channels.num_cols
    k = min(k, num_cols)
    if k <= 0 or row_ids.size == 0:
        return (
            np.empty((row_ids.size, max(k, 0)), dtype=np.int64),
            np.empty((row_ids.size, max(k, 0)), dtype=float),
        )
    out_i, out_v = [], []
    # bound the per-block intermediates regardless of engine block size
    for rs in _as_blocks(row_ids.size, min(block, 1024)):
        batch = row_ids[rs]
        num_local = batch.size
        all_queries = tuple(pair.left[batch] for pair in channels.pairs)
        col_parts = []
        for channel_idx, index in enumerate(indexes):
            cols_c, _ = _channel_probe_topk(
                all_queries, channel_idx, index, nprobe, k, channels.clip_at_zero
            )
            col_parts.append(cols_c)
        cols_flat, counts = _dedupe_candidate_rows(np.concatenate(col_parts, axis=1))
        # a row is starved only if every channel retrieved < k columns — then
        # nothing was truncated and the union count is the true retrieved count
        short = np.nonzero(counts < k)[0]
        if short.size:  # deterministic escalation: exact-scan the starved rows
            exact_idx, _ = stream_topk(
                channels.select_rows(batch[short]), k, block, 1
            )
            local = np.repeat(np.arange(num_local, dtype=np.int64), counts)
            keys = np.concatenate(
                [
                    local * num_cols + cols_flat,
                    (short[:, None] * num_cols + exact_idx).ravel(),
                ]
            )
            keys = np.unique(keys)
            cols_flat = keys % num_cols
            counts = np.bincount(keys // num_cols, minlength=num_local)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        top_i, top_v = rerank_pairs_topk(channels, batch, indptr, cols_flat, k)
        out_i.append(top_i)
        out_v.append(top_v)
    return np.concatenate(out_i, axis=0), np.concatenate(out_v, axis=0)


def ann_threshold_candidates(
    channels: CosineChannels,
    indexes: tuple[ChannelIVFIndex, ...],
    threshold: float,
    block: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All ``(row, col, value)`` with value ≥ threshold — **exact**, row-major.

    Unlike top-k, threshold queries admit rigorous pruning: on unit vectors
    ``dot(q, x) ≤ dot(q, c_j) + ‖x − c_j‖ ≤ dot(q, c_j) + radii[j]``, so a
    list whose bound is below the threshold cannot contain a qualifying
    column in *any* channel, and skipping it loses nothing.  Surviving lists
    are scored with contiguous per-list GEMMs and pre-filtered with
    ``_SCORE_SLACK`` of slack; only that thin boundary band is re-scored
    with ``pair_values`` and filtered exactly, matching the streamed scan's
    results for every knob setting (callers handle the implicit-zero channel
    of ``clip_at_zero`` by falling back when ``threshold <= 0``).
    """
    num_rows, num_cols = channels.shape
    rows_parts, cols_parts, vals_parts = [], [], []
    for rs in _as_blocks(num_rows, min(block, 1024)):
        batch = np.arange(rs.start, rs.stop, dtype=np.int64)
        key_parts = []
        for channel_idx, (pair, index) in enumerate(zip(channels.pairs, indexes)):
            queries = pair.left[batch]
            bound = queries @ index.centroids.T + index.radii[None, :]
            row_local, lists = np.nonzero(bound >= threshold)
            if row_local.size == 0:
                continue
            own_slab = index.vectors[channel_idx]
            uniq, starts, ends, rows_sorted = _group_by_list(row_local, lists)
            for j, gs, ge in zip(uniq, starts, ends):
                ls, le = int(index.indptr[j]), int(index.indptr[j + 1])
                if le == ls:
                    continue
                rows_j = rows_sorted[gs:ge]
                tile = queries[rows_j] @ own_slab[ls:le].T
                r, c = np.nonzero(tile >= threshold - _SCORE_SLACK)
                if r.size:
                    key_parts.append(rows_j[r] * num_cols + index.members[ls:le][c])
        if not key_parts:
            continue
        keys = np.unique(np.concatenate(key_parts))
        rows_local = keys // num_cols
        cols = keys % num_cols
        values = channels.pair_values(rows_local + rs.start, cols)
        keep = values >= threshold
        rows_parts.append(rows_local[keep] + rs.start)
        cols_parts.append(cols[keep])
        vals_parts.append(values[keep])
    if not rows_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=float)
    # per-block keys are sorted and blocks ascend, so this is row-major
    return (
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
    )


def topk_recall(
    exact_indices: np.ndarray,
    ann_indices: np.ndarray,
    exact_values: np.ndarray | None = None,
    ann_values: np.ndarray | None = None,
) -> float:
    """Top-``k`` recall of an ANN result against the exact one.

    Without values this is the classic index-set intersection fraction.
    With values it counts every ANN entry whose score reaches the row's
    exact ``k``-th value — the tie-robust definition: structurally identical
    columns produce *bitwise-equal* similarities here, and inside such a tie
    class the exact kernel's pick is an arbitrary (tile-layout dependent)
    representative set, so retrieving a different same-valued member is a
    hit, not a miss.  Both definitions coincide when the top-``k`` values
    are distinct.  The value comparison carries ``_SCORE_SLACK`` of
    tolerance: the exact reference values come from the tile kernel while
    ANN values come from ``pair_values``, and the two round differently in
    the last ulp.
    """
    if exact_indices.size == 0:
        return 1.0
    if exact_values is not None and ann_values is not None:
        kth = exact_values[:, -1][:, None]
        return float(np.sum(ann_values >= kth - _SCORE_SLACK)) / exact_indices.size
    hits = sum(
        np.intersect1d(exact_row, ann_row).size
        for exact_row, ann_row in zip(exact_indices, ann_indices)
    )
    return hits / exact_indices.size


@dataclass(frozen=True)
class AnnSearcher:
    """A frozen, self-contained ANN top-k searcher for serving views.

    Captures the channel factors, the index set and the calibrated probe
    width at export time, so a serving view keeps answering from the state
    it was frozen with even after the live engine's token moves on.
    """

    channels: CosineChannels
    indexes: tuple[ChannelIVFIndex, ...]
    nprobe: int
    block: int

    def top_k(self, row_ids: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        return ann_topk(self.channels, self.indexes, row_ids, k, self.nprobe, self.block)


# ---------------------------------------------------------------- the backend
class AnnBackend(StreamedChannelQueries, SimilarityBackend):
    """IVF-indexed similarity backend with exact re-rank and exact fallback.

    Per element kind and query direction the backend keeps one index set,
    cached under the engine's version token — a parameter step, snapshot
    refresh or landmark update invalidates it exactly like every other
    engine cache, so training loops never probe a stale index.  Everything
    the index cannot accelerate (slab queries, ``stream_blocks``, small
    similarities below ``min_index_cols``) inherits the exact streamed
    kernels from :class:`StreamedChannelQueries`.
    """

    name = "ann"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self.params: AnnParams = resolve_ann_params(getattr(engine, "ann_params", None))
        # (kind, transposed) -> (token, (indexes, nprobe) | None); None means
        # "exact fallback for this token" and is cached too (skip rebuilds)
        self._index_cache: dict[tuple, tuple[tuple, tuple | None]] = {}

    # -- streamed substrate --------------------------------------------------
    def _channels(self, kind: "ElementKind") -> CosineChannels:
        return self.engine.channels(kind)

    @property
    def _block(self) -> int:
        return self.engine.block_size

    @property
    def _workers(self) -> int:
        return self.engine.workers

    def _channels_cache_token(self, kind: "ElementKind"):
        return self.engine._token_for(kind)

    # -- index lifecycle -----------------------------------------------------
    def _index_for(self, kind: "ElementKind", transposed: bool = False):
        """The direction's ``(indexes, nprobe)`` (or None), token-cached."""
        token = self.engine._token_for(kind)
        key = (kind, transposed)
        entry = self._index_cache.get(key)
        if entry is not None and entry[0] == token:
            return entry[1]
        payload = self._build_index(kind, transposed)
        self._index_cache[key] = (token, payload)
        return payload

    def _direction_channels(self, kind: "ElementKind", transposed: bool) -> CosineChannels:
        return self._transposed_channels(kind) if transposed else self._channels(kind)

    def _effective_nlist(self, num_cols: int) -> int:
        nlist = self.params.nlist or max(1, int(round(math.sqrt(num_cols))))
        return min(nlist, num_cols)

    def _landmark_centroids(self, kind: "ElementKind", transposed: bool, pair: ChannelPair):
        """Initial centroids from the landmark entities' factor rows."""
        from repro.kg.elements import ElementKind

        if kind is not ElementKind.ENTITY:
            return None
        landmarks = getattr(self.engine.model, "_landmarks", None)
        if landmarks is None or landmarks.size == 0:
            return None
        side = np.unique(landmarks[:, 0 if transposed else 1])
        side = side[side < pair.right.shape[0]]
        return pair.right[side] if side.size else None

    def _build_index(self, kind: "ElementKind", transposed: bool):
        params = self.params
        channels = self._direction_channels(kind, transposed)
        num_cols = channels.num_cols
        if not channels.pairs or num_cols < params.min_index_cols:
            obs.counter(
                "ann.exact_fallbacks", kind=kind.value, reason="below_min_cols"
            ).inc()
            return None
        nlist = self._effective_nlist(num_cols)
        if params.nprobe >= nlist:
            obs.counter(
                "ann.exact_fallbacks", kind=kind.value, reason="full_probe"
            ).inc()
            return None  # probing everything = a slower full scan
        with obs.span(
            "ann.index.build", kind=kind.value, transposed=transposed, nlist=nlist
        ):
            slab_rights = tuple(pair.right for pair in channels.pairs)
            indexes = tuple(
                build_channel_index(
                    pair.right,
                    nlist,
                    params.kmeans_iters,
                    seed=[params.seed, channel_idx, int(transposed)],
                    initial=self._landmark_centroids(kind, transposed, pair),
                    slab_rights=slab_rights,
                )
                for channel_idx, pair in enumerate(channels.pairs)
            )
            nprobe = self._calibrate(channels, indexes, nlist, kind)
        if nprobe is None:
            obs.counter(
                "ann.exact_fallbacks", kind=kind.value, reason="calibration"
            ).inc()
            return None
        obs.counter("ann.index.builds", kind=kind.value).inc()
        return indexes, nprobe

    def _calibrate(
        self, channels, indexes, nlist: int, kind: "ElementKind | None" = None
    ) -> int | None:
        """Smallest power-of-two multiple of ``nprobe`` meeting ``min_recall``.

        Sampled rows are fixed (evenly spaced), the exact reference is one
        streamed top-k over the sample, and probing doubles until the sampled
        recall clears the floor.  Returns None when only a full probe would —
        the caller then serves the exact streamed path instead.
        """
        params = self.params
        num_rows = channels.num_rows
        take = min(params.calibration_rows, num_rows)
        sample = np.arange(num_rows, dtype=np.int64)[:: max(1, num_rows // take)][:take]
        k = min(_CALIBRATION_K, channels.num_cols)
        exact_idx, exact_val = stream_topk(
            channels.select_rows(sample), k, self._block, self._workers
        )
        nprobe = params.nprobe
        while nprobe < nlist:
            approx_idx, approx_val = ann_topk(
                channels, indexes, sample, k, nprobe, self._block
            )
            if topk_recall(exact_idx, approx_idx, exact_val, approx_val) >= params.min_recall:
                return nprobe
            obs.counter(
                "ann.nprobe.escalations",
                kind=kind.value if kind is not None else "ephemeral",
            ).inc()
            nprobe *= 2
        return None

    # -- accelerated queries ---------------------------------------------------
    def query_top_k(
        self, kind: "ElementKind", row_ids: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ``(indices, values)`` for a row subset (index-accelerated)."""
        payload = self._index_for(kind)
        channels = self._channels(kind)
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if payload is None:
            return stream_topk(
                channels.select_rows(row_ids), min(k, channels.num_cols),
                self._block, self._workers,
            )
        indexes, nprobe = payload
        return ann_topk(channels, indexes, row_ids, k, nprobe, self._block)

    def top_k_table(self, kind: "ElementKind", k: int) -> TopKTable:
        left = self._index_for(kind, transposed=False)
        right = self._index_for(kind, transposed=True)
        if left is None and right is None:
            return super().top_k_table(kind, k)
        channels = self._channels(kind)
        transposed = self._transposed_channels(kind)
        if left is None:
            left_idx, left_val = stream_topk(channels, k, self._block, self._workers)
        else:
            left_idx, left_val = ann_topk(
                channels, left[0], np.arange(channels.num_rows), k, left[1], self._block
            )
        if right is None:
            right_idx, right_val = stream_topk(transposed, k, self._block, self._workers)
        else:
            right_idx, right_val = ann_topk(
                transposed, right[0], np.arange(transposed.num_rows), k,
                right[1], self._block,
            )
        return TopKTable(left_idx, left_val, right_idx, right_val)

    def row_max(self, kind: "ElementKind") -> np.ndarray:
        payload = self._index_for(kind)
        if payload is None:
            return super().row_max(kind)
        channels = self._channels(kind)
        indexes, nprobe = payload
        _, values = ann_topk(
            channels, indexes, np.arange(channels.num_rows), 1, nprobe, self._block
        )
        return values[:, 0]

    def col_max(self, kind: "ElementKind") -> np.ndarray:
        payload = self._index_for(kind, transposed=True)
        if payload is None:
            return super().col_max(kind)
        transposed = self._transposed_channels(kind)
        indexes, nprobe = payload
        _, values = ann_topk(
            transposed, indexes, np.arange(transposed.num_rows), 1, nprobe, self._block
        )
        return values[:, 0]

    def row_col_max(self, kind: "ElementKind") -> tuple[np.ndarray, np.ndarray]:
        if self._index_for(kind) is None and self._index_for(kind, True) is None:
            return super().row_col_max(kind)  # one fused exact sweep
        return self.row_max(kind), self.col_max(kind)

    def threshold_candidates(
        self, kind: "ElementKind", threshold: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        payload = self._index_for(kind)
        channels = self._channels(kind)
        if payload is None or (channels.clip_at_zero and threshold <= 0):
            # clip_at_zero adds an implicit all-zero channel: at threshold<=0
            # every pair qualifies and pruning cannot help
            return super().threshold_candidates(kind, threshold)
        return ann_threshold_candidates(channels, payload[0], threshold, self._block)

    def mutual_top_n_pairs(
        self, left_factors: np.ndarray, right_factors: np.ndarray, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The pool's mutual top-N filter with ephemeral per-direction indexes."""
        channels = CosineChannels([ChannelPair.from_raw(left_factors, right_factors)])
        top_left = self._ephemeral_topn(channels, n, seed_tag=0)
        top_right = self._ephemeral_topn(channels.transpose(), n, seed_tag=1)
        return mutual_pairs_from_topn(top_left, top_right, self._block)

    def _ephemeral_topn(self, channels: CosineChannels, n: int, seed_tag: int) -> np.ndarray:
        params = self.params
        num_cols = channels.num_cols
        if num_cols < params.min_index_cols:
            return stream_topk(channels, n, self._block, self._workers)[0]
        nlist = self._effective_nlist(num_cols)
        if params.nprobe >= nlist:
            return stream_topk(channels, n, self._block, self._workers)[0]
        indexes = tuple(
            build_channel_index(
                pair.right, nlist, params.kmeans_iters,
                seed=[params.seed, channel_idx, 2 + seed_tag],
            )
            for channel_idx, pair in enumerate(channels.pairs)
        )
        nprobe = self._calibrate(channels, indexes, nlist)
        if nprobe is None:
            obs.counter("ann.exact_fallbacks", kind="ephemeral", reason="calibration").inc()
            return stream_topk(channels, n, self._block, self._workers)[0]
        obs.counter("ann.index.builds", kind="ephemeral").inc()
        return ann_topk(
            channels, indexes, np.arange(channels.num_rows), n, nprobe, self._block
        )[0]

    # -- serving -------------------------------------------------------------
    def view(self, kind: "ElementKind") -> SimilarityView:
        payload = self._index_for(kind)
        channels = self._channels(kind)
        if payload is None:
            return StreamedView(channels, block_size=self._block)
        indexes, nprobe = payload
        searcher = AnnSearcher(channels, indexes, nprobe, self._block)
        return AnnView(channels, block_size=self._block, core_search=searcher)
