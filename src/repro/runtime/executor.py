"""Campaign executors: serial / thread / process piece execution.

:class:`~repro.active.campaign.PartitionedCampaign` cuts a pair into
independent pieces; *this* module decides **where each piece's pipeline
actually runs**.  The contract has three parts:

1. **One runner, every backend.**  :func:`run_piece_spec` is a top-level,
   picklable function taking a self-contained :class:`PieceSpec` — the
   piece's dataset arrays (or a standard per-piece checkpoint to resume
   from), its config as JSON, its strategy name, and the directory to write
   its result checkpoint into.  The serial, thread and process executors all
   call *the same function*; the process backend merely calls it in a worker
   process.  A piece's result is always a standard
   :mod:`repro.persistence.checkpoint` directory, which the campaign folds
   back with the ordinary bit-exact restore path — so results can never
   depend on which backend produced them.

2. **Bit-exactness across backends and worker counts.**  Every piece is a
   pure function of ``(piece dataset, piece config)``: the per-piece seed is
   derived from ``(campaign seed, partition index)`` before the spec is
   built, checkpoint restore is bit-exact, and pieces share no mutable state
   (in-process backends rely on the thread-local grad mode and the
   lock-protected parameter version; the process backend shares nothing at
   all).  Serial, thread and process runs of the same campaign produce
   byte-identical merged payloads for any worker count.

3. **Crashes are per-piece, resumable failures.**  The runner converts any
   exception into a failed :class:`PieceOutcome` (and the process executor
   additionally absorbs hard worker deaths — ``BrokenProcessPool`` — the
   same way).  A failed piece simply has no result checkpoint: the campaign
   keeps its previous state for that piece, its next ``run()`` re-executes
   only the failed pieces, and a campaign checkpoint taken in between stays
   loadable.

Why a process backend at all: the training loops are GIL-bound pure-numpy
Python, so a thread pool cannot scale them — ``BENCH_partition.json``
measured 1 thread *beating* 4 (9.95s vs 12.13s).  Worker processes follow
the rank/world-size idiom of distributed inference (each rank computes its
shard and saves a per-rank artifact; the merge step folds artifacts in rank
order): a piece's ``index`` is its rank, the result checkpoint is its
per-rank artifact, and :class:`~repro.runtime.merge.MergedSimilarityState`
is the barrier-free fold.  Shipping specs to *remote* ranks instead of local
processes is the designed next step — nothing in a spec assumes a shared
process, only a shared filesystem for its directories.

Executor selection: ``PartitionConfig.executor`` (``"auto"`` picks the
process backend when the campaign has more than one piece, more than one
worker and more than one core), overridden per process by the
``REPRO_CAMPAIGN_EXECUTOR`` environment variable (see
:mod:`repro.kg.partition` for the resolution rules shared with the other
``REPRO_PARTITION_*`` knobs).
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

import repro.obs as obs
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle with active/core
    from repro.active.loop import ActiveLearningLoop
    from repro.core.daakg import DAAKG

logger = get_logger(__name__)

#: Concrete executor names (the ``"auto"`` config value resolves to one of
#: these through :func:`effective_executor_name`).
EXECUTOR_NAMES = ("serial", "thread", "process")

#: Fault-injection hook for crash-recovery tests: a comma-separated list of
#: piece indices whose runner raises instead of running — in whichever
#: process the runner executes (children inherit the environment).
POISON_ENV = "REPRO_CAMPAIGN_POISON"


def effective_executor_name(
    name: str, workers: int, num_partitions: int, cpu_count: int | None = None
) -> str:
    """Resolve a configured executor name (possibly ``"auto"``) to a concrete one.

    ``"auto"`` picks ``"process"`` when the campaign can actually use it —
    more than one piece, more than one worker, and more than one core —
    because the GIL-bound training loops gain nothing from threads.  With a
    single worker or a single piece there is nothing to parallelise
    (``"serial"``); on a single core the thread pool at least overlaps the
    occasional GIL-releasing numpy kernel without paying process spawn and
    checkpoint-transfer overhead (``"thread"``).
    """
    if name != "auto":
        if name not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown campaign executor {name!r} (choose from "
                f"{', '.join(EXECUTOR_NAMES)} or 'auto')"
            )
        return name
    if workers <= 1 or num_partitions <= 1:
        return "serial"
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return "process" if cores > 1 else "thread"


# ---------------------------------------------------------------------- specs
@dataclass
class PieceSpec:
    """Everything one piece's runner needs, with no live-object references.

    A spec is picklable by construction (ints, strings, plain dicts of numpy
    arrays), so it crosses the process boundary — and, by design, could
    cross a machine boundary given a shared filesystem.  Exactly one of
    ``dataset_arrays`` (fresh piece: build the pipeline from the encoded
    pair) and ``checkpoint_dir`` (started piece: bit-exact restore, then
    continue) is set.
    """

    index: int
    config_json: str
    strategy: str
    output_dir: str
    active_config: dict | None = None
    max_batches: int | None = None
    dataset_arrays: dict[str, np.ndarray] | None = None
    checkpoint_dir: str | None = None
    # warm start (incremental updates): a checkpoint of the piece's pipeline
    # from *before* its pair changed.  The runner builds a fresh pipeline
    # from ``dataset_arrays`` and transplants every compatible parameter
    # from this checkpoint by vocabulary name before fitting.
    warm_start_dir: str | None = None
    # observability opt-in: the campaign stamps ``obs.enabled()`` here, so a
    # worker process (which does not share the parent's in-process flag)
    # knows to collect a piece-scoped metrics/trace state and serialise it
    # into ``output_dir`` alongside the result checkpoint
    obs: bool = False

    def __post_init__(self) -> None:
        if (self.dataset_arrays is None) == (self.checkpoint_dir is None):
            raise ValueError(
                "a piece spec carries exactly one of dataset_arrays "
                "(fresh piece) and checkpoint_dir (resumed piece)"
            )
        if self.warm_start_dir is not None and self.dataset_arrays is None:
            raise ValueError(
                "warm_start_dir requires dataset_arrays (a warm start builds "
                "a fresh pipeline on the updated pair, then transplants)"
            )


@dataclass
class PieceOutcome:
    """What one runner invocation produced (or failed to)."""

    index: int
    status: str  # "completed" | "failed"
    seconds: float
    output_dir: str | None = None
    error: str | None = None
    traceback: str | None = None

    @property
    def completed(self) -> bool:
        return self.status == "completed"


# --------------------------------------------------------------------- runner
def _check_poison(index: int) -> None:
    raw = os.environ.get(POISON_ENV, "").strip()
    if not raw:
        return
    if str(index) in {token.strip() for token in raw.split(",")}:
        raise RuntimeError(f"piece {index} poisoned via {POISON_ENV}")


def _materialize_piece(spec: PieceSpec) -> "tuple[DAAKG, ActiveLearningLoop]":
    """Build or restore the piece's pipeline + loop described by ``spec``."""
    from repro.active.loop import ActiveLearningConfig  # circular at module level
    from repro.core.config import DAAKGConfig, config_from_dict
    from repro.core.daakg import DAAKG
    from repro.persistence.checkpoint import (
        load_checkpoint,
        restore_loop,
        restore_pipeline,
    )
    from repro.persistence.codec import pair_from_arrays

    if spec.checkpoint_dir is not None:
        checkpoint = load_checkpoint(spec.checkpoint_dir)
        if checkpoint.has_loop:
            loop = restore_loop(checkpoint)
            return loop.daakg, loop
        pipeline = restore_pipeline(checkpoint)
    else:
        pair = pair_from_arrays("dataset", spec.dataset_arrays)
        pipeline = DAAKG(pair, DAAKGConfig.from_json(spec.config_json))
        if spec.warm_start_dir is not None:
            from repro.updates.warm_start import warm_start_pipeline

            counts = warm_start_pipeline(pipeline, load_checkpoint(spec.warm_start_dir))
            logger.info(
                "piece %d warm-started: %d copied, %d row-mapped, %d fresh",
                spec.index, counts["copied"], counts["row_mapped"], counts["fresh"],
            )
    active_config = (
        config_from_dict(ActiveLearningConfig, spec.active_config)
        if spec.active_config is not None
        else None
    )
    loop = pipeline.active_learning(spec.strategy, active_config)
    return pipeline, loop


#: Per-piece observability artifact, written next to the result checkpoint.
PIECE_OBS_FILENAME = "obs.json"


def write_piece_obs(output_dir: str, state: "obs.ObsState") -> None:
    """Serialise a piece-scoped obs state into the piece's output directory.

    Written for completed *and* failed pieces (a failed piece has no result
    checkpoint, but its lifecycle telemetry is exactly what debugging
    needs), so the directory may not exist yet.
    """
    os.makedirs(output_dir, exist_ok=True)
    payload = {
        "snapshot": state.registry.snapshot(),
        "events": state.trace.events(),
    }
    with open(os.path.join(output_dir, PIECE_OBS_FILENAME), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


def load_piece_obs(output_dir: str | None) -> dict | None:
    """The piece's serialised obs payload, or None when absent/unreadable."""
    if not output_dir:
        return None
    path = os.path.join(output_dir, PIECE_OBS_FILENAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def run_piece_spec(spec: PieceSpec) -> PieceOutcome:
    """Run one piece end to end; every executor backend calls exactly this.

    Materialises the piece (fresh build or bit-exact restore), fits the
    pipeline if needed, runs the active loop (``max_batches`` caps *new*
    batches, the same semantics as :meth:`ActiveLearningLoop.run`), and
    writes a standard per-piece checkpoint into ``spec.output_dir`` — the
    per-rank artifact the campaign's merge layer folds in unchanged.

    When ``spec.obs`` is set, the whole run executes inside a fresh
    piece-scoped :class:`repro.obs.ObsState`; its metrics snapshot and trace
    events (including the started/finished/failed lifecycle events) are
    serialised into ``spec.output_dir`` for the campaign to fold back —
    metrics cross the process boundary exactly like checkpoints do.

    Never raises: any exception (including injected poison) becomes a failed
    :class:`PieceOutcome`, leaving the campaign resumable.
    """
    from repro.persistence.checkpoint import save_checkpoint  # circular at module level

    start = time.perf_counter()
    with obs.scoped(spec.obs) as obs_state:
        obs.event("executor.piece.started", piece=spec.index, pid=os.getpid())
        try:
            with obs.span("executor.piece", piece=spec.index):
                _check_poison(spec.index)
                pipeline, loop = _materialize_piece(spec)
                if not pipeline.is_fitted:
                    pipeline.fit()
                loop.run(spec.max_batches)
                save_checkpoint(spec.output_dir, pipeline, loop=loop)
            seconds = time.perf_counter() - start
            logger.info(
                "piece %d done in %.2fs (%d records, pid %d)",
                spec.index,
                seconds,
                len(loop.records),
                os.getpid(),
            )
            outcome = PieceOutcome(
                index=spec.index,
                status="completed",
                seconds=seconds,
                output_dir=spec.output_dir,
            )
        except Exception as exc:  # surfaced as a resumable per-piece failure
            seconds = time.perf_counter() - start
            logger.warning("piece %d failed after %.2fs: %s", spec.index, seconds, exc)
            outcome = PieceOutcome(
                index=spec.index,
                status="failed",
                seconds=seconds,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(),
            )
        obs.counter("executor.pieces.total", status=outcome.status).inc()
        obs.histogram("executor.piece.seconds").observe(outcome.seconds)
        obs.event(
            "executor.piece.finished" if outcome.completed else "executor.piece.failed",
            piece=spec.index,
            seconds=outcome.seconds,
            pid=os.getpid(),
        )
        if obs_state is not None:
            try:
                write_piece_obs(spec.output_dir, obs_state)
            except OSError:  # telemetry must never fail a piece
                logger.warning("piece %d could not write its obs artifact", spec.index)
    return outcome


# ------------------------------------------------------------------ executors
@runtime_checkable
class CampaignExecutor(Protocol):
    """Where piece specs run: the only seam between campaign and hardware."""

    name: str
    workers: int

    def execute(self, specs: Sequence[PieceSpec]) -> list[PieceOutcome]:
        """Run every spec (in spec order in the result), absorbing failures."""
        ...  # pragma: no cover - protocol


@dataclass
class SerialExecutor:
    """Pieces run one after another in the calling thread (workers ignored)."""

    workers: int = 1
    name: str = field(default="serial", init=False)

    def execute(self, specs: Sequence[PieceSpec]) -> list[PieceOutcome]:
        return [run_piece_spec(spec) for spec in specs]


@dataclass
class ThreadExecutor:
    """The historical backend: a thread pool over the same runner.

    Threads only overlap where numpy releases the GIL, so this backend is
    mostly useful on a single core or for IO-dominated pieces; it exists so
    the executor sweep can measure exactly what the process backend buys.
    """

    workers: int = 2
    name: str = field(default="thread", init=False)

    def execute(self, specs: Sequence[PieceSpec]) -> list[PieceOutcome]:
        if len(specs) <= 1 or self.workers <= 1:
            return [run_piece_spec(spec) for spec in specs]
        with ThreadPoolExecutor(max_workers=min(self.workers, len(specs))) as pool:
            return list(pool.map(run_piece_spec, specs))


@dataclass
class ProcessExecutor:
    """Worker processes — the backend that actually breaks the GIL.

    Each piece spec is shipped (pickled) to a worker process that runs the
    shared :func:`run_piece_spec` and leaves its result checkpoint on disk;
    the parent only collects outcomes.  A worker dying hard (OOM kill,
    segfault — ``BrokenProcessPool``) fails the pieces that were in flight
    instead of raising through the campaign, keeping the same
    resumable-failure contract as an in-runner exception.
    """

    workers: int = 2
    name: str = field(default="process", init=False)

    def execute(self, specs: Sequence[PieceSpec]) -> list[PieceOutcome]:
        if not specs:
            return []
        outcomes: list[PieceOutcome] = []
        with ProcessPoolExecutor(max_workers=min(self.workers, len(specs))) as pool:
            futures: list[tuple[PieceSpec, Future]] = [
                (spec, pool.submit(run_piece_spec, spec)) for spec in specs
            ]
            for spec, future in futures:
                try:
                    outcomes.append(future.result())
                except Exception as exc:  # worker died before returning an outcome
                    logger.warning("piece %d lost its worker: %s", spec.index, exc)
                    outcomes.append(
                        PieceOutcome(
                            index=spec.index,
                            status="failed",
                            seconds=0.0,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
        return outcomes


def create_executor(name: str, workers: int = 1) -> CampaignExecutor:
    """Instantiate a concrete executor backend by name."""
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(workers=max(1, workers))
    if name == "process":
        return ProcessExecutor(workers=max(1, workers))
    raise ValueError(
        f"unknown campaign executor {name!r} (choose from {', '.join(EXECUTOR_NAMES)})"
    )
