"""Frozen, appendable similarity views for the serving layer.

``SimilarityEngine.export_state`` hands the :class:`AlignmentService` one
view per element kind.  A view answers the four serving query shapes —
``rows`` / ``cols`` slabs, aligned-pair ``gather``, and ``top_k_for_rows`` —
and supports the incremental fold-in by *returning a new view* with one row
or column appended (views are immutable, matching the service's
atomic-snapshot-swap design).

* :class:`DenseView` wraps a full matrix; appends concatenate, queries slice.
* :class:`StreamedView` wraps the sharded backend's
  :class:`~repro.runtime.streaming.CosineChannels` plus two small *tail*
  arrays holding everything folded in after the freeze: ``tail_cols`` are the
  folded columns restricted to the core rows (``(R₀, c)``), ``tail_rows`` the
  folded rows over the full current width (``(r, C₀ + c)``).  The logical
  matrix is::

      [ core (streamed)   tail_cols ]
      [ tail_rows (dense, full width) ]

  so serving memory stays ``O(N·d + folds·N)`` — the frozen ``N×M`` matrix is
  never built.  Folded entries are *dense by construction* (the service
  computes each appended row/column explicitly), which keeps fold-in values
  identical between the two view kinds.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.streaming import CosineChannels, _as_blocks, canonical_topk
from repro.utils.math import top_k_rows


class SimilarityView:
    """Query surface shared by both view kinds."""

    backend_kind: str = "abstract"

    @property
    def num_rows(self) -> int:
        raise NotImplementedError

    @property
    def num_cols(self) -> int:
        raise NotImplementedError

    def rows(self, indices: np.ndarray) -> np.ndarray:
        """Full-width slab of the selected rows, ``(len(indices), num_cols)``."""
        raise NotImplementedError

    def cols(self, indices: np.ndarray) -> np.ndarray:
        """Full-height slab of the selected columns, ``(num_rows, len(indices))``."""
        raise NotImplementedError

    def gather(self, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
        """``S[lefts[i], rights[i]]`` for aligned index arrays."""
        raise NotImplementedError

    def top_k_for_rows(self, indices: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Per selected row: top-``k`` column ``(indices, values)``, descending."""
        slab = self.rows(indices)
        k = min(k, slab.shape[1])
        top = top_k_rows(slab, k)
        return top, slab[np.arange(slab.shape[0])[:, None], top]

    def append_col(self, column: np.ndarray) -> "SimilarityView":
        """A new view with ``column`` (length ``num_rows``) appended on the right."""
        raise NotImplementedError

    def append_row(self, row: np.ndarray) -> "SimilarityView":
        """A new view with ``row`` (length ``num_cols``) appended at the bottom."""
        raise NotImplementedError


class DenseView(SimilarityView):
    """A full similarity matrix: queries are slices, appends concatenate."""

    backend_kind = "dense"

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix

    @property
    def num_rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_cols(self) -> int:
        return self.matrix.shape[1]

    def rows(self, indices):
        return self.matrix[np.asarray(indices, dtype=np.int64)]

    def cols(self, indices):
        return self.matrix[:, np.asarray(indices, dtype=np.int64)]

    def gather(self, lefts, rights):
        return self.matrix[
            np.asarray(lefts, dtype=np.int64), np.asarray(rights, dtype=np.int64)
        ]

    def append_col(self, column):
        return DenseView(np.concatenate([self.matrix, np.asarray(column)[:, None]], axis=1))

    def append_row(self, row):
        return DenseView(np.concatenate([self.matrix, np.asarray(row)[None, :]], axis=0))


class StreamedView(SimilarityView):
    """Factored core + dense fold-in tails; never materialises the core matrix."""

    backend_kind = "sharded"

    def __init__(
        self,
        channels: CosineChannels,
        block_size: int,
        tail_rows: np.ndarray | None = None,
        tail_cols: np.ndarray | None = None,
    ) -> None:
        self.channels = channels
        self.block_size = block_size
        core_rows, core_cols = channels.shape
        self.tail_cols = (
            tail_cols if tail_cols is not None else np.empty((core_rows, 0))
        )
        self.tail_rows = (
            tail_rows if tail_rows is not None else np.empty((0, core_cols))
        )

    @property
    def _core_rows(self) -> int:
        return self.channels.num_rows

    @property
    def _core_cols(self) -> int:
        return self.channels.num_cols

    @property
    def num_rows(self) -> int:
        return self._core_rows + self.tail_rows.shape[0]

    @property
    def num_cols(self) -> int:
        return self._core_cols + self.tail_cols.shape[1]

    def rows(self, indices):
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((indices.shape[0], self.num_cols))
        core_mask = indices < self._core_rows
        if np.any(core_mask):
            core_idx = indices[core_mask]
            core_pos = np.nonzero(core_mask)[0]
            for cs in _as_blocks(self._core_cols, self.block_size):
                out[core_pos, cs.start : cs.stop] = self.channels.tile(core_idx, cs)
            out[core_pos, self._core_cols :] = self.tail_cols[core_idx]
        if not np.all(core_mask):
            out[~core_mask] = self.tail_rows[indices[~core_mask] - self._core_rows]
        return out

    def cols(self, indices):
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((self.num_rows, indices.shape[0]))
        core_mask = indices < self._core_cols
        if np.any(core_mask):
            core_idx = indices[core_mask]
            core_pos = np.nonzero(core_mask)[0]
            for rs in _as_blocks(self._core_rows, self.block_size):
                out[rs.start : rs.stop, core_pos] = self.channels.tile(rs, core_idx)
        if not np.all(core_mask):
            out[: self._core_rows, ~core_mask] = self.tail_cols[
                :, indices[~core_mask] - self._core_cols
            ]
        if self.tail_rows.shape[0]:
            out[self._core_rows :] = self.tail_rows[:, indices]
        return out

    def gather(self, lefts, rights):
        lefts = np.asarray(lefts, dtype=np.int64)
        rights = np.asarray(rights, dtype=np.int64)
        out = np.empty(lefts.shape[0])
        in_tail_row = lefts >= self._core_rows
        in_tail_col = ~in_tail_row & (rights >= self._core_cols)
        core = ~in_tail_row & ~in_tail_col
        if np.any(core):
            out[core] = self.channels.pair_values(lefts[core], rights[core])
        if np.any(in_tail_col):
            out[in_tail_col] = self.tail_cols[
                lefts[in_tail_col], rights[in_tail_col] - self._core_cols
            ]
        if np.any(in_tail_row):
            out[in_tail_row] = self.tail_rows[
                lefts[in_tail_row] - self._core_rows, rights[in_tail_row]
            ]
        return out

    def append_col(self, column):
        column = np.asarray(column, dtype=float)
        if column.shape[0] != self.num_rows:
            raise ValueError("appended column must cover every current row")
        tail_cols = np.concatenate(
            [self.tail_cols, column[: self._core_rows, None]], axis=1
        )
        tail_rows = np.concatenate(
            [self.tail_rows, column[self._core_rows :, None]], axis=1
        )
        return StreamedView(self.channels, self.block_size, tail_rows, tail_cols)

    def append_row(self, row):
        row = np.asarray(row, dtype=float)
        if row.shape[0] != self.num_cols:
            raise ValueError("appended row must cover every current column")
        tail_rows = np.concatenate([self.tail_rows, row[None, :]], axis=0)
        return StreamedView(self.channels, self.block_size, tail_rows, self.tail_cols)


class AnnView(StreamedView):
    """A streamed view whose core top-k queries go through an ANN searcher.

    ``core_search`` is a frozen :class:`~repro.runtime.ann.AnnSearcher`
    captured at export time — a pure function of the frozen channels, index
    set and calibrated probe width — so the view keeps the immutability
    contract even while the live backend rebuilds its indexes.  Fold-in
    stays exact by construction: appended tail columns are merged into every
    core row's ANN result through the canonical top-k merge, and appended
    tail rows (dense, full width) are scanned exactly; slab/``gather``
    queries are inherited from :class:`StreamedView` unchanged.
    """

    backend_kind = "ann"

    def __init__(
        self,
        channels: CosineChannels,
        block_size: int,
        core_search,
        tail_rows: np.ndarray | None = None,
        tail_cols: np.ndarray | None = None,
    ) -> None:
        super().__init__(channels, block_size, tail_rows, tail_cols)
        self.core_search = core_search

    def top_k_for_rows(self, indices, k):
        indices = np.asarray(indices, dtype=np.int64)
        k = min(k, self.num_cols)
        out_idx = np.empty((indices.shape[0], k), dtype=np.int64)
        out_val = np.empty((indices.shape[0], k))
        core_mask = indices < self._core_rows
        if np.any(core_mask):
            core_idx = indices[core_mask]
            core_pos = np.nonzero(core_mask)[0]
            found_idx, found_val = self.core_search.top_k(
                core_idx, min(k, self._core_cols)
            )
            num_tail = self.tail_cols.shape[1]
            if num_tail:
                tail_val = self.tail_cols[core_idx]
                tail_idx = np.broadcast_to(
                    self._core_cols + np.arange(num_tail, dtype=np.int64),
                    tail_val.shape,
                )
                merged_val, merged_idx = canonical_topk(
                    np.concatenate([found_val, tail_val], axis=1),
                    np.concatenate([found_idx, tail_idx], axis=1),
                    k,
                )
            else:
                merged_val, merged_idx = found_val[:, :k], found_idx[:, :k]
            out_idx[core_pos] = merged_idx
            out_val[core_pos] = merged_val
        if not np.all(core_mask):
            tail = self.tail_rows[indices[~core_mask] - self._core_rows]
            tail_pos = np.nonzero(~core_mask)[0]
            top = top_k_rows(tail, k)
            out_idx[tail_pos] = top
            out_val[tail_pos] = tail[np.arange(tail.shape[0])[:, None], top]
        return out_idx, out_val

    def append_col(self, column):
        appended = super().append_col(column)
        return AnnView(
            self.channels,
            self.block_size,
            self.core_search,
            appended.tail_rows,
            appended.tail_cols,
        )

    def append_row(self, row):
        appended = super().append_row(row)
        return AnnView(
            self.channels,
            self.block_size,
            self.core_search,
            appended.tail_rows,
            appended.tail_cols,
        )
