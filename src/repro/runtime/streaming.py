"""Streaming factored-cosine kernels: tiles, running top-k, mutual top-N.

Every similarity matrix in this codebase is an element-wise maximum of
*factored cosines*: ``S = max_c  A_c · B_cᵀ`` where ``A_c`` / ``B_c`` are
row-normalised factor matrices (the mapped embedding channel, the structural
propagation features, the mean-embedding channels).  That factorisation is
what makes a streaming runtime possible at all: any ``rows × cols`` tile of
``S`` can be produced from ``O((rows + cols) · d)`` factor state without ever
materialising the ``N × M`` matrix.

This module hosts the backend-agnostic kernels:

* :class:`CosineChannels` — a similarity matrix *described* by its channel
  factors; knows how to produce arbitrary tiles.
* :func:`stream_topk` — per-row running top-``k`` over column blocks with a
  canonical merge (value descending, column index ascending), optionally
  parallelised over row shards.  Row shards are independent, so the merge
  order — and therefore the result — is deterministic for any worker count.
* :func:`stream_row_max` — streamed per-row maximum (exact: ``max`` is
  order-independent, so worker count cannot change the result).
* :func:`mutual_top_n` — the pool's mutual top-N filter from two streamed
  top-N passes plus a vectorised membership check; peak memory is
  ``O(block² + (N + M)·n)`` instead of the dense ``O(N·M)`` boolean masks.

Tie-breaking: selected candidates are always ordered canonically (*value
descending, then column index ascending*); exact ties at a selection
boundary are resolved the way ``np.argpartition`` partitions them —
arbitrary but deterministic, exactly like the dense path's own
``argpartition``.  The two paths therefore agree whenever the competing
values are distinct, which holds for learned embeddings in practice (exact
ties only occur between structurally identical rows).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.utils.math import safe_l2_normalize

DEFAULT_STREAM_BLOCK = 1024


def _as_blocks(n: int, block: int):
    """Yield ``slice`` objects covering ``range(n)`` in ``block``-sized steps."""
    for start in range(0, n, block):
        yield slice(start, min(start + block, n))


@dataclass(frozen=True)
class ChannelPair:
    """One cosine channel: row-normalised left and right factor matrices."""

    left: np.ndarray  # (N, d), unit rows (zero rows stay exactly zero)
    right: np.ndarray  # (M, d), unit rows

    @classmethod
    def from_raw(cls, left: np.ndarray, right: np.ndarray) -> "ChannelPair":
        """Normalise raw factors; zero-norm rows yield exactly-zero similarity."""
        return cls(safe_l2_normalize(left), safe_l2_normalize(right))


class CosineChannels:
    """A similarity matrix described as ``max`` over factored cosine channels.

    ``clip_at_zero`` adds an implicit all-zero channel — it reproduces the
    dense path's ``np.maximum(embedding_channel, zeros)`` when the structural
    channel exists but has no landmarks yet.

    ``shape`` must be given explicitly when there are no channels (e.g. the
    class similarity of a KG pair without classes), and otherwise defaults to
    the factor shapes.
    """

    def __init__(
        self,
        pairs: list[ChannelPair],
        shape: tuple[int, int] | None = None,
        clip_at_zero: bool = False,
    ) -> None:
        if not pairs and shape is None:
            raise ValueError("CosineChannels without channels needs an explicit shape")
        self.pairs = list(pairs)
        self.clip_at_zero = clip_at_zero
        if shape is None:
            shape = (pairs[0].left.shape[0], pairs[0].right.shape[0])
        self.shape = shape
        for pair in self.pairs:
            if (pair.left.shape[0], pair.right.shape[0]) != shape:
                raise ValueError("all channels must share the similarity shape")

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    def transpose(self) -> "CosineChannels":
        """The same similarity with rows and columns swapped (for column queries)."""
        return CosineChannels(
            [ChannelPair(p.right, p.left) for p in self.pairs],
            shape=(self.shape[1], self.shape[0]),
            clip_at_zero=self.clip_at_zero,
        )

    def select_rows(self, indices: np.ndarray) -> "CosineChannels":
        """The sub-similarity restricted to ``indices`` rows, gathered once.

        Row-slab queries sweep many column blocks over the same row subset;
        gathering the left factors up front (one fancy-index copy per
        channel) lets every subsequent :meth:`tile` call slice instead of
        re-gathering per block.
        """
        indices = np.asarray(indices, dtype=np.int64)
        return CosineChannels(
            [ChannelPair(p.left[indices], p.right) for p in self.pairs],
            shape=(indices.shape[0], self.shape[1]),
            clip_at_zero=self.clip_at_zero,
        )

    def select_cols(self, indices: np.ndarray) -> "CosineChannels":
        """The sub-similarity restricted to ``indices`` columns, gathered once."""
        indices = np.asarray(indices, dtype=np.int64)
        return CosineChannels(
            [ChannelPair(p.left, p.right[indices]) for p in self.pairs],
            shape=(self.shape[0], indices.shape[0]),
            clip_at_zero=self.clip_at_zero,
        )

    def tile(self, rows, cols) -> np.ndarray:
        """The similarity tile at ``rows × cols`` (slices or index arrays)."""
        n_rows = _selection_length(rows, self.num_rows)
        n_cols = _selection_length(cols, self.num_cols)
        if not self.pairs:
            return np.zeros((n_rows, n_cols))
        out = self.pairs[0].left[rows] @ self.pairs[0].right[cols].T
        for pair in self.pairs[1:]:
            np.maximum(out, pair.left[rows] @ pair.right[cols].T, out=out)
        if self.clip_at_zero:
            np.maximum(out, 0.0, out=out)
        return out

    def pair_values(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """``S[rows[i], cols[i]]`` for aligned index arrays (O(n·d), no tile)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if not self.pairs:
            return np.zeros(rows.shape, dtype=float)
        out = np.einsum("ij,ij->i", self.pairs[0].left[rows], self.pairs[0].right[cols])
        for pair in self.pairs[1:]:
            np.maximum(out, np.einsum("ij,ij->i", pair.left[rows], pair.right[cols]), out=out)
        if self.clip_at_zero:
            np.maximum(out, 0.0, out=out)
        return out


def _selection_length(selection, full: int) -> int:
    if isinstance(selection, slice):
        return len(range(*selection.indices(full)))
    return len(np.asarray(selection))


# ------------------------------------------------------------------ top-k
def canonical_topk(values: np.ndarray, indices: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` of candidate (value, index) pairs, canonical order.

    Canonical order is value descending then index ascending; implemented as
    a stable sort by index followed by a stable sort by negated value, so
    equal values keep index-ascending order.  Returns ``(values, indices)``
    arrays of shape ``(rows, min(k, candidates))``.
    """
    k = min(k, values.shape[1])
    if k <= 0 or values.size == 0:
        empty_v = np.empty((values.shape[0], max(k, 0)), dtype=float)
        empty_i = np.empty((values.shape[0], max(k, 0)), dtype=np.int64)
        return empty_v, empty_i
    r = np.arange(values.shape[0])[:, None]
    by_index = np.argsort(indices, axis=1, kind="stable")
    v = values[r, by_index]
    i = indices[r, by_index]
    by_value = np.argsort(-v, axis=1, kind="stable")[:, :k]
    return v[r, by_value], i[r, by_value].astype(np.int64)


def _tile_topk(tile: np.ndarray, col_start: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-``k`` of one tile: argpartition to ``k``, then canonical ordering.

    ``argpartition`` keeps the per-row cost O(W + k log k) instead of the
    O(W log W) of a full sort — this is the hot inner loop of the sharded
    top-k pass.  Exact ties *at the selection boundary* are resolved the way
    argpartition happens to partition them (deterministic for a given tile,
    like the dense path's own argpartition); among the selected candidates
    the ordering is canonical (value descending, index ascending).
    """
    k = min(k, tile.shape[1])
    r = np.arange(tile.shape[0])[:, None]
    if k >= tile.shape[1]:
        picked = np.broadcast_to(np.arange(tile.shape[1]), tile.shape)
    else:
        picked = np.argpartition(-tile, k - 1, axis=1)[:, :k]
    return canonical_topk(tile[r, picked], (picked + col_start).astype(np.int64), k)


def _shard_topk(channels: CosineChannels, rows, k: int, block: int) -> tuple[np.ndarray, np.ndarray]:
    """Running top-``k`` for one shard of rows, merging per column block."""
    n_cols = channels.num_cols
    n_rows = _selection_length(rows, channels.num_rows)
    best_v = np.empty((n_rows, 0), dtype=float)
    best_i = np.empty((n_rows, 0), dtype=np.int64)
    for cs in _as_blocks(n_cols, block):
        tile = channels.tile(rows, cs)
        tile_v, tile_i = _tile_topk(tile, cs.start, k)
        if best_v.shape[1] == 0:
            best_v, best_i = tile_v, tile_i
            continue
        best_v, best_i = canonical_topk(
            np.concatenate([best_v, tile_v], axis=1),
            np.concatenate([best_i, tile_i], axis=1),
            k,
        )
    return best_v, best_i


def _map_row_shards(fn, n_rows: int, block: int, workers: int) -> list:
    shards = list(_as_blocks(n_rows, block))
    if workers <= 1 or len(shards) <= 1:
        return [fn(shard) for shard in shards]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, shards))


def stream_topk(
    channels: CosineChannels,
    k: int,
    block: int = DEFAULT_STREAM_BLOCK,
    workers: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` ``(indices, values)`` without materialising the matrix.

    Peak memory is ``O(block² + rows·k)``.  Rows are sharded over workers;
    each row's result is computed entirely within its shard, so the output is
    identical for every worker count.
    """
    n_rows, n_cols = channels.shape
    k = min(k, n_cols)
    if k <= 0 or n_rows == 0:
        return (
            np.empty((n_rows, max(k, 0)), dtype=np.int64),
            np.empty((n_rows, max(k, 0)), dtype=float),
        )
    parts = _map_row_shards(lambda rs: _shard_topk(channels, rs, k, block), n_rows, block, workers)
    values = np.concatenate([p[0] for p in parts], axis=0)
    indices = np.concatenate([p[1] for p in parts], axis=0)
    return indices, values


def stream_row_max(
    channels: CosineChannels, block: int = DEFAULT_STREAM_BLOCK, workers: int = 1
) -> np.ndarray:
    """Per-row maximum, streamed (exact — ``max`` is order-independent)."""
    n_rows, n_cols = channels.shape
    if n_rows == 0 or n_cols == 0:
        return np.zeros(n_rows)

    def shard(rs: slice) -> np.ndarray:
        best = np.full(_selection_length(rs, n_rows), -np.inf)
        for cs in _as_blocks(n_cols, block):
            np.maximum(best, channels.tile(rs, cs).max(axis=1), out=best)
        return best

    return np.concatenate(_map_row_shards(shard, n_rows, block, workers))


def stream_row_col_max(
    channels: CosineChannels, block: int = DEFAULT_STREAM_BLOCK, workers: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row *and* per-column maxima from one fused tile sweep.

    Tiles are the expensive part of every streamed kernel; when a consumer
    needs both directions (dangling-entity weights, pool evidence weights)
    this computes each tile once instead of twice.  ``max`` is exact and
    order-independent, so per-shard column partials reduce deterministically
    for any worker count and the result equals two separate sweeps
    bit-for-bit.
    """
    n_rows, n_cols = channels.shape
    if n_rows == 0 or n_cols == 0:
        return np.zeros(n_rows), np.zeros(n_cols)

    def shard(rs: slice):
        row_best = np.full(_selection_length(rs, n_rows), -np.inf)
        col_best = np.full(n_cols, -np.inf)
        for cs in _as_blocks(n_cols, block):
            tile = channels.tile(rs, cs)
            np.maximum(row_best, tile.max(axis=1), out=row_best)
            np.maximum(col_best[cs], tile.max(axis=0), out=col_best[cs])
        return row_best, col_best

    parts = _map_row_shards(shard, n_rows, block, workers)
    col_max = parts[0][1]
    for _, col_part in parts[1:]:
        np.maximum(col_max, col_part, out=col_max)
    return np.concatenate([p[0] for p in parts]), col_max


def collect_threshold_candidates(
    tiles, threshold: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(rows, cols, values)`` with value ≥ threshold from tile triples.

    ``tiles`` yields ``(row_slice, col_slice, tile)`` covering disjoint
    regions (any backend's ``stream_blocks``, or one shard's column sweep).
    The result is sorted row-major (row ascending, then column ascending) —
    the order ``np.where`` yields on the dense matrix — so downstream
    greedy/conflict resolution behaves identically to the dense path even
    under score ties.  This is the single implementation of the threshold
    scan; semi-supervised mining and streamed greedy matching both use it.
    """
    rows_parts, cols_parts, vals_parts = [], [], []
    for rs, cs, tile in tiles:
        local_r, local_c = np.where(tile >= threshold)
        if local_r.size:
            rows_parts.append(local_r + rs.start)
            cols_parts.append(local_c + cs.start)
            vals_parts.append(tile[local_r, local_c])
    if not rows_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=float)
    r = np.concatenate(rows_parts)
    c = np.concatenate(cols_parts)
    v = np.concatenate(vals_parts)
    order = np.lexsort((c, r))
    return r[order], c[order], v[order]


def stream_threshold_candidates(
    channels: CosineChannels,
    threshold: float,
    block: int = DEFAULT_STREAM_BLOCK,
    workers: int = 1,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All ``(row, col, value)`` entries with value ≥ threshold, row-major order.

    Streams :func:`collect_threshold_candidates` over row shards; shard
    results are concatenated in shard order, preserving global row-major
    order for any worker count.
    """
    n_rows, n_cols = channels.shape

    def shard(rs: slice):
        return collect_threshold_candidates(
            ((rs, cs, channels.tile(rs, cs)) for cs in _as_blocks(n_cols, block)),
            threshold,
        )

    if n_rows == 0 or n_cols == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=float)
    parts = _map_row_shards(shard, n_rows, block, workers)
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
    )


# ------------------------------------------------- candidate-restricted top-k
def rerank_pairs_topk(
    channels: CosineChannels,
    row_ids: np.ndarray,
    indptr: np.ndarray,
    candidate_cols: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` over per-row *candidate lists* (the ANN re-rank kernel).

    ``row_ids[i]``'s candidates are ``candidate_cols[indptr[i]:indptr[i+1]]``
    (global column ids, ascending).  Both the ranking scores and the returned
    values come from :meth:`CosineChannels.pair_values` — the same exact
    kernel the serving views' ``gather`` uses — which is batch-composition
    invariant, so a returned ``(row, col, value)`` is bit-identical to the
    exact pair score no matter which candidate set it was ranked inside.
    Rows with fewer than ``k`` candidates pad with ``-inf`` values and a
    ``num_cols`` sentinel index (callers guarantee enough candidates when
    they need full-width output).  Candidate selection — not this re-rank —
    is the only approximate step of an ANN query.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    indptr = np.asarray(indptr, dtype=np.int64)
    candidate_cols = np.asarray(candidate_cols, dtype=np.int64)
    n_rows = row_ids.shape[0]
    counts = np.diff(indptr)
    width = int(counts.max()) if n_rows else 0
    k = min(k, max(width, 0))
    if k <= 0 or n_rows == 0:
        return (
            np.empty((n_rows, max(k, 0)), dtype=np.int64),
            np.empty((n_rows, max(k, 0)), dtype=float),
        )
    values = channels.pair_values(np.repeat(row_ids, counts), candidate_cols)
    local = np.repeat(np.arange(n_rows), counts)
    pos = np.arange(candidate_cols.shape[0]) - np.repeat(indptr[:-1], counts)
    padded_v = np.full((n_rows, width), -np.inf)
    padded_i = np.full((n_rows, width), channels.num_cols, dtype=np.int64)
    padded_v[local, pos] = values
    padded_i[local, pos] = candidate_cols
    top_v, top_i = canonical_topk(padded_v, padded_i, k)
    return top_i, top_v


# ------------------------------------------------------------- mutual top-N
def mutual_pairs_from_topn(
    top_left: np.ndarray, top_right: np.ndarray, block: int = DEFAULT_STREAM_BLOCK
) -> tuple[np.ndarray, np.ndarray]:
    """Mutual pairs from two per-side top-N index tables (shared membership).

    ``top_left[i]`` holds row ``i``'s best columns, ``top_right[j]`` column
    ``j``'s best rows; a pair survives when each side ranks the other.  The
    membership check sorts each ``top_right`` row once and binary-searches
    every candidate in bounded blocks.  Returns ``(lefts, rights)`` sorted
    row-major like ``np.nonzero`` — shared by the exact streamed
    :func:`mutual_top_n` and the ANN backend's approximate pool filter.
    """
    if top_left.size == 0 or top_right.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    sorted_right = np.sort(top_right, axis=1)
    width = sorted_right.shape[1]
    num_left = top_left.shape[0]
    lefts = np.repeat(np.arange(num_left, dtype=np.int64), top_left.shape[1])
    rights = top_left.reshape(-1)
    member = np.empty(rights.shape[0], dtype=bool)
    for cb in _as_blocks(rights.shape[0], max(block * block // max(width, 1), 1)):
        rows = sorted_right[rights[cb]]  # (b, width), sorted ascending
        idx = np.clip(np.sum(rows < lefts[cb, None], axis=1), 0, width - 1)
        member[cb] = rows[np.arange(rows.shape[0]), idx] == lefts[cb]
    lefts, rights = lefts[member], rights[member]
    order = np.lexsort((rights, lefts))
    return lefts[order], rights[order]


def mutual_top_n(
    left_factors: np.ndarray,
    right_factors: np.ndarray,
    n: int,
    block: int = DEFAULT_STREAM_BLOCK,
    workers: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Mutually top-``n`` cosine pairs of two raw factor matrices.

    A pair ``(i, j)`` survives when ``j`` is among row ``i``'s top-``n``
    columns *and* ``i`` is among column ``j``'s top-``n`` rows — the pool
    filter of Sect. 6.1 — computed from two streamed top-``n`` passes and a
    ``searchsorted`` membership check instead of two dense boolean masks.
    Returns ``(lefts, rights)`` sorted row-major like ``np.nonzero``.
    """
    if left_factors.shape[0] == 0 or right_factors.shape[0] == 0 or n < 1:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    channels = CosineChannels([ChannelPair.from_raw(left_factors, right_factors)])
    top_left, _ = stream_topk(channels, n, block, workers)
    top_right, _ = stream_topk(channels.transpose(), n, block, workers)
    return mutual_pairs_from_topn(top_left, top_right, block)
