"""Seeded random-number helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises all
three into a ``Generator`` so experiments are reproducible end to end.
"""

from __future__ import annotations

import copy
from typing import Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives a freshly seeded generator, an ``int`` gives a deterministic
    generator, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Child generators are seeded from the parent so that a single experiment
    seed fans out deterministically to its sub-components.
    """
    seeds = rng.integers(0, 2**31 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def get_rng_state(rng: np.random.Generator) -> dict:
    """The bit-generator state of ``rng`` as a JSON-serialisable dict.

    The returned dict fully determines the generator's future stream, so
    storing it in a checkpoint manifest and restoring it with
    :func:`set_rng_state` resumes the stream bit-exactly.  States are plain
    dicts of strings and (arbitrary-precision) ints for every NumPy bit
    generator, so ``json.dumps`` round-trips them losslessly.
    """
    return copy.deepcopy(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> np.random.Generator:
    """Restore a state captured by :func:`get_rng_state` into ``rng`` in place.

    The generator must use the same bit-generator algorithm the state was
    captured from (NumPy validates the ``bit_generator`` tag and raises
    otherwise).  Returns ``rng`` for convenience.
    """
    rng.bit_generator.state = copy.deepcopy(state)
    return rng
