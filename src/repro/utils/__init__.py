"""Shared utilities: seeded randomness, numeric helpers, timing and logging."""

from repro.utils.math import (
    cosine_similarity,
    cosine_similarity_matrix,
    l2_normalize,
    pairwise_sq_dists,
    softmax,
    stable_log,
    top_k_indices,
)
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.timer import Timer
from repro.utils.logging import get_logger

__all__ = [
    "RandomState",
    "Timer",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "ensure_rng",
    "get_logger",
    "l2_normalize",
    "pairwise_sq_dists",
    "softmax",
    "stable_log",
    "top_k_indices",
]
