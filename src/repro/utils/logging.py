"""Library-wide logging configuration.

The library never configures the root logger; it only attaches a
``NullHandler`` so that applications embedding the package decide how and
where log records go.  :func:`get_logger` is the single entry point modules
use, keeping logger names under the ``repro`` namespace.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger scoped under the ``repro`` namespace."""
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Convenience used by examples and benchmarks to see progress output."""
    logger = logging.getLogger(_ROOT_NAME)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
