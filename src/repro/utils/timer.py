"""Wall-clock timing helper used by the runtime benchmarks (Table 4, Figure 7)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating stopwatch.

    Use either as a context manager::

        with Timer() as t:
            run()
        print(t.elapsed)

    or by calling :meth:`start` / :meth:`stop` repeatedly; ``elapsed`` then
    accumulates across the start/stop pairs.
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
