"""Numeric helpers shared across embedding, alignment and active-learning code."""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def l2_normalize(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Return ``x`` scaled to unit L2 norm along ``axis`` (zero-safe)."""
    norm = np.linalg.norm(x, axis=axis, keepdims=True)
    return x / np.maximum(norm, _EPS)


def safe_l2_normalize(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Unit-normalise ``x`` along ``axis``; zero-norm rows become exact zeros.

    Unlike :func:`l2_normalize` (which divides by ``max(norm, eps)``), rows
    whose norm is below ``eps`` are never divided at all: the output row is
    exactly ``0.0``, so a zero-norm embedding contributes exactly-zero cosine
    similarity everywhere instead of an ``x / eps`` blow-up (or NaN when the
    input itself is degenerate).  For rows with norm ≥ ``eps`` the result is
    bit-identical to :func:`l2_normalize`.
    """
    x = np.asarray(x, dtype=float)
    norm = np.linalg.norm(x, axis=axis, keepdims=True)
    safe = np.maximum(norm, _EPS)
    out = np.divide(x, safe, out=np.zeros_like(x), where=norm >= _EPS)
    return out


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors, defined as 0 for zero vectors."""
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na < _EPS or nb < _EPS:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities between rows of ``a`` and rows of ``b``.

    Returns an ``(len(a), len(b))`` matrix.  Rows with norm below ``eps``
    yield exactly-zero similarity (:func:`safe_l2_normalize`) — an ``x / eps``
    blow-up on a degenerate row would otherwise leak garbage similarities
    into top-k tables and calibration.
    """
    a_n = safe_l2_normalize(np.asarray(a, dtype=float))
    b_n = safe_l2_normalize(np.asarray(b, dtype=float))
    return a_n @ b_n.T


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` and rows of ``b``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    d = a_sq + b_sq - 2.0 * (a @ b.T)
    return np.maximum(d, 0.0)


def softmax(x: np.ndarray, axis: int = -1, temperature: float = 1.0) -> np.ndarray:
    """Numerically stable softmax with optional temperature scaling."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    z = np.asarray(x, dtype=float) / temperature
    z = z - np.max(z, axis=axis, keepdims=True)
    e = np.exp(z)
    return e / np.sum(e, axis=axis, keepdims=True)


def stable_log(x: np.ndarray) -> np.ndarray:
    """Logarithm clipped away from zero to avoid ``-inf``."""
    return np.log(np.maximum(np.asarray(x, dtype=float), _EPS))


def top_k_indices(scores: np.ndarray, k: int, largest: bool = True) -> np.ndarray:
    """Indices of the ``k`` largest (or smallest) entries of a 1-D array, sorted.

    ``k`` larger than the array size is truncated rather than an error, which
    matches how candidate pools are built for small synthetic KGs.
    """
    scores = np.asarray(scores)
    k = min(k, scores.shape[-1])
    if k <= 0:
        return np.empty(0, dtype=int)
    if largest:
        part = np.argpartition(-scores, k - 1)[:k]
        return part[np.argsort(-scores[part])]
    part = np.argpartition(scores, k - 1)[:k]
    return part[np.argsort(scores[part])]


def top_k_rows(matrix: np.ndarray, k: int) -> np.ndarray:
    """Per-row indices of the ``k`` largest columns, sorted descending.

    Uses ``np.argpartition`` (O(n) per row) instead of a full ``argsort``
    (O(n log n)); only the selected ``k`` entries are sorted.  ``k`` larger
    than the number of columns is truncated.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("top_k_rows expects a 2-D matrix")
    num_cols = matrix.shape[1]
    k = min(k, num_cols)
    if k <= 0 or matrix.size == 0:
        return np.empty((matrix.shape[0], max(k, 0)), dtype=np.int64)
    if k >= num_cols:
        return np.argsort(-matrix, axis=1).astype(np.int64)
    part = np.argpartition(-matrix, k - 1, axis=1)[:, :k]
    rows = np.arange(matrix.shape[0])[:, None]
    order = np.argsort(-matrix[rows, part], axis=1)
    return part[rows, order].astype(np.int64)


def reciprocal_rank(scores: np.ndarray, true_index: int) -> float:
    """Reciprocal rank of ``true_index`` when ranking ``scores`` descending."""
    scores = np.asarray(scores, dtype=float)
    target = scores[true_index]
    rank = int(np.sum(scores > target)) + 1
    return 1.0 / rank
