"""TransE (Bordes et al., 2013): translation-based KG embedding.

``f_er(h, r, t) = ||h + r − t||₂``; observed triples should have near-zero
scores.  TransE is the model for which the paper's embedding-difference bound
is exact: given a head and a relation the optimum tail is ``h + r`` with no
residual, i.e. ``r̃ = r`` and ``d = 0`` (Sect. 5.2).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.embedding.base import KGEmbeddingModel, TailSolution
from repro.kg.graph import KnowledgeGraph
from repro.nn.layers import Embedding
from repro.utils.rng import RandomState


class TransE(KGEmbeddingModel):
    """Translation model: ``h + r ≈ t``."""

    def __init__(self, kg: KnowledgeGraph, dim: int = 32, rng: RandomState = None) -> None:
        super().__init__(kg, dim, rng)
        rng = self.rng
        self.entity_embeddings = Embedding(kg.num_entities, dim, rng=rng, name="entity")
        self.relation_embeddings = Embedding(max(kg.num_relations, 1), dim, rng=rng, name="relation")

    # ----------------------------------------------------------------- forward
    def _forward_outputs(self) -> tuple[Tensor, Tensor]:
        """The output space *is* the embedding space: the session tensors are
        the parameter tables themselves, so gathers parent directly on the
        parameters and the session is bit-identical to per-call lookups."""
        return self.entity_embeddings.all(), self.relation_embeddings.all()

    # --------------------------------------------------------------- training
    def triple_scores(self, triples: np.ndarray) -> Tensor:
        triples = np.asarray(triples, dtype=np.int64)
        session = self.outputs()
        h = session.entities.gather_rows(triples[:, 0])
        r = session.relations.gather_rows(triples[:, 1])
        t = session.entities.gather_rows(triples[:, 2])
        return (h + r - t).norm(axis=1)

    # ---------------------------------------------------------- inference view
    def score_np(self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray) -> float:
        return float(np.linalg.norm(head + relation_vec - tail))

    def score_np_grad_tail(
        self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray
    ) -> np.ndarray:
        diff = tail - (head + relation_vec)
        norm = np.linalg.norm(diff)
        if norm < 1e-12:
            return np.zeros_like(tail)
        return diff / norm

    def score_np_grad_head(
        self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray
    ) -> np.ndarray:
        return -self.score_np_grad_tail(head, relation_vec, tail)

    def solve_tail(
        self,
        head_embedding: np.ndarray,
        relation_vec: np.ndarray,
        entity_matrix: np.ndarray,
        num_samples: int = 4,
        num_steps: int = 25,
        step_size: float = 0.1,
        rng: RandomState = None,
    ) -> TailSolution:
        """Exact solution: the optimum tail is ``h + r``, so ``d = 0``."""
        return TailSolution(translation=np.array(relation_vec, dtype=float, copy=True), bound=0.0)

    # -------------------------------------------------------------- bookkeeping
    def renormalize(self) -> None:
        self.entity_embeddings.renormalize()
