"""A compact CompGCN-style graph convolutional embedding model.

CompGCN (Vashishth et al., 2020) composes entity and relation embeddings along
each edge, aggregates the composed messages into entity representations with
direction-specific weight matrices, and updates relation representations with
a linear map per layer.  This implementation keeps the parts DAAKG relies on:

* subtraction composition ``φ(e, r) = e − r`` (the TransE-style composition),
* separate weights for incoming edges, outgoing edges and self-loops,
* per-layer relation transformation, tanh non-linearity, mean aggregation,
* a translational decoder ``f_er(h, r, t) = ||h' + r' − t'||`` on the output
  representations, so the same margin loss (Eq. 1) and the same inference-view
  API as TransE/RotatE apply.

The full forward pass computes representations for *all* entities at once (the
graphs in this reproduction have a few thousand edges).  Message passing runs
once per parameter version through the forward session of
:class:`~repro.embedding.base.KGEmbeddingModel`: every consumer
(``triple_scores``, ``entity_output``, the alignment losses, the similarity
engine) gathers rows of the same retained graph, so gradients from all loss
terms of an optimisation step flow into the base embeddings through a single
message-passing backward instead of one rebuild per call.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.functional import scatter_rows
from repro.autograd.tensor import Tensor
from repro.embedding.base import KGEmbeddingModel
from repro.kg.graph import KnowledgeGraph
from repro.nn.layers import Embedding, Linear
from repro.utils.rng import RandomState


class CompGCN(KGEmbeddingModel):
    """Composition-based multi-relational GCN with a translational decoder."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        dim: int = 32,
        num_layers: int = 2,
        rng: RandomState = None,
        share_weights_with: "CompGCN | None" = None,
    ) -> None:
        super().__init__(kg, dim, rng)
        if num_layers < 1:
            raise ValueError("CompGCN needs at least one layer")
        rng = self.rng
        self.num_layers = num_layers
        self.entity_embeddings = Embedding(kg.num_entities, dim, rng=rng, name="entity")
        self.relation_embeddings = Embedding(max(kg.num_relations, 1), dim, rng=rng, name="relation")
        if share_weights_with is not None:
            # GNN-based entity alignment conventionally applies one GNN to both
            # KGs; sharing the layer weights (but not the embedding tables)
            # lets seed matches propagate through structurally similar
            # neighbourhoods of the two graphs.
            if share_weights_with.dim != dim or share_weights_with.num_layers != num_layers:
                raise ValueError("shared CompGCN models must agree on dim and num_layers")
            self.w_in = share_weights_with.w_in
            self.w_out = share_weights_with.w_out
            self.w_self = share_weights_with.w_self
            self.w_rel = share_weights_with.w_rel
        else:
            self.w_in = [
                Linear(dim, dim, bias=False, rng=rng, name=f"w_in{layer}")
                for layer in range(num_layers)
            ]
            self.w_out = [
                Linear(dim, dim, bias=False, rng=rng, name=f"w_out{layer}")
                for layer in range(num_layers)
            ]
            self.w_self = [
                Linear(dim, dim, bias=False, rng=rng, name=f"w_self{layer}")
                for layer in range(num_layers)
            ]
            self.w_rel = [
                Linear(dim, dim, bias=False, rng=rng, name=f"w_rel{layer}")
                for layer in range(num_layers)
            ]

        # Pre-computed edge index arrays (static for a given KG).
        edges = kg.triple_array
        self._heads = edges[:, 0] if edges.size else np.empty(0, dtype=np.int64)
        self._rels = edges[:, 1] if edges.size else np.empty(0, dtype=np.int64)
        self._tails = edges[:, 2] if edges.size else np.empty(0, dtype=np.int64)
        in_deg = np.bincount(self._tails, minlength=kg.num_entities).astype(float)
        out_deg = np.bincount(self._heads, minlength=kg.num_entities).astype(float)
        self._in_norm = 1.0 / np.maximum(in_deg, 1.0)
        self._out_norm = 1.0 / np.maximum(out_deg, 1.0)

    # ----------------------------------------------------------------- forward
    def _forward_outputs(self) -> tuple[Tensor, Tensor]:
        """Representations of all entities and all relations after message passing."""
        x = self.entity_embeddings.all()
        z = self.relation_embeddings.all()
        n = self.kg.num_entities
        for layer in range(self.num_layers):
            if self._heads.size:
                head_x = x.gather_rows(self._heads)
                tail_x = x.gather_rows(self._tails)
                rel_z = z.gather_rows(self._rels)
                # composition: subtraction (TransE-style)
                forward_msg = self.w_in[layer](head_x - rel_z)  # message to the tail
                backward_msg = self.w_out[layer](tail_x - rel_z)  # message to the head
                agg_in = scatter_rows(forward_msg, self._tails, n) * Tensor(self._in_norm[:, None])
                agg_out = scatter_rows(backward_msg, self._heads, n) * Tensor(self._out_norm[:, None])
                x = (self.w_self[layer](x) + agg_in + agg_out).tanh()
            else:
                x = self.w_self[layer](x).tanh()
            z = self.w_rel[layer](z)
        return x, z

    # --------------------------------------------------------------- training
    def triple_scores(self, triples: np.ndarray) -> Tensor:
        triples = np.asarray(triples, dtype=np.int64)
        session = self.outputs()
        h = session.entities.gather_rows(triples[:, 0])
        r = session.relations.gather_rows(triples[:, 1])
        t = session.entities.gather_rows(triples[:, 2])
        return (h + r - t).norm(axis=1)

    # ---------------------------------------------------------- inference view
    def score_np(self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray) -> float:
        return float(np.linalg.norm(head + relation_vec - tail))

    def score_np_grad_tail(
        self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray
    ) -> np.ndarray:
        diff = tail - (head + relation_vec)
        norm = np.linalg.norm(diff)
        if norm < 1e-12:
            return np.zeros_like(tail)
        return diff / norm

    def score_np_grad_head(
        self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray
    ) -> np.ndarray:
        return -self.score_np_grad_tail(head, relation_vec, tail)
