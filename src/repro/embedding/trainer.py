"""Training loop for one KG's embedding model (Eqs. 1 and 3).

The trainer optimises the entity-relation margin loss ``O_er`` and, when the
KG has classes, the entity-class margin loss ``O_ec``, using tail/entity
corruption from :class:`~repro.kg.sampling.NegativeSampler`.  The joint
alignment model (Sect. 4.2) later continues training these parameters through
its own losses, so this is the "embedding learning" half of the workflow in
Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd import functional as F
from repro.embedding.base import KGEmbeddingModel
from repro.embedding.entity_class import EntityClassScorer
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import NegativeSampler
from repro.nn.optim import Adam
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, ensure_rng

logger = get_logger(__name__)


@dataclass(frozen=True)
class EmbeddingTrainingConfig:
    """Hyper-parameters of per-KG embedding training."""

    epochs: int = 30
    batch_size: int = 512
    learning_rate: float = 0.05
    margin_er: float = 1.0
    margin_ec: float = 0.5
    num_negatives: int = 2
    renormalize: bool = True

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.margin_er < 0 or self.margin_ec < 0:
            raise ValueError("margins must be non-negative")


@dataclass
class TrainingHistory:
    """Per-epoch loss traces."""

    er_loss: list[float] = field(default_factory=list)
    ec_loss: list[float] = field(default_factory=list)

    @property
    def final_er_loss(self) -> float:
        return self.er_loss[-1] if self.er_loss else float("nan")

    @property
    def final_ec_loss(self) -> float:
        return self.ec_loss[-1] if self.ec_loss else float("nan")


class KGEmbeddingTrainer:
    """Trains an embedding model (and optional class scorer) on one KG."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        model: KGEmbeddingModel,
        class_scorer: EntityClassScorer | None = None,
        config: EmbeddingTrainingConfig | None = None,
        seed: RandomState = None,
    ) -> None:
        self.kg = kg
        self.model = model
        self.class_scorer = class_scorer
        self.config = config or EmbeddingTrainingConfig()
        self.rng = ensure_rng(seed)
        self.sampler = NegativeSampler(kg, seed=self.rng)
        params = list(model.parameters())
        if class_scorer is not None:
            params += class_scorer.parameters()
        self.optimizer = Adam(params, lr=self.config.learning_rate)

    # ------------------------------------------------------------------ steps
    # Both batch losses score positives and negatives against the model's
    # cached forward session: the two (or three) reads per batch share one
    # full forward, which for GNN models halves the per-batch message passing.
    def _er_batch_loss(self, batch: np.ndarray):
        negatives = self.sampler.corrupt_tails(batch, self.config.num_negatives)
        positives = np.repeat(batch, self.config.num_negatives, axis=0)
        pos_scores = self.model.triple_scores(positives)
        neg_scores = self.model.triple_scores(negatives)
        return F.margin_ranking_loss(pos_scores, neg_scores, self.config.margin_er)

    def _ec_batch_loss(self, batch: np.ndarray):
        assert self.class_scorer is not None
        negatives = self.sampler.corrupt_class_entities(batch, self.config.num_negatives)
        positives = np.repeat(batch, self.config.num_negatives, axis=0)
        pos_emb = self.model.entity_output(positives[:, 0])
        neg_emb = self.model.entity_output(negatives[:, 0])
        pos_scores = self.class_scorer.scores(pos_emb, positives[:, 1])
        neg_scores = self.class_scorer.scores(neg_emb, negatives[:, 1])
        return F.margin_ranking_loss(pos_scores, neg_scores, self.config.margin_ec)

    # ------------------------------------------------------------------- train
    def train(self) -> TrainingHistory:
        """Run the configured number of epochs; returns the loss history."""
        history = TrainingHistory()
        triples = self.kg.triple_array
        types = self.kg.type_array
        has_types = self.class_scorer is not None and types.size > 0
        for epoch in range(self.config.epochs):
            er_losses: list[float] = []
            ec_losses: list[float] = []
            if triples.size:
                order = self.rng.permutation(triples.shape[0])
                for start in range(0, len(order), self.config.batch_size):
                    batch = triples[order[start : start + self.config.batch_size]]
                    self.optimizer.zero_grad()
                    loss = self._er_batch_loss(batch)
                    loss.backward()
                    self.optimizer.step()
                    er_losses.append(loss.item())
                if self.config.renormalize:
                    self.model.renormalize()
            if has_types:
                order = self.rng.permutation(types.shape[0])
                for start in range(0, len(order), self.config.batch_size):
                    batch = types[order[start : start + self.config.batch_size]]
                    self.optimizer.zero_grad()
                    loss = self._ec_batch_loss(batch)
                    loss.backward()
                    self.optimizer.step()
                    ec_losses.append(loss.item())
            history.er_loss.append(float(np.mean(er_losses)) if er_losses else 0.0)
            history.ec_loss.append(float(np.mean(ec_losses)) if ec_losses else 0.0)
            logger.debug(
                "epoch %d: er=%.4f ec=%.4f", epoch, history.er_loss[-1], history.ec_loss[-1]
            )
        return history
