"""Entity-class embedding: classes as subspaces of the entity space (Eq. 2).

``f_ec(e, c) = ||W_c · FFNN(e) − b_c||``: the entity embedding is first mapped
into a linear space by a shared feed-forward network, then each class ``c``
defines an affine condition in that space.  Entities of the class should
satisfy the condition (score ≈ 0), so arbitrarily many entities can live in
the same subspace — this is how the model sidesteps the many-to-one problem of
translational embeddings.

Following the paper's parameter-complexity accounting (Sect. 4.2), the heavy
``d_e × d_c`` map is shared across classes, while each class owns a diagonal
scale and an offset in the class space (``2·|C|·d_c`` parameters), which keeps
the per-class condition expressive without a full matrix per class.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.kg.graph import KnowledgeGraph
from repro.nn.layers import FeedForward
from repro.nn.module import Module, Parameter
from repro.utils.rng import RandomState, ensure_rng


class EntityClassScorer(Module):
    """Scores entity-class membership; lower scores mean "belongs to"."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        entity_dim: int,
        class_dim: int = 16,
        hidden_dim: int | None = None,
        rng: RandomState = None,
    ) -> None:
        if class_dim <= 0:
            raise ValueError("class_dim must be positive")
        rng = ensure_rng(rng)
        self.kg = kg
        self.class_dim = class_dim
        num_classes = max(kg.num_classes, 1)
        self.ffnn = FeedForward(entity_dim, hidden_dim or entity_dim, class_dim, rng=rng)
        self.class_scale = Parameter(
            np.ones((num_classes, class_dim)) + ensure_rng(rng).normal(0, 0.01, (num_classes, class_dim)),
            name="class_scale",
        )
        self.class_bias = Parameter(np.zeros((num_classes, class_dim)), name="class_bias")

    def scores(self, entity_embeddings: Tensor, class_indices: np.ndarray) -> Tensor:
        """``f_ec`` for each (entity embedding row, class index) pair, shape ``(n,)``."""
        class_indices = np.asarray(class_indices, dtype=np.int64)
        mapped = self.ffnn(entity_embeddings)
        scale = self.class_scale.gather_rows(class_indices)
        bias = self.class_bias.gather_rows(class_indices)
        return (scale * mapped - bias).norm(axis=1)

    def class_embedding(self, class_indices: np.ndarray) -> Tensor:
        """A vector representation of each class: ``[scale | bias]`` concatenated.

        This is the "class embedding" the joint alignment model compares with
        the mapping matrix ``A_cls`` (the alternative comparison path uses mean
        entity embeddings, Eq. 9).
        """
        from repro.autograd.functional import concatenate

        class_indices = np.asarray(class_indices, dtype=np.int64)
        scale = self.class_scale.gather_rows(class_indices)
        bias = self.class_bias.gather_rows(class_indices)
        return concatenate([scale, bias], axis=1)

    @property
    def class_embedding_dim(self) -> int:
        return 2 * self.class_dim

    def all_class_embeddings(self) -> Tensor:
        return self.class_embedding(np.arange(max(self.kg.num_classes, 1)))
