"""RotatE (Sun et al., 2019): relations as rotations in complex space.

Entity embeddings are complex vectors of ``dim/2`` coordinates stored as
``[real | imaginary]`` halves of a real vector of size ``dim``.  Each relation
is a vector of phases; applying the relation rotates the head entity
element-wise, and the score is ``||h ∘ r − t||``.

For the inference view the model is *not* given the closed-form solution on
purpose: the paper's bound estimation treats every non-translational model
with the sampled solver, which is why RotatE's (and CompGCN's) inference-power
accuracy in Table 6 trails TransE's.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.embedding.base import KGEmbeddingModel
from repro.kg.graph import KnowledgeGraph
from repro.nn.layers import Embedding
from repro.nn.module import Parameter
from repro.utils.rng import RandomState


class RotatE(KGEmbeddingModel):
    """Rotation model: ``h ∘ r ≈ t`` with ``|r_i| = 1``."""

    def __init__(self, kg: KnowledgeGraph, dim: int = 32, rng: RandomState = None) -> None:
        if dim % 2 != 0:
            raise ValueError("RotatE requires an even embedding dimension")
        super().__init__(kg, dim, rng)
        rng = self.rng
        self.half = dim // 2
        self.entity_embeddings = Embedding(kg.num_entities, dim, rng=rng, name="entity")
        # one phase per complex coordinate per relation
        self.relation_phases = Parameter(
            rng.uniform(-np.pi, np.pi, size=(max(kg.num_relations, 1), self.half)), name="phases"
        )

    # ----------------------------------------------------------------- forward
    def _forward_outputs(self) -> tuple[Tensor, Tensor]:
        """Entity table plus the full ``[cos θ | sin θ]`` relation table.

        The trigonometry is evaluated once per parameter version over the
        whole (small) phase table; consumers gather rows, which is cheaper
        than re-deriving cos/sin for every triple of every loss term.
        """
        from repro.autograd.functional import concatenate

        return (
            self.entity_embeddings.all(),
            concatenate([_cos(self.relation_phases), _sin(self.relation_phases)], axis=1),
        )

    # ------------------------------------------------------------ complex math
    def _rotate(self, h: Tensor, rotations: Tensor) -> Tensor:
        """Element-wise complex multiplication of ``h`` by ``[cos θ | sin θ]`` rows."""
        h_re = h[:, : self.half]
        h_im = h[:, self.half :]
        cos_t = rotations[:, : self.half]
        sin_t = rotations[:, self.half :]
        out_re = h_re * cos_t - h_im * sin_t
        out_im = h_re * sin_t + h_im * cos_t
        from repro.autograd.functional import concatenate

        return concatenate([out_re, out_im], axis=1)

    # --------------------------------------------------------------- training
    def triple_scores(self, triples: np.ndarray) -> Tensor:
        triples = np.asarray(triples, dtype=np.int64)
        session = self.outputs()
        h = session.entities.gather_rows(triples[:, 0])
        t = session.entities.gather_rows(triples[:, 2])
        rotations = session.relations.gather_rows(triples[:, 1])
        return (self._rotate(h, rotations) - t).norm(axis=1)

    # ---------------------------------------------------------- inference view
    def _rotate_np(self, head: np.ndarray, relation_vec: np.ndarray) -> np.ndarray:
        """Apply a relation output vector ``[cos θ | sin θ]`` to a head embedding."""
        cos, sin = relation_vec[: self.half], relation_vec[self.half :]
        h_re, h_im = head[: self.half], head[self.half :]
        rot_re = h_re * cos - h_im * sin
        rot_im = h_re * sin + h_im * cos
        return np.concatenate([rot_re, rot_im])

    def score_np(self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray) -> float:
        return float(np.linalg.norm(self._rotate_np(head, relation_vec) - tail))

    def score_np_grad_tail(
        self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray
    ) -> np.ndarray:
        diff = tail - self._rotate_np(head, relation_vec)
        norm = np.linalg.norm(diff)
        if norm < 1e-12:
            return np.zeros_like(tail)
        return diff / norm

    def local_relation_embedding(self, head: np.ndarray, tail: np.ndarray) -> np.ndarray:
        """Per-coordinate rotation aligning ``head`` with ``tail``.

        The optimum phase for each complex coordinate is the angle difference
        between tail and head; the result is returned in the same
        ``[cos θ | sin θ]`` layout as :meth:`relation_output`, but scaled by
        the head/tail magnitudes like a translational difference so that
        weighted averages remain meaningful.
        """
        h = head[: self.half] + 1j * head[self.half :]
        t = tail[: self.half] + 1j * tail[self.half :]
        safe_h = np.where(np.abs(h) < 1e-9, 1e-9, h)
        rotation = t / safe_h
        rotation = rotation / np.maximum(np.abs(rotation), 1e-9)
        return np.concatenate([rotation.real, rotation.imag])

    # -------------------------------------------------------------- bookkeeping
    def renormalize(self) -> None:
        self.entity_embeddings.renormalize()


def _cos(x: Tensor) -> Tensor:
    """Differentiable cosine."""
    out_data = np.cos(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(-np.sin(x.data) * np.asarray(grad))

    return Tensor._make(out_data, (x,), backward)


def _sin(x: Tensor) -> Tensor:
    """Differentiable sine."""
    out_data = np.sin(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.cos(x.data) * np.asarray(grad))

    return Tensor._make(out_data, (x,), backward)
