"""The shared interface of entity-relation embedding models.

Downstream components rely on three views of a model:

* **training view** — :meth:`KGEmbeddingModel.triple_scores` gives
  differentiable scores ``f_er`` for (possibly corrupted) triples, used with
  the margin loss of Eq. 1;
* **alignment view** — :meth:`entity_output` / :meth:`relation_output` give
  differentiable *output representations* (for GNN models these aggregate the
  neighbourhood), which the joint alignment model maps across KGs;
* **inference view** — :meth:`solve_tail` approximates the tail embedding that
  a (head, relation) pair determines, together with an error bound ``d``
  (Eq. 13/14).  TransE overrides this with the exact closed form (``d = 0``);
  other models use the generic sampled gradient-descent solver, which is what
  makes their bounds looser — the effect Table 6 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd.tensor import Tensor
from repro.kg.graph import KnowledgeGraph
from repro.nn.module import Module
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class TailSolution:
    """Result of solving ``f_er(h, r, t) = 0`` for the tail embedding.

    ``translation`` is the difference vector ``r̃ = ẽ_t − e_h`` of Eq. 13 and
    ``bound`` the radius ``d`` such that any optimum tail lies within
    ``bound`` of ``e_h + translation``.
    """

    translation: np.ndarray
    bound: float


class KGEmbeddingModel(Module):
    """Abstract base class of entity-relation embedding models for one KG."""

    def __init__(self, kg: KnowledgeGraph, dim: int, rng: RandomState = None) -> None:
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        self.kg = kg
        self.dim = dim
        self.rng = ensure_rng(rng)

    # --------------------------------------------------------------- training
    def triple_scores(self, triples: np.ndarray) -> Tensor:
        """Differentiable plausibility scores ``f_er`` for an ``(n, 3)`` index array.

        Lower is better; observed triples should score close to 0.
        """
        raise NotImplementedError

    # -------------------------------------------------------------- alignment
    def entity_output(self, indices: np.ndarray) -> Tensor:
        """Differentiable output representations of the given entities."""
        raise NotImplementedError

    def relation_output(self, indices: np.ndarray) -> Tensor:
        """Differentiable output representations of the given relations."""
        raise NotImplementedError

    def all_entity_outputs(self) -> Tensor:
        """Output representations of every entity, shape ``(|E|, dim)``."""
        return self.entity_output(np.arange(self.kg.num_entities))

    def all_relation_outputs(self) -> Tensor:
        """Output representations of every relation, shape ``(|R|, dim)``."""
        return self.relation_output(np.arange(self.kg.num_relations))

    # ----------------------------------------------------------- numpy access
    def entity_matrix(self) -> np.ndarray:
        """Detached entity output representations (recomputed on each call)."""
        from repro.autograd.tensor import no_grad

        with no_grad():
            return self.all_entity_outputs().numpy().copy()

    def relation_matrix(self) -> np.ndarray:
        """Detached relation output representations."""
        from repro.autograd.tensor import no_grad

        with no_grad():
            return self.all_relation_outputs().numpy().copy()

    # ---------------------------------------------------------- inference view
    def score_np(self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray) -> float:
        """``f_er`` evaluated on raw numpy output-space embeddings.

        ``relation_vec`` is a row of :meth:`relation_matrix`; the caller caches
        those matrices so this never triggers a model forward pass.
        """
        raise NotImplementedError

    def score_np_grad_tail(
        self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray
    ) -> np.ndarray:
        """Gradient of :meth:`score_np` with respect to the tail embedding.

        The default implementation uses central finite differences; subclasses
        with a closed form should override for speed.
        """
        eps = 1e-4
        grad = np.zeros_like(tail)
        for i in range(tail.shape[0]):
            plus = tail.copy()
            minus = tail.copy()
            plus[i] += eps
            minus[i] -= eps
            grad[i] = (
                self.score_np(head, relation_vec, plus) - self.score_np(head, relation_vec, minus)
            ) / (2 * eps)
        return grad

    def solve_tail(
        self,
        head_embedding: np.ndarray,
        relation_vec: np.ndarray,
        entity_matrix: np.ndarray,
        num_samples: int = 4,
        num_steps: int = 25,
        step_size: float = 0.1,
        rng: RandomState = None,
    ) -> TailSolution:
        """Approximate the tail embedding determined by ``(head, relation)``.

        Generic sampled solver (Sect. 5.2): start from ``num_samples`` random
        entity embeddings, run gradient descent on ``f_er(h, r, ·)``, average
        the local optima into ``ẽ_t`` and report the largest distance from a
        local optimum to ``ẽ_t`` as the bound ``d``.

        ``entity_matrix`` is a cached copy of :meth:`entity_matrix` supplied by
        the caller (the inference-power module snapshots it once per round).
        """
        rng = ensure_rng(self.rng if rng is None else rng)
        solutions = []
        for _ in range(max(1, num_samples)):
            start = entity_matrix[int(rng.integers(0, entity_matrix.shape[0]))].copy()
            current = start
            for _ in range(num_steps):
                grad = self.score_np_grad_tail(head_embedding, relation_vec, current)
                norm = np.linalg.norm(grad)
                if norm < 1e-9:
                    break
                current = current - step_size * grad
            solutions.append(current)
        stacked = np.stack(solutions, axis=0)
        mean_tail = stacked.mean(axis=0)
        bound = float(np.max(np.linalg.norm(stacked - mean_tail, axis=1))) if len(solutions) > 1 else 0.0
        return TailSolution(translation=mean_tail - head_embedding, bound=bound)

    def local_relation_embedding(self, head: np.ndarray, tail: np.ndarray) -> np.ndarray:
        """The relation representation that best explains ``(head, ?, tail)``.

        This is the "local optimum relation embedding" of Eq. 7: for each
        triple, the relation vector minimising ``f_er(h, r, t)``.  Models with
        a translational decoder return ``t − h``; RotatE returns the
        per-coordinate rotation.  The result lives in the same space as
        :meth:`entity_output`, so mean relation embeddings can be mapped with
        the entity mapping matrix ``A_ent`` as the paper prescribes.
        """
        return tail - head

    # -------------------------------------------------------------- bookkeeping
    def renormalize(self) -> None:
        """Optional projection step after an optimiser update (no-op by default)."""
