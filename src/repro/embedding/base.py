"""The shared interface of entity-relation embedding models.

Downstream components rely on three views of a model:

* **training view** — :meth:`KGEmbeddingModel.triple_scores` gives
  differentiable scores ``f_er`` for (possibly corrupted) triples, used with
  the margin loss of Eq. 1;
* **alignment view** — :meth:`entity_output` / :meth:`relation_output` give
  differentiable *output representations* (for GNN models these aggregate the
  neighbourhood), which the joint alignment model maps across KGs;

All differentiable views read through :meth:`KGEmbeddingModel.outputs`, a
*forward-computation session*: the full ``(entity, relation)`` representation
tensors are computed once per parameter version (the counter in
:mod:`repro.nn.optim`, bumped by optimiser steps, ``renormalize`` and
``load_state_dict``) and every consumer gathers slices of that one retained
graph.  Within one optimisation step the many loss terms of joint training
therefore share a single model forward, and ``loss.backward()`` accumulates
through it once instead of re-running message passing per term;
* **inference view** — :meth:`solve_tail` approximates the tail embedding that
  a (head, relation) pair determines, together with an error bound ``d``
  (Eq. 13/14).  TransE overrides this with the exact closed form (``d = 0``);
  other models use the generic sampled gradient-descent solver, which is what
  makes their bounds looser — the effect Table 6 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.autograd.tensor import Tensor, is_grad_enabled, no_grad
from repro.kg.graph import KnowledgeGraph
from repro.nn.module import Module
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class ForwardOutputs:
    """One full model forward, shared by every consumer at a parameter version.

    ``entities``/``relations`` hold the output representations of *all*
    entities/relations of the KG; consumers slice them with ``gather_rows``
    so their gradients all accumulate through this one retained graph.
    """

    entities: Tensor
    relations: Tensor
    version: int

    @property
    def differentiable(self) -> bool:
        """Whether gradients can flow through these outputs.

        A forward computed under ``no_grad`` has no graph and must not be
        served to training-mode consumers.
        """
        return self.entities.requires_grad and self.relations.requires_grad


@dataclass(frozen=True)
class TailSolution:
    """Result of solving ``f_er(h, r, t) = 0`` for the tail embedding.

    ``translation`` is the difference vector ``r̃ = ẽ_t − e_h`` of Eq. 13 and
    ``bound`` the radius ``d`` such that any optimum tail lies within
    ``bound`` of ``e_h + translation``.
    """

    translation: np.ndarray
    bound: float


class KGEmbeddingModel(Module):
    """Abstract base class of entity-relation embedding models for one KG."""

    def __init__(self, kg: KnowledgeGraph, dim: int, rng: RandomState = None) -> None:
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        self.kg = kg
        self.dim = dim
        self.rng = ensure_rng(rng)
        self.forward_session = True
        self.forward_count = 0
        self._outputs_cache: ForwardOutputs | None = None

    # -------------------------------------------------------- forward session
    def _forward_outputs(self) -> tuple[Tensor, Tensor]:
        """Uncached full forward: ``(entity, relation)`` output tensors."""
        raise NotImplementedError

    def outputs(self) -> ForwardOutputs:
        """The full forward for the current parameters, computed at most once.

        Memoized on the parameter version token: as long as no optimiser
        step, ``renormalize`` or ``load_state_dict`` intervenes, every caller
        receives the *same* retained tensors and their gathers share one
        autograd graph.  A forward first taken under ``no_grad`` is replaced
        by a differentiable one when a training-mode consumer asks.  Setting
        ``forward_session = False`` restores the legacy one-forward-per-call
        behaviour (used by parity tests and benchmarks).
        """
        cached = self._outputs_cache
        if (
            self.forward_session
            and cached is not None
            and cached.version == self.parameter_token()
            and (cached.differentiable or not is_grad_enabled())
        ):
            # Serving the retained graph repeatedly is safe across multiple
            # backward calls: Tensor.backward clears interior grads in its
            # epilogue, so a later pass never double-counts an earlier one.
            obs.counter("embedding.forward.reused").inc()
            return cached
        entities, relations = self._forward_outputs()
        self.forward_count += 1
        obs.counter("embedding.forward.computed").inc()
        entry = ForwardOutputs(entities, relations, self.parameter_token())
        if self.forward_session:
            self._outputs_cache = entry
        return entry

    def invalidate_outputs(self) -> None:
        """Drop the cached forward (bumping the parameter version also works)."""
        self._outputs_cache = None

    # --------------------------------------------------------------- training
    def triple_scores(self, triples: np.ndarray) -> Tensor:
        """Differentiable plausibility scores ``f_er`` for an ``(n, 3)`` index array.

        Lower is better; observed triples should score close to 0.
        """
        raise NotImplementedError

    # -------------------------------------------------------------- alignment
    def entity_output(self, indices: np.ndarray) -> Tensor:
        """Differentiable output representations of the given entities."""
        return self.outputs().entities.gather_rows(np.asarray(indices, dtype=np.int64))

    def relation_output(self, indices: np.ndarray) -> Tensor:
        """Differentiable output representations of the given relations."""
        return self.outputs().relations.gather_rows(np.asarray(indices, dtype=np.int64))

    def all_entity_outputs(self) -> Tensor:
        """Output representations of every entity, shape ``(|E|, dim)``."""
        return self.outputs().entities

    def all_relation_outputs(self) -> Tensor:
        """Output representations of every relation, shape ``(|R|, dim)``.

        Relation tables pad to one row for relation-less KGs, so slice the
        session tensor down to the true relation count.
        """
        relations = self.outputs().relations
        if relations.shape[0] == self.kg.num_relations:
            return relations
        return relations.gather_rows(np.arange(self.kg.num_relations))

    # ----------------------------------------------------------- numpy access
    def entity_matrix(self) -> np.ndarray:
        """Detached entity output representations (served from the session cache)."""
        with no_grad():
            return self.outputs().entities.numpy().copy()

    def relation_matrix(self) -> np.ndarray:
        """Detached relation output representations."""
        with no_grad():
            return self.all_relation_outputs().numpy().copy()

    # ---------------------------------------------------------- inference view
    def score_np(self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray) -> float:
        """``f_er`` evaluated on raw numpy output-space embeddings.

        ``relation_vec`` is a row of :meth:`relation_matrix`; the caller caches
        those matrices so this never triggers a model forward pass.
        """
        raise NotImplementedError

    def score_np_grad_tail(
        self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray
    ) -> np.ndarray:
        """Gradient of :meth:`score_np` with respect to the tail embedding.

        The default implementation uses central finite differences; subclasses
        with a closed form should override for speed.
        """
        eps = 1e-4
        grad = np.zeros_like(tail)
        for i in range(tail.shape[0]):
            plus = tail.copy()
            minus = tail.copy()
            plus[i] += eps
            minus[i] -= eps
            grad[i] = (
                self.score_np(head, relation_vec, plus) - self.score_np(head, relation_vec, minus)
            ) / (2 * eps)
        return grad

    def score_np_grad_head(
        self, head: np.ndarray, relation_vec: np.ndarray, tail: np.ndarray
    ) -> np.ndarray:
        """Gradient of :meth:`score_np` with respect to the head embedding.

        Needed by incremental fold-in (serving): a new entity appearing as the
        head of its triples is optimised against frozen neighbours.  The
        default uses central finite differences; translational models override
        with the closed form.
        """
        eps = 1e-4
        grad = np.zeros_like(head)
        for i in range(head.shape[0]):
            plus = head.copy()
            minus = head.copy()
            plus[i] += eps
            minus[i] -= eps
            grad[i] = (
                self.score_np(plus, relation_vec, tail) - self.score_np(minus, relation_vec, tail)
            ) / (2 * eps)
        return grad

    def solve_tail(
        self,
        head_embedding: np.ndarray,
        relation_vec: np.ndarray,
        entity_matrix: np.ndarray,
        num_samples: int = 4,
        num_steps: int = 25,
        step_size: float = 0.1,
        rng: RandomState = None,
    ) -> TailSolution:
        """Approximate the tail embedding determined by ``(head, relation)``.

        Generic sampled solver (Sect. 5.2): start from ``num_samples`` random
        entity embeddings, run gradient descent on ``f_er(h, r, ·)``, average
        the local optima into ``ẽ_t`` and report the largest distance from a
        local optimum to ``ẽ_t`` as the bound ``d``.

        ``entity_matrix`` is a cached copy of :meth:`entity_matrix` supplied by
        the caller (the inference-power module snapshots it once per round).
        """
        rng = ensure_rng(self.rng if rng is None else rng)
        solutions = []
        for _ in range(max(1, num_samples)):
            start = entity_matrix[int(rng.integers(0, entity_matrix.shape[0]))].copy()
            current = start
            for _ in range(num_steps):
                grad = self.score_np_grad_tail(head_embedding, relation_vec, current)
                norm = np.linalg.norm(grad)
                if norm < 1e-9:
                    break
                current = current - step_size * grad
            solutions.append(current)
        stacked = np.stack(solutions, axis=0)
        mean_tail = stacked.mean(axis=0)
        bound = float(np.max(np.linalg.norm(stacked - mean_tail, axis=1))) if len(solutions) > 1 else 0.0
        return TailSolution(translation=mean_tail - head_embedding, bound=bound)

    def local_relation_embedding(self, head: np.ndarray, tail: np.ndarray) -> np.ndarray:
        """The relation representation that best explains ``(head, ?, tail)``.

        This is the "local optimum relation embedding" of Eq. 7: for each
        triple, the relation vector minimising ``f_er(h, r, t)``.  Models with
        a translational decoder return ``t − h``; RotatE returns the
        per-coordinate rotation.  The result lives in the same space as
        :meth:`entity_output`, so mean relation embeddings can be mapped with
        the entity mapping matrix ``A_ent`` as the paper prescribes.
        """
        return tail - head

    # -------------------------------------------------------------- bookkeeping
    def renormalize(self) -> None:
        """Optional projection step after an optimiser update (no-op by default)."""
