"""KG embedding models.

The paper plugs three base entity-relation embedding models into DAAKG —
TransE, RotatE and CompGCN — plus a dedicated entity-class scoring function
(Eq. 2) that models every class as a subspace of the entity embedding space.
All models are implemented on the :mod:`repro.autograd` substrate and share
the :class:`~repro.embedding.base.KGEmbeddingModel` interface so the alignment
and inference-power code is model-agnostic.
"""

from repro.embedding.base import KGEmbeddingModel, TailSolution
from repro.embedding.transe import TransE
from repro.embedding.rotate import RotatE
from repro.embedding.compgcn import CompGCN
from repro.embedding.entity_class import EntityClassScorer
from repro.embedding.trainer import EmbeddingTrainingConfig, KGEmbeddingTrainer, TrainingHistory

MODEL_REGISTRY = {
    "transe": TransE,
    "rotate": RotatE,
    "compgcn": CompGCN,
}


def create_embedding_model(name, kg, dim=32, rng=None, **kwargs):
    """Instantiate a registered embedding model by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown embedding model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key](kg, dim=dim, rng=rng, **kwargs)


__all__ = [
    "CompGCN",
    "EmbeddingTrainingConfig",
    "EntityClassScorer",
    "KGEmbeddingModel",
    "KGEmbeddingTrainer",
    "MODEL_REGISTRY",
    "RotatE",
    "TailSolution",
    "TrainingHistory",
    "TransE",
    "create_embedding_model",
]
