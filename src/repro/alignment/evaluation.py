"""Evaluation metrics: H@k, MRR, and precision/recall/F1 with greedy matching.

The paper reports two metric families (Sect. 7.1): ranking metrics (H@1,
H@10, MRR) computed by ranking each element's candidates by similarity, and
set metrics (precision, recall, F1) computed after extracting a one-to-one
matching greedily from the similarity matrix, following the protocol of
Leone et al. (2022).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AlignmentScores:
    """All metrics for one alignment task (entities, relations or classes)."""

    hits_at_1: float
    hits_at_10: float
    mrr: float
    precision: float
    recall: float
    f1: float

    def as_dict(self) -> dict[str, float]:
        return {
            "H@1": self.hits_at_1,
            "H@10": self.hits_at_10,
            "MRR": self.mrr,
            "precision": self.precision,
            "recall": self.recall,
            "F1": self.f1,
        }


def hits_at_k(similarity_matrix: np.ndarray, gold_pairs: np.ndarray, k: int) -> float:
    """Fraction of gold left elements whose counterpart ranks in the top ``k``.

    Ranking is performed over all columns of the similarity matrix for each
    gold left element (the standard entity-alignment protocol).
    """
    if gold_pairs.size == 0:
        return 0.0
    hits = 0
    for left, right in gold_pairs:
        if _tie_aware_rank(similarity_matrix[left], right) <= k:
            hits += 1
    return hits / len(gold_pairs)


def _tie_aware_rank(row: np.ndarray, true_index: int) -> float:
    """Rank of ``true_index`` with ties resolved to the average (mid) rank.

    Without tie handling a method that scores every candidate identically
    (e.g. a lexical matcher on obfuscated names) would be credited with rank 1
    for every element.
    """
    target = row[true_index]
    better = int(np.sum(row > target))
    ties = int(np.sum(row == target)) - 1
    return better + ties / 2.0 + 1.0


def mean_reciprocal_rank(similarity_matrix: np.ndarray, gold_pairs: np.ndarray) -> float:
    """Mean reciprocal rank of the gold counterparts."""
    if gold_pairs.size == 0:
        return 0.0
    total = 0.0
    for left, right in gold_pairs:
        total += 1.0 / _tie_aware_rank(similarity_matrix[left], right)
    return total / len(gold_pairs)


def greedy_match(similarity_matrix: np.ndarray, threshold: float = 0.0) -> list[tuple[int, int]]:
    """Extract a one-to-one matching greedily by descending similarity.

    Pairs below ``threshold`` are never matched; each row/column is used at
    most once.  This mirrors the greedy strategy used to compute F1 in the
    paper's evaluation.
    """
    if similarity_matrix.size == 0:
        return []
    n_rows, n_cols = similarity_matrix.shape
    flat_order = np.argsort(-similarity_matrix, axis=None)
    used_rows = np.zeros(n_rows, dtype=bool)
    used_cols = np.zeros(n_cols, dtype=bool)
    matches: list[tuple[int, int]] = []
    for flat_idx in flat_order:
        i, j = divmod(int(flat_idx), n_cols)
        if similarity_matrix[i, j] < threshold:
            break
        if used_rows[i] or used_cols[j]:
            continue
        used_rows[i] = True
        used_cols[j] = True
        matches.append((i, j))
        if len(matches) == min(n_rows, n_cols):
            break
    return matches


def precision_recall_f1(
    predicted: list[tuple[int, int]], gold: set[tuple[int, int]]
) -> tuple[float, float, float]:
    """Precision, recall and F1 of a predicted match set against the gold set."""
    if not predicted:
        return 0.0, 0.0, 0.0
    if not gold:
        return 0.0, 0.0, 0.0
    true_positives = sum(1 for pair in predicted if pair in gold)
    precision = true_positives / len(predicted)
    recall = true_positives / len(gold)
    return precision, recall, f1_score(precision, recall)


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def evaluate_alignment_from_engine(
    engine,
    kind,
    gold_pairs: np.ndarray,
    match_threshold: float = 0.0,
) -> AlignmentScores:
    """All metrics for one alignment task, read through a similarity engine.

    Backend-agnostic replacement for calling :func:`evaluate_alignment` on a
    full matrix: only the *gold-row slab* (``|test| × M`` — the paper's
    protocol restricts both the ranking and the greedy matching to rows with
    a gold counterpart) is ever gathered, never the ``N × M`` matrix.
    Ranking metrics come from per-pair greater/equal counts over that slab
    in bounded column blocks — the same tie-aware ranks as the legacy path.
    On the dense backend every read is a slice of the cached matrix, making
    this bit-exact with the historical full-matrix evaluation.

    Memory note: the greedy F1 protocol inherently needs the whole gold-row
    slab at once, so evaluation peaks at ``O(|gold| · M)`` on both backends.
    When the gold set covers most rows of a very large pair, bound the
    evaluation budget (sample gold pairs) the way
    ``benchmarks/bench_similarity_scale.py`` does — streaming cannot remove
    a cost the matching protocol itself requires.
    """
    gold_pairs = np.asarray(gold_pairs, dtype=np.int64).reshape(-1, 2)
    num_rows, num_cols = engine.shape(kind)
    if num_rows == 0 or num_cols == 0 or gold_pairs.size == 0:
        return AlignmentScores(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    unique_rows, row_pos = np.unique(gold_pairs[:, 0], return_inverse=True)
    rights = gold_pairs[:, 1]

    # One gather of the gold rows serves both metric families (greedy
    # matching needs the slab anyway).  Rank counts walk it in column blocks
    # so the comparison temporaries stay O(|gold| · block); they reproduce
    # _tie_aware_rank exactly.
    slab = engine.rows(kind, unique_rows)
    targets = slab[row_pos, rights]
    greater = np.zeros(len(gold_pairs), dtype=np.int64)
    equal = np.zeros(len(gold_pairs), dtype=np.int64)
    block = max(int(getattr(engine, "block_size", num_cols)), 1)
    for start in range(0, num_cols, block):
        pair_rows = slab[row_pos, start : start + block]  # (|gold|, block)
        greater += np.sum(pair_rows > targets[:, None], axis=1)
        equal += np.sum(pair_rows == targets[:, None], axis=1)
    ranks = greater + (equal - 1) / 2.0 + 1.0
    # accumulate exactly like hits_at_k / mean_reciprocal_rank do on the full
    # matrix, so dense-backend results are bit-identical to the legacy path
    h1 = int(np.sum(ranks <= 1)) / len(gold_pairs)
    h10 = int(np.sum(ranks <= 10)) / len(gold_pairs)
    total = 0.0
    for rank in ranks:
        total += 1.0 / rank
    mrr = total / len(gold_pairs)

    matches = greedy_match(slab, threshold=match_threshold)
    predicted = [(int(unique_rows[i]), int(j)) for i, j in matches]
    gold_set = {(int(a), int(b)) for a, b in gold_pairs}
    precision, recall, f1 = precision_recall_f1(predicted, gold_set)
    return AlignmentScores(h1, h10, mrr, precision, recall, f1)


def evaluate_alignment(
    similarity_matrix: np.ndarray,
    gold_pairs: np.ndarray,
    match_threshold: float = 0.0,
    restrict_rows_to_gold: bool = True,
) -> AlignmentScores:
    """Compute all metrics for one alignment task.

    ``gold_pairs`` is an ``(n, 2)`` index array.  Ranking metrics are computed
    over the gold left elements; set metrics compare the greedy matching
    against the gold pairs.  When ``restrict_rows_to_gold`` is true the greedy
    matching is restricted to rows that have a gold counterpart, which mirrors
    the paper's protocol of evaluating on the test partition (other rows are
    dangling by construction and would only add unmatched predictions).
    """
    gold_pairs = np.asarray(gold_pairs, dtype=np.int64).reshape(-1, 2)
    if similarity_matrix.size == 0 or gold_pairs.size == 0:
        return AlignmentScores(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    h1 = hits_at_k(similarity_matrix, gold_pairs, 1)
    h10 = hits_at_k(similarity_matrix, gold_pairs, 10)
    mrr = mean_reciprocal_rank(similarity_matrix, gold_pairs)

    if restrict_rows_to_gold:
        rows = np.unique(gold_pairs[:, 0])
        sub_matrix = similarity_matrix[rows]
        matches = greedy_match(sub_matrix, threshold=match_threshold)
        predicted = [(int(rows[i]), int(j)) for i, j in matches]
    else:
        predicted = greedy_match(similarity_matrix, threshold=match_threshold)
    gold_set = {(int(a), int(b)) for a, b in gold_pairs}
    precision, recall, f1 = precision_recall_f1(predicted, gold_set)
    return AlignmentScores(h1, h10, mrr, precision, recall, f1)
