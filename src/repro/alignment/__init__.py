"""Embedding-based joint alignment (Sect. 4 of the paper).

The :class:`~repro.alignment.model.JointAlignmentModel` compares entities,
relations and classes of two KGs through learnable mapping matrices, weighted
mean embeddings and cosine similarities; the
:class:`~repro.alignment.trainer.JointAlignmentTrainer` optimises the
alignment losses together with the underlying embedding models, mines
semi-supervised potential matches, and fine-tunes on newly labelled pairs with
a focal loss.  :mod:`repro.alignment.calibration` turns similarities into
calibrated match probabilities, and :mod:`repro.alignment.evaluation` hosts the
H@k / MRR / precision-recall-F1 metrics used by every experiment.
"""

from repro.alignment.model import JointAlignmentModel
from repro.alignment.mean_embeddings import (
    entity_weights,
    mean_class_embeddings,
    mean_relation_embeddings,
)
from repro.alignment.semi_supervised import (
    mine_potential_matches,
    mine_potential_matches_from_engine,
    resolve_conflicts,
)
from repro.alignment.calibration import AlignmentCalibrator, CalibrationConfig
from repro.alignment.evaluation import (
    AlignmentScores,
    evaluate_alignment,
    evaluate_alignment_from_engine,
    f1_score,
    greedy_match,
    hits_at_k,
    mean_reciprocal_rank,
    precision_recall_f1,
)
from repro.alignment.similarity import SimilarityEngine, blocked_cosine_similarity
from repro.alignment.trainer import AlignmentTrainingConfig, JointAlignmentTrainer

__all__ = [
    "AlignmentCalibrator",
    "SimilarityEngine",
    "blocked_cosine_similarity",
    "AlignmentScores",
    "AlignmentTrainingConfig",
    "CalibrationConfig",
    "JointAlignmentModel",
    "JointAlignmentTrainer",
    "entity_weights",
    "evaluate_alignment",
    "evaluate_alignment_from_engine",
    "f1_score",
    "greedy_match",
    "hits_at_k",
    "mean_class_embeddings",
    "mean_reciprocal_rank",
    "mean_relation_embeddings",
    "mine_potential_matches",
    "mine_potential_matches_from_engine",
    "precision_recall_f1",
    "resolve_conflicts",
]
