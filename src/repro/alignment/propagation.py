"""Seed-anchored structural propagation channel for entity similarity.

The paper's GNN encoder makes two entities similar when their neighbourhoods
contain matched entities — the effect Example 1.1 describes.  Training a GNN
to express that signal end-to-end is expensive on the NumPy substrate, so the
joint alignment model complements the embedding channel with an explicit
*landmark propagation* channel that computes the same quantity directly:

1. every currently known entity match (labelled by the oracle or mined by
   semi-supervision) becomes a landmark with a shared indicator feature,
2. the indicators are propagated a few hops through each KG's normalised
   adjacency (personalised-PageRank style: ``P ← α·Â·P + X``),
3. two entities are similar when they see the same landmarks at similar
   proximities (cosine of their propagated feature vectors).

The channel improves monotonically as active learning adds labels, which is
exactly the behaviour the inference-power machinery assumes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.utils.math import cosine_similarity_matrix


def normalized_adjacency(kg: KnowledgeGraph) -> sp.csr_matrix:
    """Row-normalised undirected adjacency matrix of the entity graph."""
    n = kg.num_entities
    if kg.triple_array.size == 0:
        return sp.csr_matrix((n, n))
    heads = kg.triple_array[:, 0]
    tails = kg.triple_array[:, 2]
    rows = np.concatenate([heads, tails])
    cols = np.concatenate([tails, heads])
    data = np.ones(rows.shape[0])
    adjacency = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    adjacency.data[:] = 1.0
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inv_degrees = sp.diags(1.0 / np.maximum(degrees, 1.0))
    return inv_degrees @ adjacency


class StructuralPropagation:
    """Computes the landmark-propagation similarity between two KGs."""

    def __init__(
        self,
        kg1: KnowledgeGraph,
        kg2: KnowledgeGraph,
        hops: int = 3,
        alpha: float = 0.6,
    ) -> None:
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.kg1 = kg1
        self.kg2 = kg2
        self.hops = hops
        self.alpha = alpha
        self._adj1 = normalized_adjacency(kg1)
        self._adj2 = normalized_adjacency(kg2)

    def propagate(self, landmarks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Propagated landmark features for both KGs.

        ``landmarks`` is an ``(k, 2)`` array of (kg1 idx, kg2 idx) matches.
        Returns matrices of shape ``(|E1|, k)`` and ``(|E2|, k)``.
        """
        landmarks = np.asarray(landmarks, dtype=np.int64).reshape(-1, 2)
        k = landmarks.shape[0]
        x1 = np.zeros((self.kg1.num_entities, k))
        x2 = np.zeros((self.kg2.num_entities, k))
        if k == 0:
            return x1, x2
        x1[landmarks[:, 0], np.arange(k)] = 1.0
        x2[landmarks[:, 1], np.arange(k)] = 1.0
        p1, p2 = x1.copy(), x2.copy()
        for _ in range(self.hops):
            p1 = self.alpha * (self._adj1 @ p1) + x1
            p2 = self.alpha * (self._adj2 @ p2) + x2
        return p1, p2

    def similarity_matrix(self, landmarks: np.ndarray) -> np.ndarray:
        """Cosine similarity of propagated landmark features, ``(|E1|, |E2|)``.

        With no landmarks the channel is all zeros, i.e. it never dominates the
        embedding channel before any labels exist.
        """
        p1, p2 = self.propagate(landmarks)
        if p1.shape[1] == 0:
            return np.zeros((self.kg1.num_entities, self.kg2.num_entities))
        return cosine_similarity_matrix(p1, p2)
