"""Dangling-entity weights and weighted mean embeddings (Eqs. 6, 7 and 9).

Schema embeddings are learned mostly from entity structure, so dangling
entities (those without a counterpart in the other KG) pollute them.  The
paper therefore weights every entity by its best alignment similarity and
builds *mean* relation/class embeddings from weighted entity evidence:

* ``w_e = max_{e'} S(e, e')`` (Eq. 6),
* ``r̄`` = weighted average over triples of the local-optimum relation
  embedding, weighted by ``min(w_head, w_tail)`` (Eq. 7),
* ``c̄`` = weighted average of the embeddings of the class's entities (Eq. 9).

All functions here operate on NumPy snapshots; the joint alignment model
refreshes them once per training round (they act as constants for the
optimiser, the gradient flows through the mapping matrices and the direct
embedding channel).
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import KGEmbeddingModel
from repro.kg.graph import KnowledgeGraph


def entity_weights(similarity_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-entity weights for both KGs from the entity similarity matrix.

    Returns ``(w1, w2)`` where ``w1[i] = max_j S[i, j]`` and
    ``w2[j] = max_i S[i, j]``.  Values are clipped to ``[0, 1]`` since cosine
    similarities can be slightly negative and a negative weight would flip the
    sign of the evidence it is supposed to damp.
    """
    if similarity_matrix.size == 0:
        return (
            np.zeros(similarity_matrix.shape[0]),
            np.zeros(similarity_matrix.shape[1]),
        )
    w1 = np.clip(similarity_matrix.max(axis=1), 0.0, 1.0)
    w2 = np.clip(similarity_matrix.max(axis=0), 0.0, 1.0)
    return w1, w2


def mean_relation_embeddings(
    kg: KnowledgeGraph,
    model: KGEmbeddingModel,
    entity_matrix: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Weighted mean relation embeddings ``r̄`` for every relation of ``kg``.

    ``entity_matrix`` holds the entity output representations and ``weights``
    the dangling-entity weights ``w_e`` of the same KG.  Relations with no
    triples (or only zero-weight triples) fall back to the unweighted mean of
    their local optima, or to a zero vector when they have no triples at all.
    """
    dim = entity_matrix.shape[1] if entity_matrix.size else model.dim
    result = np.zeros((kg.num_relations, dim))
    for r in range(kg.num_relations):
        triples = kg.triples_of_relation(r)
        if triples.size == 0:
            continue
        locals_ = np.stack(
            [
                model.local_relation_embedding(entity_matrix[h], entity_matrix[t])
                for h, _, t in triples
            ]
        )
        w = np.minimum(weights[triples[:, 0]], weights[triples[:, 2]])
        total = w.sum()
        if total < 1e-9:
            result[r] = locals_.mean(axis=0)
        else:
            result[r] = (locals_ * w[:, None]).sum(axis=0) / total
    return result


def mean_class_embeddings(
    kg: KnowledgeGraph,
    entity_matrix: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Weighted mean class embeddings ``c̄`` for every class of ``kg`` (Eq. 9)."""
    dim = entity_matrix.shape[1] if entity_matrix.size else 0
    result = np.zeros((kg.num_classes, dim))
    for c in range(kg.num_classes):
        members = kg.entities_of_class(c)
        if not members:
            continue
        member_idx = np.asarray(members, dtype=np.int64)
        w = weights[member_idx]
        total = w.sum()
        if total < 1e-9:
            result[c] = entity_matrix[member_idx].mean(axis=0)
        else:
            result[c] = (entity_matrix[member_idx] * w[:, None]).sum(axis=0) / total
    return result
