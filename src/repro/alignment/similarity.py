"""The :class:`SimilarityEngine`: versioned similarity queries over a backend.

Every hot path of the active alignment loop — hard-negative mining,
semi-supervised mining, calibrated probability lookups, pool building and
progressive evaluation — reads element similarities through this engine.  The
engine owns the *versioning* contract (below) and delegates the actual
computation to a pluggable backend (:mod:`repro.runtime.backends`):

* the **dense** backend (default) caches the full ``|X1| × |X2|`` matrix per
  version token and answers every query with a slice — bit-exact with the
  historical code path;
* the **sharded** backend streams row-block × column-block cosine tiles from
  the similarity's *channel factors* (:meth:`channels`) and keeps per-row
  running top-k state, so the full matrix is never materialised on any query
  path and peak memory stays ``O(block² + N·k)``.

Consumers therefore use the narrow query surface — :meth:`top_k` /
:meth:`top_k_table`, :meth:`rows` / :meth:`cols`, :meth:`stream_blocks`,
:meth:`row_max` / :meth:`col_max`, :meth:`export_state` — rather than
:meth:`matrix`.  ``matrix`` remains as a legacy escape hatch: on the dense
backend it is the cached matrix; on the sharded backend it *assembles* the
matrix by streaming (and caches it per token), which is fine for small
schema-level matrices and debugging but defeats the memory bound, so no
production query path calls it.

Caching / versioning contract
-----------------------------

A cached matrix, channel set or top-k table is valid for a *version token*:

* ``parameter_version`` — the global counter in :mod:`repro.nn.optim`, bumped
  by every ``Adam.step`` / ``SGD.step`` (and by ``Module.load_state_dict``
  and ``Embedding.renormalize``).  Any optimiser step therefore invalidates
  all cached state — stale similarities are never served.  The same token
  keys the embedding models' forward session
  (:meth:`repro.embedding.base.KGEmbeddingModel.outputs`), so the snapshot
  this engine reads and the training losses share one forward per version.
* ``model.snapshot_version`` — bumped by
  :meth:`JointAlignmentModel.refresh_statistics`, which rebuilds the NumPy
  snapshot (mean embeddings, weights) every similarity depends on.
* ``model.landmark_version`` — bumped by effective
  :meth:`JointAlignmentModel.set_landmarks` calls.  Only the combined entity
  similarity is keyed on it (through the structural propagation channel);
  relation/class similarities survive landmark updates untouched.

Between two bumps the engine serves the same objects over and over (treat
returned arrays as read-only); within one optimiser step a matrix or top-k
table is computed at most once, no matter how many call sites ask for it.
On the dense backend, ``refresh_statistics`` additionally *seeds* the entity
cache with the matrix it computes internally for the dangling-entity weights.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

import repro.obs as obs
from repro.autograd.tensor import no_grad
from repro.kg.elements import ElementKind
from repro.nn.optim import parameter_version
from repro.runtime.ann import resolve_ann_params
from repro.runtime.backends import (
    TopKTable,
    create_backend,
    resolve_backend_name,
    resolve_workers,
)
from repro.runtime.streaming import ChannelPair, CosineChannels
from repro.runtime.views import SimilarityView
from repro.utils.math import cosine_similarity_matrix, safe_l2_normalize

if TYPE_CHECKING:  # pragma: no cover - import cycle with model.py
    from repro.alignment.model import AlignmentSnapshot, JointAlignmentModel

DEFAULT_BLOCK_SIZE = 4096

# Cache key for the embedding-only entity channel (no structural max).
_ENTITY_EMBEDDING_CHANNEL = "entity_embedding_channel"
# Cache-key namespace for channel factor sets.
_CHANNELS = "channels"


def blocked_cosine_similarity(
    a: np.ndarray, b: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE
) -> np.ndarray:
    """Pairwise cosine similarities between rows of ``a`` and ``b``, in blocks.

    Delegates to :func:`repro.utils.math.cosine_similarity_matrix` when one
    block suffices; otherwise computes the ``(len(a), len(b))`` product
    ``block_size`` rows at a time, bounding the working set for large
    vocabularies.  Zero-norm rows are guarded: they contribute exactly-zero
    similarity instead of a division blow-up
    (:func:`repro.utils.math.safe_l2_normalize`), so a degenerate embedding
    row can never emit NaNs that poison top-k tables or calibration.
    """
    if np.asarray(a).shape[0] <= block_size:
        return cosine_similarity_matrix(a, b)
    a_n = safe_l2_normalize(np.asarray(a, dtype=float))
    b_n = safe_l2_normalize(np.asarray(b, dtype=float))
    out = np.empty((a_n.shape[0], b_n.shape[0]))
    for start in range(0, a_n.shape[0], block_size):
        stop = min(start + block_size, a_n.shape[0])
        out[start:stop] = a_n[start:stop] @ b_n.T
    return out


class SimilarityEngine:
    """Owns similarity state and top-k candidates for one alignment model.

    One engine is created per :class:`JointAlignmentModel` (available as
    ``model.similarity``); the trainer, the active loop, pool building,
    evaluation, serving exports and the inference-power estimator all read
    through it.  The backend (``dense``, ``sharded`` or ``ann``) is chosen by
    the ``backend`` argument, overridable globally through the
    ``REPRO_SIMILARITY_BACKEND`` environment variable; ``ann`` additionally
    reads its knobs from ``ann`` (:class:`~repro.runtime.ann.AnnParams`) and
    the ``REPRO_SIMILARITY_ANN_*`` overrides.
    """

    def __init__(
        self,
        model: "JointAlignmentModel",
        block_size: int = DEFAULT_BLOCK_SIZE,
        backend: str | None = None,
        workers: int | None = None,
        ann=None,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.model = model
        self.block_size = block_size
        self.workers = resolve_workers(workers)
        # resolved before backend creation: AnnBackend reads it in __init__
        self.ann_params = resolve_ann_params(ann)
        self.backend = create_backend(self, resolve_backend_name(backend))
        self._matrices: dict[object, tuple[tuple[int, ...], np.ndarray]] = {}
        self._channels: dict[object, tuple[tuple[int, ...], CosineChannels]] = {}
        self._top_k: dict[tuple[ElementKind, int], tuple[tuple[int, ...], TopKTable]] = {}
        self.compute_counts: dict[ElementKind, int] = {kind: 0 for kind in ElementKind}
        self.hit_counts: dict[ElementKind, int] = {kind: 0 for kind in ElementKind}

    @property
    def backend_name(self) -> str:
        return self.backend.name

    # ----------------------------------------------------------------- state
    def state_token(self) -> tuple[int, int, int]:
        """The full (parameter, snapshot, landmark) version triple."""
        model = self.model
        return (parameter_version(), model.snapshot_version, model.landmark_version)

    def _token_for(self, key: object) -> tuple[int, ...]:
        """The version token ``key`` depends on.

        Only the combined entity similarity reads the structural channel, so
        only it is keyed on the landmark version; relation/class matrices and
        the embedding-only entity channel survive landmark updates.
        """
        if key is ElementKind.ENTITY or key == (_CHANNELS, ElementKind.ENTITY):
            return self.state_token()
        return (parameter_version(), self.model.snapshot_version)

    @property
    def snapshot(self) -> "AlignmentSnapshot":
        """The model's NumPy snapshot (single access point for consumers)."""
        return self.model.snapshot

    def shape(self, kind: ElementKind) -> tuple[int, int]:
        """The ``(|X1|, |X2|)`` shape of ``kind``'s similarity."""
        model = self.model
        if kind is ElementKind.ENTITY:
            return (model.kg1.num_entities, model.kg2.num_entities)
        if kind is ElementKind.RELATION:
            return (model.kg1.num_relations, model.kg2.num_relations)
        return (model.kg1.num_classes, model.kg2.num_classes)

    def invalidate(self) -> None:
        """Drop every cached matrix, channel set and top-k table."""
        self._matrices.clear()
        self._channels.clear()
        self._top_k.clear()

    def export_state(self) -> dict[ElementKind, SimilarityView]:
        """Frozen serving views of all three similarities.

        Dense views copy their matrix (the serving layer appends fold-in
        rows/columns, which must never alias the engine's shared cache);
        streamed views share the immutable channel factors and collect
        fold-ins in small tail arrays.
        """
        return {kind: self.backend.view(kind) for kind in ElementKind}

    # ----------------------------------------------------------------- cache
    def _cached(self, key: object) -> np.ndarray | None:
        entry = self._matrices.get(key)
        if entry is not None and entry[0] == self._token_for(key):
            return entry[1]
        return None

    def matrix(self, kind: ElementKind) -> np.ndarray:
        """The full similarity matrix of ``kind`` (cached; treat as read-only).

        Legacy escape hatch: on the sharded backend this *assembles* the full
        matrix by streaming, so production query paths use the narrow surface
        (``top_k`` / ``rows`` / ``stream_blocks`` / ``row_max``) instead.
        """
        cached = self._cached(kind)
        if cached is not None:
            self.hit_counts[kind] += 1
            obs.counter("similarity.cache.hits", kind=kind.value, cache="matrix").inc()
            return cached
        # Materialise the snapshot first: a lazy refresh_statistics seeds the
        # entity cache (dense), turning this miss into a hit instead of a
        # recompute.
        self.model.snapshot
        cached = self._cached(kind)
        if cached is not None:
            self.hit_counts[kind] += 1
            obs.counter("similarity.cache.hits", kind=kind.value, cache="matrix").inc()
            return cached
        obs.counter("similarity.cache.misses", kind=kind.value, cache="matrix").inc()
        with obs.span("similarity.matrix.rebuild", kind=kind.value):
            matrix = self.backend.compute_full(kind)
        # Token is read *after* computing: the computation may lazily refresh
        # the snapshot, which bumps the model's snapshot version.
        self._matrices[kind] = (self._token_for(kind), matrix)
        self.compute_counts[kind] += 1
        obs.counter("similarity.cache.rebuilds", kind=kind.value, cache="matrix").inc()
        return matrix

    def _dense_matrix(self, kind: ElementKind) -> np.ndarray:
        """The dense backend's compute primitive (historical, bit-exact path)."""
        if kind is ElementKind.ENTITY:
            return self._entity_matrix()
        if kind is ElementKind.RELATION:
            return self._relation_matrix()
        return self._class_matrix()

    def seed_entity_cache(self, embedding_channel: np.ndarray, combined: np.ndarray) -> None:
        """Seed both entity caches from ``refresh_statistics``'s computation.

        The dense path of ``refresh_statistics`` already computes the entity
        similarity for the dangling-entity weights; storing it here means the
        following round of mining and evaluation gets cache hits for free.
        """
        self._matrices[_ENTITY_EMBEDDING_CHANNEL] = (
            self._token_for(_ENTITY_EMBEDDING_CHANNEL),
            embedding_channel,
        )
        self._matrices[ElementKind.ENTITY] = (self._token_for(ElementKind.ENTITY), combined)

    # ---------------------------------------------------------------- queries
    def rows(self, kind: ElementKind, indices: np.ndarray) -> np.ndarray:
        """Full-width similarity slab of the selected rows."""
        self.model.snapshot
        return self.backend.rows(kind, indices)

    def cols(self, kind: ElementKind, indices: np.ndarray) -> np.ndarray:
        """Full-height similarity slab of the selected columns."""
        self.model.snapshot
        return self.backend.cols(kind, indices)

    def iter_rows_blocks(
        self, kind: ElementKind, indices: np.ndarray
    ) -> Iterator[tuple[slice, np.ndarray]]:
        """Column-block tiles ``(col_slice, tile)`` of the selected rows."""
        self.model.snapshot
        return self.backend.iter_rows_blocks(kind, indices)

    def iter_cols_blocks(
        self, kind: ElementKind, indices: np.ndarray
    ) -> Iterator[tuple[slice, np.ndarray]]:
        """Row-block tiles ``(row_slice, tile)`` of the selected columns."""
        self.model.snapshot
        return self.backend.iter_cols_blocks(kind, indices)

    def stream_blocks(self, kind: ElementKind) -> Iterator[tuple[slice, slice, np.ndarray]]:
        """All ``(row_slice, col_slice, tile)`` tiles of ``kind``'s similarity."""
        self.model.snapshot
        return self.backend.stream_blocks(kind)

    def row_max(self, kind: ElementKind) -> np.ndarray:
        """Per-row maximum similarity (zeros when the counterpart side is empty)."""
        self.model.snapshot
        return self.backend.row_max(kind)

    def col_max(self, kind: ElementKind) -> np.ndarray:
        """Per-column maximum similarity (zeros when the counterpart side is empty)."""
        self.model.snapshot
        return self.backend.col_max(kind)

    def row_col_max(self, kind: ElementKind) -> tuple[np.ndarray, np.ndarray]:
        """Both directions at once — one fused tile sweep on streaming backends."""
        self.model.snapshot
        return self.backend.row_col_max(kind)

    def threshold_candidates(
        self, kind: ElementKind, threshold: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All ``(rows, cols, values)`` with value ≥ threshold, row-major.

        Exact on every backend: the ANN backend prunes with per-list covering
        radii, which cannot drop a qualifying pair.
        """
        self.model.snapshot
        return self.backend.threshold_candidates(kind, threshold)

    def mutual_top_n_pairs(
        self, left_factors: np.ndarray, right_factors: np.ndarray, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mutually-top-``n`` cosine pairs between two raw factor sets.

        The pool builder's candidate filter; the ANN backend accelerates it
        with ephemeral per-direction indexes on large factor sets.
        """
        return self.backend.mutual_top_n_pairs(left_factors, right_factors, n)

    def top_k_table(self, kind: ElementKind, k: int) -> TopKTable:
        """Top-``k`` counterpart indices *and values*, both directions, cached."""
        key = (kind, k)
        entry = self._top_k.get(key)
        if entry is not None and entry[0] == self._token_for(kind):
            obs.counter("similarity.cache.hits", kind=kind.value, cache="top_k").inc()
            return entry[1]
        self.model.snapshot
        entry = self._top_k.get(key)
        if entry is not None and entry[0] == self._token_for(kind):
            obs.counter("similarity.cache.hits", kind=kind.value, cache="top_k").inc()
            return entry[1]
        obs.counter("similarity.cache.misses", kind=kind.value, cache="top_k").inc()
        with obs.span("similarity.top_k.rebuild", kind=kind.value, k=k):
            table = self.backend.top_k_table(kind, k)
        self._top_k[key] = (self._token_for(kind), table)
        obs.counter("similarity.cache.rebuilds", kind=kind.value, cache="top_k").inc()
        return table

    def top_k(self, kind: ElementKind, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` counterpart indices per row and per column of ``kind``.

        Returns ``(for_left, for_right)``: ``for_left[i]`` holds the ``k``
        most similar KG2 elements of KG1 element ``i`` (descending), and
        ``for_right[j]`` the ``k`` most similar KG1 elements of KG2 element
        ``j``.  Cached under the same token as the underlying similarity.
        """
        table = self.top_k_table(kind, k)
        return table.left_indices, table.right_indices

    # -------------------------------------------------------- channel factors
    def channels(self, kind: ElementKind) -> CosineChannels:
        """``kind``'s similarity as max-of-factored-cosines (cached per token).

        This is the sharded backend's compute substrate: every channel of
        every similarity in this model is a cosine of factor matrices — the
        mapped embedding channel, the structural propagation features, the
        mean-embedding channels — so arbitrary tiles can be produced without
        materialising anything ``N × M``.
        """
        key = (_CHANNELS, kind)
        entry = self._channels.get(key)
        if entry is not None and entry[0] == self._token_for(key):
            obs.counter("similarity.cache.hits", kind=kind.value, cache="channels").inc()
            return entry[1]
        snap = self.model.snapshot  # may bump the snapshot version: build after
        entry = self._channels.get(key)
        if entry is not None and entry[0] == self._token_for(key):
            obs.counter("similarity.cache.hits", kind=kind.value, cache="channels").inc()
            return entry[1]
        obs.counter("similarity.cache.misses", kind=kind.value, cache="channels").inc()
        channels = self._build_channels(kind, snap)
        self._channels[key] = (self._token_for(key), channels)
        obs.counter("similarity.cache.rebuilds", kind=kind.value, cache="channels").inc()
        return channels

    def _build_channels(self, kind: ElementKind, snap: "AlignmentSnapshot") -> CosineChannels:
        model = self.model
        with no_grad():
            if kind is ElementKind.ENTITY:
                # single source of truth for the entity decomposition —
                # shared with the model's streamed dangling-entity weights
                pairs, clip = model.entity_channel_factors(
                    snap.entity_matrix_1, snap.entity_matrix_2
                )
                return CosineChannels(pairs, shape=self.shape(kind), clip_at_zero=clip)
            if kind is ElementKind.RELATION:
                pairs = [
                    ChannelPair.from_raw(
                        snap.relation_matrix_1 @ model.map_relation.data,
                        snap.relation_matrix_2,
                    )
                ]
                if model.use_mean_embeddings:
                    pairs.append(
                        ChannelPair.from_raw(
                            snap.mean_relations_1 @ model.map_entity.data,
                            snap.mean_relations_2,
                        )
                    )
                return CosineChannels(pairs, shape=self.shape(kind))
            # classes
            shape = self.shape(kind)
            if shape[0] == 0 or shape[1] == 0:
                return CosineChannels([], shape=shape)
            pairs = []
            if model.use_class_embeddings:
                c1 = model.class_scorer1.all_class_embeddings().numpy()
                c2 = model.class_scorer2.all_class_embeddings().numpy()
                pairs.append(ChannelPair.from_raw(c1 @ model.map_class.data, c2))
            elif model.class_entity_maps is not None:
                map1, map2 = model.class_entity_maps
                pairs.append(
                    ChannelPair.from_raw(
                        snap.entity_matrix_1[map1] @ model.map_entity.data,
                        snap.entity_matrix_2[map2],
                    )
                )
            if model.use_mean_embeddings:
                pairs.append(
                    ChannelPair.from_raw(
                        snap.mean_classes_1 @ model.map_entity.data, snap.mean_classes_2
                    )
                )
            return CosineChannels(pairs, shape=shape)

    # ----------------------------------------------------- top-k persistence
    def export_top_k_arrays(self) -> dict[str, np.ndarray]:
        """Current-token top-k tables as flat arrays (checkpoint payload)."""
        out: dict[str, np.ndarray] = {}
        for (kind, k), (token, table) in self._top_k.items():
            if token != self._token_for(kind):
                continue
            prefix = f"{kind.value}/{k}"
            out[f"{prefix}/left_indices"] = table.left_indices
            out[f"{prefix}/left_values"] = table.left_values
            out[f"{prefix}/right_indices"] = table.right_indices
            out[f"{prefix}/right_values"] = table.right_values
        return out

    def seed_top_k_arrays(self, arrays: dict[str, np.ndarray]) -> int:
        """Seed the top-k cache from checkpoint arrays; returns entries seeded.

        Valid only right after a bit-exact restore (the saved tables describe
        exactly the restored similarity state); entries are keyed under the
        *current* token, so the next optimiser step invalidates them as usual.
        """
        grouped: dict[tuple[ElementKind, int], dict[str, np.ndarray]] = {}
        for key, value in arrays.items():
            kind_value, k, field = key.split("/")
            grouped.setdefault((ElementKind(kind_value), int(k)), {})[field] = value
        for (kind, k), fields in grouped.items():
            self._top_k[(kind, k)] = (
                self._token_for(kind),
                TopKTable(
                    left_indices=fields["left_indices"],
                    left_values=fields["left_values"],
                    right_indices=fields["right_indices"],
                    right_values=fields["right_values"],
                ),
            )
        return len(grouped)

    # ------------------------------------------------- dense matrix assembly
    def embedding_entity_matrix(self) -> np.ndarray:
        """The embedding channel only: ``cos(A_ent · e, e')`` for all pairs."""
        cached = self._cached(_ENTITY_EMBEDDING_CHANNEL)
        if cached is not None:
            return cached
        model = self.model
        snap = model.snapshot  # may lazily refresh and seed this very cache
        cached = self._cached(_ENTITY_EMBEDDING_CHANNEL)
        if cached is not None:
            return cached
        with no_grad():
            mapped = snap.entity_matrix_1 @ model.map_entity.data
            matrix = blocked_cosine_similarity(mapped, snap.entity_matrix_2, self.block_size)
        self._matrices[_ENTITY_EMBEDDING_CHANNEL] = (
            self._token_for(_ENTITY_EMBEDDING_CHANNEL),
            matrix,
        )
        return matrix

    def _entity_matrix(self) -> np.ndarray:
        embedding_channel = self.embedding_entity_matrix()
        structural = self.model.structural_similarity_matrix()
        if structural is None:
            return embedding_channel
        return np.maximum(embedding_channel, structural)

    def _relation_matrix(self) -> np.ndarray:
        model = self.model
        snap = model.snapshot
        with no_grad():
            direct = blocked_cosine_similarity(
                snap.relation_matrix_1 @ model.map_relation.data,
                snap.relation_matrix_2,
                self.block_size,
            )
            if not model.use_mean_embeddings:
                return direct
            mean_sim = blocked_cosine_similarity(
                snap.mean_relations_1 @ model.map_entity.data,
                snap.mean_relations_2,
                self.block_size,
            )
            return np.maximum(direct, mean_sim)

    def _class_matrix(self) -> np.ndarray:
        model = self.model
        if model.kg1.num_classes == 0 or model.kg2.num_classes == 0:
            return np.zeros((model.kg1.num_classes, model.kg2.num_classes))
        snap = model.snapshot
        with no_grad():
            channels: list[np.ndarray] = []
            if model.use_class_embeddings:
                c1 = model.class_scorer1.all_class_embeddings().numpy()
                c2 = model.class_scorer2.all_class_embeddings().numpy()
                channels.append(
                    blocked_cosine_similarity(c1 @ model.map_class.data, c2, self.block_size)
                )
            elif model.class_entity_maps is not None:
                map1, map2 = model.class_entity_maps
                e1 = snap.entity_matrix_1[map1] @ model.map_entity.data
                e2 = snap.entity_matrix_2[map2]
                channels.append(blocked_cosine_similarity(e1, e2, self.block_size))
            if model.use_mean_embeddings:
                channels.append(
                    blocked_cosine_similarity(
                        snap.mean_classes_1 @ model.map_entity.data,
                        snap.mean_classes_2,
                        self.block_size,
                    )
                )
            result = channels[0]
            for channel in channels[1:]:
                result = np.maximum(result, channel)
            return result
