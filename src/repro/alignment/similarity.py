"""The :class:`SimilarityEngine`: cached, blocked similarity computation.

Every hot path of the active alignment loop — hard-negative mining,
semi-supervised mining, calibrated probability lookups, pool building and
progressive evaluation — needs the full ``|X1| × |X2|`` similarity matrix of
one element kind.  Before this engine existed each call site recomputed the
matrix from scratch, which dominated the runtime benchmarks; the engine makes
every matrix a cheap cached lookup between parameter updates.

Caching / versioning contract
-----------------------------

A cached matrix is valid for a *version token*:

* ``parameter_version`` — the global counter in :mod:`repro.nn.optim`, bumped
  by every ``Adam.step`` / ``SGD.step`` (and by ``Module.load_state_dict``
  and ``Embedding.renormalize``).  Any optimiser step therefore invalidates
  all cached matrices — stale similarities are never served.  The same token
  keys the embedding models' forward session
  (:meth:`repro.embedding.base.KGEmbeddingModel.outputs`), so the snapshot
  this engine reads and the training losses share one forward per version.
* ``model.snapshot_version`` — bumped by
  :meth:`JointAlignmentModel.refresh_statistics`, which rebuilds the NumPy
  snapshot (mean embeddings, weights) every matrix depends on.
* ``model.landmark_version`` — bumped by effective
  :meth:`JointAlignmentModel.set_landmarks` calls.  Only the combined entity
  matrix is keyed on it (through the structural propagation channel);
  relation/class matrices survive landmark updates untouched.

Between two bumps the engine serves the same ``np.ndarray`` object over and
over (treat returned matrices as read-only); within one optimiser step a
matrix is computed at most once, no matter how many call sites ask for it.
``refresh_statistics`` additionally *seeds* the entity cache with the matrix
it computes internally for the dangling-entity weights, so one training round
pays for a single entity-matrix computation in total.

``top_k(kind, k)`` layers a second cache on top: per-row / per-column top-``k``
candidate indices via ``np.argpartition`` (O(n) per row) instead of the full
``argsort`` (O(n log n)) the call sites used previously.

Matrices are assembled in row blocks of ``block_size`` so the normalised
intermediate products stay cache- and memory-friendly on large vocabularies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.autograd.tensor import no_grad
from repro.kg.elements import ElementKind
from repro.nn.optim import parameter_version
from repro.utils.math import cosine_similarity_matrix, l2_normalize, top_k_rows

if TYPE_CHECKING:  # pragma: no cover - import cycle with model.py
    from repro.alignment.model import AlignmentSnapshot, JointAlignmentModel

DEFAULT_BLOCK_SIZE = 4096

# Cache key for the embedding-only entity channel (no structural max).
_ENTITY_EMBEDDING_CHANNEL = "entity_embedding_channel"


def blocked_cosine_similarity(
    a: np.ndarray, b: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE
) -> np.ndarray:
    """Pairwise cosine similarities between rows of ``a`` and ``b``, in blocks.

    Delegates to :func:`repro.utils.math.cosine_similarity_matrix` when one
    block suffices; otherwise computes the ``(len(a), len(b))`` product
    ``block_size`` rows at a time, bounding the working set for large
    vocabularies.
    """
    if np.asarray(a).shape[0] <= block_size:
        return cosine_similarity_matrix(a, b)
    a_n = l2_normalize(np.asarray(a, dtype=float))
    b_n = l2_normalize(np.asarray(b, dtype=float))
    out = np.empty((a_n.shape[0], b_n.shape[0]))
    for start in range(0, a_n.shape[0], block_size):
        stop = min(start + block_size, a_n.shape[0])
        out[start:stop] = a_n[start:stop] @ b_n.T
    return out


class SimilarityEngine:
    """Owns similarity matrices and top-k candidates for one alignment model.

    One engine is created per :class:`JointAlignmentModel` (available as
    ``model.similarity``); the trainer, the active loop, pool building and the
    inference-power estimator all read through it.
    """

    def __init__(self, model: "JointAlignmentModel", block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.model = model
        self.block_size = block_size
        self._matrices: dict[object, tuple[tuple[int, int], np.ndarray]] = {}
        self._top_k: dict[tuple[ElementKind, int], tuple[tuple[int, int], tuple[np.ndarray, np.ndarray]]] = {}
        self.compute_counts: dict[ElementKind, int] = {kind: 0 for kind in ElementKind}
        self.hit_counts: dict[ElementKind, int] = {kind: 0 for kind in ElementKind}

    # ----------------------------------------------------------------- state
    def state_token(self) -> tuple[int, int, int]:
        """The full (parameter, snapshot, landmark) version triple."""
        model = self.model
        return (parameter_version(), model.snapshot_version, model.landmark_version)

    def _token_for(self, key: object) -> tuple[int, ...]:
        """The version token ``key`` depends on.

        Only the combined entity matrix reads the structural channel, so only
        it is keyed on the landmark version; relation/class matrices and the
        embedding-only entity channel survive landmark updates.
        """
        if key is ElementKind.ENTITY:
            return self.state_token()
        return (parameter_version(), self.model.snapshot_version)

    @property
    def snapshot(self) -> "AlignmentSnapshot":
        """The model's NumPy snapshot (single access point for consumers)."""
        return self.model.snapshot

    def invalidate(self) -> None:
        """Drop every cached matrix and top-k table."""
        self._matrices.clear()
        self._top_k.clear()

    def export_state(self) -> dict[ElementKind, np.ndarray]:
        """Copies of all three similarity matrices for a frozen serving state.

        Forces each matrix to be materialised (reusing any cached entry for
        the current token) and returns *copies*: the serving layer appends
        fold-in rows/columns to its matrices, which must never alias the
        engine's shared cache entries.
        """
        return {kind: self.matrix(kind).copy() for kind in ElementKind}

    # ----------------------------------------------------------------- cache
    def _cached(self, key: object) -> np.ndarray | None:
        entry = self._matrices.get(key)
        if entry is not None and entry[0] == self._token_for(key):
            return entry[1]
        return None

    def matrix(self, kind: ElementKind) -> np.ndarray:
        """The full similarity matrix of ``kind`` (cached; treat as read-only)."""
        cached = self._cached(kind)
        if cached is not None:
            self.hit_counts[kind] += 1
            return cached
        # Materialise the snapshot first: a lazy refresh_statistics seeds the
        # entity cache, turning this miss into a hit instead of a recompute.
        self.model.snapshot
        cached = self._cached(kind)
        if cached is not None:
            self.hit_counts[kind] += 1
            return cached
        matrix = self._compute_matrix(kind)
        # Token is read *after* computing: the computation may lazily refresh
        # the snapshot, which bumps the model's snapshot version.
        self._matrices[kind] = (self._token_for(kind), matrix)
        self.compute_counts[kind] += 1
        return matrix

    def seed_entity_cache(self, embedding_channel: np.ndarray, combined: np.ndarray) -> None:
        """Seed both entity caches from ``refresh_statistics``'s computation.

        ``refresh_statistics`` already computes the entity similarity for the
        dangling-entity weights; storing it here means the following round of
        mining and evaluation gets cache hits for free.
        """
        self._matrices[_ENTITY_EMBEDDING_CHANNEL] = (
            self._token_for(_ENTITY_EMBEDDING_CHANNEL),
            embedding_channel,
        )
        self._matrices[ElementKind.ENTITY] = (self._token_for(ElementKind.ENTITY), combined)

    def top_k(self, kind: ElementKind, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` counterpart indices per row and per column of ``kind``.

        Returns ``(for_left, for_right)``: ``for_left[i]`` holds the ``k``
        most similar KG2 elements of KG1 element ``i`` (descending), and
        ``for_right[j]`` the ``k`` most similar KG1 elements of KG2 element
        ``j``.  Cached under the same token as the underlying matrix.
        """
        key = (kind, k)
        entry = self._top_k.get(key)
        if entry is not None and entry[0] == self._token_for(kind):
            return entry[1]
        matrix = self.matrix(kind)
        result = (top_k_rows(matrix, k), top_k_rows(matrix.T, k))
        self._top_k[key] = (self._token_for(kind), result)
        return result

    # ----------------------------------------------------------- computation
    def _compute_matrix(self, kind: ElementKind) -> np.ndarray:
        if kind is ElementKind.ENTITY:
            return self._entity_matrix()
        if kind is ElementKind.RELATION:
            return self._relation_matrix()
        return self._class_matrix()

    def embedding_entity_matrix(self) -> np.ndarray:
        """The embedding channel only: ``cos(A_ent · e, e')`` for all pairs."""
        cached = self._cached(_ENTITY_EMBEDDING_CHANNEL)
        if cached is not None:
            return cached
        model = self.model
        snap = model.snapshot  # may lazily refresh and seed this very cache
        cached = self._cached(_ENTITY_EMBEDDING_CHANNEL)
        if cached is not None:
            return cached
        with no_grad():
            mapped = snap.entity_matrix_1 @ model.map_entity.data
            matrix = blocked_cosine_similarity(mapped, snap.entity_matrix_2, self.block_size)
        self._matrices[_ENTITY_EMBEDDING_CHANNEL] = (
            self._token_for(_ENTITY_EMBEDDING_CHANNEL),
            matrix,
        )
        return matrix

    def _entity_matrix(self) -> np.ndarray:
        embedding_channel = self.embedding_entity_matrix()
        structural = self.model.structural_similarity_matrix()
        if structural is None:
            return embedding_channel
        return np.maximum(embedding_channel, structural)

    def _relation_matrix(self) -> np.ndarray:
        model = self.model
        snap = model.snapshot
        with no_grad():
            direct = blocked_cosine_similarity(
                snap.relation_matrix_1 @ model.map_relation.data,
                snap.relation_matrix_2,
                self.block_size,
            )
            if not model.use_mean_embeddings:
                return direct
            mean_sim = blocked_cosine_similarity(
                snap.mean_relations_1 @ model.map_entity.data,
                snap.mean_relations_2,
                self.block_size,
            )
            return np.maximum(direct, mean_sim)

    def _class_matrix(self) -> np.ndarray:
        model = self.model
        if model.kg1.num_classes == 0 or model.kg2.num_classes == 0:
            return np.zeros((model.kg1.num_classes, model.kg2.num_classes))
        snap = model.snapshot
        with no_grad():
            channels: list[np.ndarray] = []
            if model.use_class_embeddings:
                c1 = model.class_scorer1.all_class_embeddings().numpy()
                c2 = model.class_scorer2.all_class_embeddings().numpy()
                channels.append(
                    blocked_cosine_similarity(c1 @ model.map_class.data, c2, self.block_size)
                )
            elif model.class_entity_maps is not None:
                map1, map2 = model.class_entity_maps
                e1 = snap.entity_matrix_1[map1] @ model.map_entity.data
                e2 = snap.entity_matrix_2[map2]
                channels.append(blocked_cosine_similarity(e1, e2, self.block_size))
            if model.use_mean_embeddings:
                channels.append(
                    blocked_cosine_similarity(
                        snap.mean_classes_1 @ model.map_entity.data,
                        snap.mean_classes_2,
                        self.block_size,
                    )
                )
            result = channels[0]
            for channel in channels[1:]:
                result = np.maximum(result, channel)
            return result
