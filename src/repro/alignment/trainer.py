"""Training the joint alignment model (Sect. 4.2).

The trainer owns the labelled match/non-match sets for entities, relations and
classes, and optimises:

* the alignment losses ``O_ea``, ``O_ra``, ``O_ca`` (pairwise softmax against
  corrupted matches, Eqs. 5 and 8),
* a hinge penalty on labelled non-matches (oracle "no" answers),
* the semi-supervised loss on mined potential matches (Eq. 10),
* a small number of continued embedding batches per round, so the entity
  structure does not drift while the mapping matrices are being fitted.

``fine_tune`` implements the focal-loss fine-tuning used between active
learning batches: newly labelled pairs are emphasised by ``(1 − p)^γ``
weights instead of retraining from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.autograd import functional as F
from repro.alignment.model import JointAlignmentModel
from repro.alignment.semi_supervised import (
    PotentialMatch,
    mine_potential_matches_from_engine,
)
from repro.kg.elements import ElementKind
from repro.kg.sampling import NegativeSampler, corrupt_match_pairs
from repro.nn.optim import Adam
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, ensure_rng

logger = get_logger(__name__)

_KINDS = (ElementKind.ENTITY, ElementKind.RELATION, ElementKind.CLASS)


@dataclass(frozen=True)
class AlignmentTrainingConfig:
    """Hyper-parameters of joint alignment training."""

    rounds: int = 3
    epochs_per_round: int = 25
    learning_rate: float = 0.02
    num_negatives: int = 5
    semi_supervised: bool = True
    semi_threshold: float = 0.7
    semi_max_per_kind: int = 500
    focal_gamma: float = 2.0
    non_match_margin: float = 0.3
    embedding_batches_per_round: int = 2
    embedding_batch_size: int = 256
    embedding_margin: float = 1.0
    align_relations_via_entity_map: bool = True
    hard_negative_fraction: float = 0.5
    hard_negative_pool: int = 10
    entity_anchor_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rounds <= 0 or self.epochs_per_round <= 0:
            raise ValueError("rounds and epochs_per_round must be positive")
        if not 0.0 < self.semi_threshold <= 1.0:
            raise ValueError("semi_threshold must be in (0, 1]")
        if self.focal_gamma < 0:
            raise ValueError("focal_gamma must be non-negative")
        if not 0.0 <= self.hard_negative_fraction <= 1.0:
            raise ValueError("hard_negative_fraction must be in [0, 1]")


@dataclass
class LabelStore:
    """Labelled matches and non-matches per element kind (index pairs).

    Each ordered list is shadowed by a set so :meth:`add` is O(1) — with the
    old list-membership check, label ingestion was quadratic over an active
    learning campaign.  The lists remain the public, insertion-ordered view.
    :meth:`match_array`/:meth:`non_match_array` are cached per kind (treat the
    returned arrays as read-only) and invalidated by :meth:`add`, so the
    optimisation loop no longer rebuilds an array from the Python list on
    every step.
    """

    matches: dict[ElementKind, list[tuple[int, int]]] = field(
        default_factory=lambda: {k: [] for k in _KINDS}
    )
    non_matches: dict[ElementKind, list[tuple[int, int]]] = field(
        default_factory=lambda: {k: [] for k in _KINDS}
    )

    def __post_init__(self) -> None:
        self._match_sets = {kind: set(pairs) for kind, pairs in self.matches.items()}
        self._non_match_sets = {kind: set(pairs) for kind, pairs in self.non_matches.items()}
        self._match_arrays: dict[ElementKind, np.ndarray | None] = {k: None for k in _KINDS}
        self._non_match_arrays: dict[ElementKind, np.ndarray | None] = {k: None for k in _KINDS}

    def add(self, kind: ElementKind, pair: tuple[int, int], is_match: bool) -> None:
        store, index, arrays = (
            (self.matches, self._match_sets, self._match_arrays)
            if is_match
            else (self.non_matches, self._non_match_sets, self._non_match_arrays)
        )
        if pair not in index[kind]:
            index[kind].add(pair)
            store[kind].append(pair)
            arrays[kind] = None

    def match_array(self, kind: ElementKind) -> np.ndarray:
        cached = self._match_arrays[kind]
        if cached is None:
            cached = np.asarray(self.matches[kind], dtype=np.int64).reshape(-1, 2)
            self._match_arrays[kind] = cached
        return cached

    def non_match_array(self, kind: ElementKind) -> np.ndarray:
        cached = self._non_match_arrays[kind]
        if cached is None:
            cached = np.asarray(self.non_matches[kind], dtype=np.int64).reshape(-1, 2)
            self._non_match_arrays[kind] = cached
        return cached

    def labelled_pairs(self, kind: ElementKind) -> set[tuple[int, int]]:
        return self._match_sets[kind] | self._non_match_sets[kind]

    def num_labels(self) -> int:
        return sum(len(v) for v in self.matches.values()) + sum(
            len(v) for v in self.non_matches.values()
        )


class JointAlignmentTrainer:
    """Optimises a :class:`JointAlignmentModel` from labelled element pairs."""

    def __init__(
        self,
        model: JointAlignmentModel,
        config: AlignmentTrainingConfig | None = None,
        seed: RandomState = None,
    ) -> None:
        self.model = model
        self.engine = model.similarity
        self.config = config or AlignmentTrainingConfig()
        self.rng = ensure_rng(seed)
        self.labels = LabelStore()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._sampler1 = NegativeSampler(model.kg1, seed=self.rng)
        self._sampler2 = NegativeSampler(model.kg2, seed=self.rng)
        self._semi: dict[ElementKind, list[PotentialMatch]] = {k: [] for k in _KINDS}
        self._hard_candidates: tuple[np.ndarray, np.ndarray] | None = None
        self.loss_history: list[float] = []

    # ----------------------------------------------------------------- labels
    def add_matches(self, kind: ElementKind, pairs: np.ndarray | list[tuple[int, int]]) -> None:
        for left, right in np.asarray(pairs, dtype=np.int64).reshape(-1, 2):
            self.labels.add(kind, (int(left), int(right)), True)

    def add_non_matches(self, kind: ElementKind, pairs: np.ndarray | list[tuple[int, int]]) -> None:
        for left, right in np.asarray(pairs, dtype=np.int64).reshape(-1, 2):
            self.labels.add(kind, (int(left), int(right)), False)

    # ---------------------------------------------------------------- helpers
    def _vocab_sizes(self, kind: ElementKind) -> tuple[int, int]:
        if kind is ElementKind.ENTITY:
            return self.model.kg1.num_entities, self.model.kg2.num_entities
        if kind is ElementKind.RELATION:
            return self.model.kg1.num_relations, self.model.kg2.num_relations
        return self.model.kg1.num_classes, self.model.kg2.num_classes

    @staticmethod
    def _avoid_positive(
        candidates: np.ndarray,
        positives: np.ndarray,
        top: np.ndarray,
        anchors: np.ndarray,
        slots: np.ndarray,
        num_counterparts: int,
    ) -> np.ndarray:
        """Replace candidates that collide with their positive counterpart.

        A colliding draw is replaced by the anchor's *next* hard candidate,
        which stays inside the mined pool (the old ``(candidate + 1) % n``
        bump jumped to an arbitrary entity id).  Only when the pool has a
        single column can the replacement still collide; then fall back to the
        neighbouring id, which differs from the positive whenever ``n > 1``.
        """
        collide = candidates == positives
        if not np.any(collide):
            return candidates
        pool = top.shape[1]
        replacement = top[anchors[collide], (slots[collide] + 1) % pool]
        still = replacement == positives[collide]
        if np.any(still):
            replacement[still] = (positives[collide][still] + 1) % max(num_counterparts, 1)
        candidates[collide] = replacement
        return candidates

    def _hard_negatives(self, matches: np.ndarray, num_negatives: int) -> np.ndarray:
        """Entity negatives drawn from each entity's most similar counterparts.

        Hard sample mining sharpens the mapping matrix far more than uniform
        corruption (the role Dual-AMN attributes to normalised hard samples);
        the candidate lists come from the engine's cached top-k tables.  Fully
        vectorized: one coin-flip array decides the corrupted side, one slot
        array picks candidates, and collisions with the positive counterpart
        are repaired in bulk.
        """
        if self._hard_candidates is None or matches.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        top_for_left, top_for_right = self._hard_candidates
        total = matches.shape[0] * num_negatives
        lefts = np.repeat(matches[:, 0], num_negatives)
        rights = np.repeat(matches[:, 1], num_negatives)
        corrupt_right = self.rng.random(total) < 0.5
        num_corrupt_right = int(corrupt_right.sum())
        # each side draws slots over its own table width — the tables can be
        # narrower than the configured pool when a KG is small
        slots = np.empty(total, dtype=np.int64)
        slots[corrupt_right] = self.rng.integers(
            0, top_for_left.shape[1], size=num_corrupt_right
        )
        slots[~corrupt_right] = self.rng.integers(
            0, top_for_right.shape[1], size=total - num_corrupt_right
        )
        negatives = np.empty((total, 2), dtype=np.int64)

        mask = corrupt_right
        candidates = top_for_left[lefts[mask], slots[mask]]
        negatives[mask, 0] = lefts[mask]
        negatives[mask, 1] = self._avoid_positive(
            candidates, rights[mask], top_for_left, lefts[mask], slots[mask],
            self.model.kg2.num_entities,
        )

        mask = ~corrupt_right
        candidates = top_for_right[rights[mask], slots[mask]]
        negatives[mask, 0] = self._avoid_positive(
            candidates, lefts[mask], top_for_right, rights[mask], slots[mask],
            self.model.kg1.num_entities,
        )
        negatives[mask, 1] = rights[mask]
        return negatives

    def _match_loss(self, kind: ElementKind, matches: np.ndarray, focal: bool):
        """Pairwise softmax (or focal) loss over matches and sampled corruptions."""
        num_left, num_right = self._vocab_sizes(kind)
        num_hard = 0
        if kind is ElementKind.ENTITY and self._hard_candidates is not None:
            num_hard = int(round(self.config.num_negatives * self.config.hard_negative_fraction))
        num_random = self.config.num_negatives - num_hard
        negative_parts = []
        positive_parts = []
        if num_random > 0:
            negative_parts.append(
                corrupt_match_pairs(matches, num_left, num_right, self.rng, num_random)
            )
            positive_parts.append(np.repeat(matches, num_random, axis=0))
        if num_hard > 0:
            negative_parts.append(self._hard_negatives(matches, num_hard))
            positive_parts.append(np.repeat(matches, num_hard, axis=0))
        negatives = np.concatenate(negative_parts, axis=0)
        positives = np.concatenate(positive_parts, axis=0)
        pos_scores = self.model.pair_similarity(kind, positives)
        neg_scores = self.model.pair_similarity(kind, negatives)
        if focal:
            return F.focal_pairwise_softmax_loss(pos_scores, neg_scores, self.config.focal_gamma)
        return F.pairwise_softmax_loss(pos_scores, neg_scores)

    def _non_match_loss(self, kind: ElementKind, non_matches: np.ndarray):
        """Hinge loss pushing labelled non-matches below ``non_match_margin``."""
        scores = self.model.pair_similarity(kind, non_matches)
        return (scores - self.config.non_match_margin).clamp_min(0.0).mean()

    def _entity_anchor_loss(self):
        """L2 anchor loss ``||A_ent e − e'||²`` on labelled and mined entity matches.

        The cosine-based softmax loss ranks candidates but does not force the
        mapped embedding to coincide with its counterpart; translation-style
        propagation (seed match + matched relation ⇒ neighbour match) needs
        that coincidence, so the anchors are pinned in L2 as MTransE does.
        """
        pairs = list(self.labels.matches[ElementKind.ENTITY])
        pairs += [(m.left, m.right) for m in self._semi[ElementKind.ENTITY]]
        if not pairs:
            return None
        array = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        e1 = self.model.model1.entity_output(array[:, 0])
        e2 = self.model.model2.entity_output(array[:, 1])
        diff = (e1 @ self.model.map_entity) - e2
        return (diff * diff).sum(axis=1).mean() * self.config.entity_anchor_weight

    def _relation_translation_loss(self):
        """Align relation representations through the *entity* mapping matrix.

        For TransE-style decoders an entity match propagates to its neighbours
        only if ``A_ent`` also carries relation translation vectors across the
        KGs (``A_ent(e + r) ≈ e' + r'`` requires ``A_ent r ≈ r'``).  This term
        applies that constraint to every labelled or mined relation match and
        is the structural bridge that lets seed entity matches generalise.
        """
        pairs = list(self.labels.matches[ElementKind.RELATION])
        pairs += [(m.left, m.right) for m in self._semi[ElementKind.RELATION]]
        if not pairs:
            return None
        array = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        r1 = self.model.model1.relation_output(array[:, 0])
        r2 = self.model.model2.relation_output(array[:, 1])
        sims = F.cosine_similarity_rows(r1 @ self.model.map_entity, r2)
        return (1.0 - sims).mean()

    def _semi_loss(self, kind: ElementKind):
        mined = self._semi[kind]
        if not mined:
            return None
        pairs = np.asarray([(m.left, m.right) for m in mined], dtype=np.int64)
        soft_labels = np.asarray([m.soft_label for m in mined])
        similarities = self.model.pair_similarity(kind, pairs)
        return F.soft_label_loss(similarities, soft_labels)

    def _embedding_loss(self):
        """A couple of margin-loss batches per KG to keep structure intact."""
        losses = []
        for kg, emb_model, sampler in (
            (self.model.kg1, self.model.model1, self._sampler1),
            (self.model.kg2, self.model.model2, self._sampler2),
        ):
            triples = kg.triple_array
            if triples.size == 0:
                continue
            idx = self.rng.integers(0, triples.shape[0], size=min(self.config.embedding_batch_size, triples.shape[0]))
            batch = triples[idx]
            negatives = sampler.corrupt_tails(batch, 1)
            pos = emb_model.triple_scores(batch)
            neg = emb_model.triple_scores(negatives)
            losses.append(F.margin_ranking_loss(pos, neg, self.config.embedding_margin))
        if not losses:
            return None
        total = losses[0]
        for loss in losses[1:]:
            total = total + loss
        return total

    def _total_loss(self, focal_kinds: set[ElementKind] | None = None):
        """Sum of all loss terms for one optimisation step (None when no labels).

        Every term reads entity/relation representations through the models'
        cached forward session (``KGEmbeddingModel.outputs``), so the 10+
        terms of one step gather from a single full forward per model and
        ``backward`` runs message passing once — the parameter version only
        bumps when the optimiser steps.
        """
        focal_kinds = focal_kinds or set()
        terms = []
        for kind in _KINDS:
            matches = self.labels.match_array(kind)
            if matches.size:
                with obs.timer("trainer.loss.seconds", term="match", kind=kind.value):
                    terms.append(self._match_loss(kind, matches, focal=kind in focal_kinds))
            non_matches = self.labels.non_match_array(kind)
            if non_matches.size:
                with obs.timer("trainer.loss.seconds", term="non_match", kind=kind.value):
                    terms.append(self._non_match_loss(kind, non_matches))
            if self.config.semi_supervised:
                with obs.timer("trainer.loss.seconds", term="semi", kind=kind.value):
                    semi = self._semi_loss(kind)
                if semi is not None:
                    terms.append(semi)
        if self.config.entity_anchor_weight > 0:
            with obs.timer("trainer.loss.seconds", term="entity_anchor"):
                anchor = self._entity_anchor_loss()
            if anchor is not None:
                terms.append(anchor)
        if self.config.align_relations_via_entity_map:
            with obs.timer("trainer.loss.seconds", term="relation_translation"):
                translation = self._relation_translation_loss()
            if translation is not None:
                terms.append(translation)
        if self.config.embedding_batches_per_round > 0:
            with obs.timer("trainer.loss.seconds", term="embedding"):
                for _ in range(self.config.embedding_batches_per_round):
                    emb = self._embedding_loss()
                    if emb is not None:
                        terms.append(emb)
        if not terms:
            return None
        total = terms[0]
        for term in terms[1:]:
            total = total + term
        return total

    # ----------------------------------------------------------- semi mining
    def _current_entity_landmarks(self) -> np.ndarray:
        """Labelled entity matches plus mined potential matches, as index pairs."""
        pairs = list(self.labels.matches[ElementKind.ENTITY])
        pairs += [(m.left, m.right) for m in self._semi[ElementKind.ENTITY]]
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(sorted(set(pairs)), dtype=np.int64)

    def _refresh_round_state(self) -> None:
        """Refresh landmarks, statistics, hard negatives and semi-supervision.

        ``refresh_statistics`` seeds the engine's entity cache, so mining hard
        candidates and potential matches below reuses one entity matrix.
        """
        with obs.span("trainer.refresh_round_state"):
            self.model.set_landmarks(self._current_entity_landmarks())
            self.model.refresh_statistics()
            self._refresh_hard_candidates()
            if self.config.semi_supervised:
                self._refresh_semi_supervision()
                self.model.set_landmarks(self._current_entity_landmarks())

    def _refresh_hard_candidates(self) -> None:
        """Cache each entity's most similar counterparts for hard negative mining."""
        num_right = self.model.kg2.num_entities
        pool = min(self.config.hard_negative_pool, max(num_right - 1, 1))
        if num_right == 0 or pool <= 0 or self.config.hard_negative_fraction == 0:
            self._hard_candidates = None
            return
        self._hard_candidates = self.engine.top_k(ElementKind.ENTITY, pool)

    def _refresh_semi_supervision(self) -> None:
        """Mine potential matches above ``τ`` for every element kind.

        Mining reads *streamed* similarity tiles through the engine, so it
        works identically on the dense backend (tiles are cache slices) and
        the sharded backend (tiles are computed on the fly, the full matrix
        never exists).
        """
        for kind in _KINDS:
            labelled = self.labels.labelled_pairs(kind)
            matched_left = {left for left, _ in self.labels.matches[kind]}
            matched_right = {right for _, right in self.labels.matches[kind]}
            self._semi[kind] = mine_potential_matches_from_engine(
                self.engine,
                kind,
                threshold=self.config.semi_threshold,
                exclude=labelled,
                exclude_left=matched_left,
                exclude_right=matched_right,
                max_candidates=self.config.semi_max_per_kind,
            )

    # ------------------------------------------------------------------ train
    def train(self) -> list[float]:
        """Run the configured number of rounds; returns the loss history."""
        for round_idx in range(self.config.rounds):
            with obs.span("trainer.round", round=round_idx):
                self._refresh_round_state()
                for _ in range(self.config.epochs_per_round):
                    loss = self._step()
                    if loss is not None:
                        self.loss_history.append(loss)
            logger.debug(
                "alignment round %d: loss=%.4f labels=%d",
                round_idx,
                self.loss_history[-1] if self.loss_history else float("nan"),
                self.labels.num_labels(),
            )
        return self.loss_history

    def _step(self, focal_kinds: set[ElementKind] | None = None) -> float | None:
        start = time.perf_counter()
        self.optimizer.zero_grad()
        loss = self._total_loss(focal_kinds)
        if loss is None:
            return None
        with obs.timer("trainer.backward.seconds"):
            loss.backward()
        self.optimizer.step()
        obs.histogram("trainer.step.seconds").observe(time.perf_counter() - start)
        obs.counter("trainer.steps.total").inc()
        return loss.item()

    def fine_tune(
        self,
        new_matches: dict[ElementKind, list[tuple[int, int]]] | None = None,
        new_non_matches: dict[ElementKind, list[tuple[int, int]]] | None = None,
        epochs: int = 10,
        refresh: bool = True,
    ) -> list[float]:
        """Fine-tune after new labels arrive (focal loss on the affected kinds)."""
        focal_kinds: set[ElementKind] = set()
        for kind, pairs in (new_matches or {}).items():
            if pairs:
                self.add_matches(kind, pairs)
                focal_kinds.add(kind)
        for kind, pairs in (new_non_matches or {}).items():
            if pairs:
                self.add_non_matches(kind, pairs)
        if refresh:
            self._refresh_round_state()
        history = []
        for _ in range(epochs):
            loss = self._step(focal_kinds)
            if loss is not None:
                history.append(loss)
        self.loss_history.extend(history)
        return history
