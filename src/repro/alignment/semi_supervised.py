"""Semi-supervised potential-match mining (Sect. 4.2).

Element pairs whose similarity exceeds a threshold ``τ`` are mined as extra
supervision.  Conflicts (one element matched to several counterparts) are
resolved greedily by similarity, and the previous model's similarity is kept
as a *soft label* so that the semi-supervised loss (Eq. 10) down-weights
less certain potential matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PotentialMatch:
    """A mined potential match with its soft label."""

    left: int
    right: int
    soft_label: float


def resolve_conflicts(candidates: list[tuple[int, int, float]]) -> list[tuple[int, int, float]]:
    """Keep a one-to-one subset of candidate matches, preferring higher scores.

    Candidates are ``(left, right, score)`` triples; the result is sorted by
    descending score and contains each left/right element at most once.
    """
    ordered = sorted(candidates, key=lambda c: -c[2])
    used_left: set[int] = set()
    used_right: set[int] = set()
    kept: list[tuple[int, int, float]] = []
    for left, right, score in ordered:
        if left in used_left or right in used_right:
            continue
        used_left.add(left)
        used_right.add(right)
        kept.append((left, right, score))
    return kept


def mine_potential_matches(
    similarity_matrix: np.ndarray,
    threshold: float,
    exclude: set[tuple[int, int]] | None = None,
    exclude_left: set[int] | None = None,
    exclude_right: set[int] | None = None,
    max_candidates: int | None = None,
) -> list[PotentialMatch]:
    """Mine one-to-one potential matches with similarity above ``threshold``.

    ``exclude`` removes pairs already labelled; ``exclude_left`` /
    ``exclude_right`` remove elements whose counterpart is already known, so
    semi-supervision does not contradict oracle labels.
    """
    if similarity_matrix.size == 0:
        return []
    exclude = exclude or set()
    exclude_left = exclude_left or set()
    exclude_right = exclude_right or set()
    rows, cols = np.where(similarity_matrix >= threshold)
    candidates = [
        (int(i), int(j), float(similarity_matrix[i, j]))
        for i, j in zip(rows, cols)
        if (int(i), int(j)) not in exclude
        and int(i) not in exclude_left
        and int(j) not in exclude_right
    ]
    resolved = resolve_conflicts(candidates)
    if max_candidates is not None:
        resolved = resolved[:max_candidates]
    return [PotentialMatch(left, right, score) for left, right, score in resolved]
