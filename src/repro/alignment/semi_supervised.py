"""Semi-supervised potential-match mining (Sect. 4.2).

Element pairs whose similarity exceeds a threshold ``τ`` are mined as extra
supervision.  Conflicts (one element matched to several counterparts) are
resolved greedily by similarity, and the previous model's similarity is kept
as a *soft label* so that the semi-supervised loss (Eq. 10) down-weights
less certain potential matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PotentialMatch:
    """A mined potential match with its soft label."""

    left: int
    right: int
    soft_label: float


def resolve_conflicts(candidates: list[tuple[int, int, float]]) -> list[tuple[int, int, float]]:
    """Keep a one-to-one subset of candidate matches, preferring higher scores.

    Candidates are ``(left, right, score)`` triples; the result is sorted by
    descending score and contains each left/right element at most once.
    """
    ordered = sorted(candidates, key=lambda c: -c[2])
    used_left: set[int] = set()
    used_right: set[int] = set()
    kept: list[tuple[int, int, float]] = []
    for left, right, score in ordered:
        if left in used_left or right in used_right:
            continue
        used_left.add(left)
        used_right.add(right)
        kept.append((left, right, score))
    return kept


def _filter_and_resolve(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    exclude: set[tuple[int, int]] | None,
    exclude_left: set[int] | None,
    exclude_right: set[int] | None,
    max_candidates: int | None,
) -> list[PotentialMatch]:
    """Shared tail of both miners: exclusion filters + conflict resolution."""
    exclude = exclude or set()
    exclude_left = exclude_left or set()
    exclude_right = exclude_right or set()
    candidates = [
        (int(i), int(j), float(v))
        for i, j, v in zip(rows, cols, values)
        if (int(i), int(j)) not in exclude
        and int(i) not in exclude_left
        and int(j) not in exclude_right
    ]
    resolved = resolve_conflicts(candidates)
    if max_candidates is not None:
        resolved = resolved[:max_candidates]
    return [PotentialMatch(left, right, score) for left, right, score in resolved]


def mine_potential_matches(
    similarity_matrix: np.ndarray,
    threshold: float,
    exclude: set[tuple[int, int]] | None = None,
    exclude_left: set[int] | None = None,
    exclude_right: set[int] | None = None,
    max_candidates: int | None = None,
) -> list[PotentialMatch]:
    """Mine one-to-one potential matches with similarity above ``threshold``.

    ``exclude`` removes pairs already labelled; ``exclude_left`` /
    ``exclude_right`` remove elements whose counterpart is already known, so
    semi-supervision does not contradict oracle labels.
    """
    if similarity_matrix.size == 0:
        return []
    rows, cols = np.where(similarity_matrix >= threshold)
    values = similarity_matrix[rows, cols]
    return _filter_and_resolve(
        rows, cols, values, exclude, exclude_left, exclude_right, max_candidates
    )


def mine_potential_matches_from_engine(
    engine,
    kind,
    threshold: float,
    exclude: set[tuple[int, int]] | None = None,
    exclude_left: set[int] | None = None,
    exclude_right: set[int] | None = None,
    max_candidates: int | None = None,
) -> list[PotentialMatch]:
    """Backend-agnostic mining: threshold scan over *streamed* similarity tiles.

    Only the entries above ``τ`` are ever held in memory (the mined candidate
    set), never the full matrix.  Candidates come from the backend's
    threshold scan (:meth:`SimilarityEngine.threshold_candidates`) in global
    row-major order — the same order ``np.where`` yields on a dense matrix,
    and exact on every backend including ANN — and ``resolve_conflicts``
    sorts stably, so the result is identical to
    :func:`mine_potential_matches` on the materialised matrix, ties included.
    """
    num_rows, num_cols = engine.shape(kind)
    if num_rows == 0 or num_cols == 0:
        return []
    if engine.backend_name == "dense":
        # the cached matrix exists anyway: one np.where yields the candidates
        # already row-major, skipping the per-tile scan and the lexsort
        return mine_potential_matches(
            engine.matrix(kind), threshold, exclude, exclude_left, exclude_right,
            max_candidates,
        )
    rows, cols, values = engine.threshold_candidates(kind, threshold)
    return _filter_and_resolve(
        rows, cols, values, exclude, exclude_left, exclude_right, max_candidates
    )
