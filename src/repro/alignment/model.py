"""The joint alignment model (Sect. 4.2).

Entities, relations and classes of two KGs are compared in a shared space by
learnable mapping matrices:

* ``S(e, e') = cos(A_ent · e, e')`` (Eq. 4),
* ``S(r, r') = max(cos(A_rel · r, r'), cos(A_ent · r̄, r̄'))`` where ``r̄`` are
  weighted mean relation embeddings (Eq. 7),
* ``S(c, c') = max(cos(A_cls · c, c'), cos(A_ent · c̄, c̄'))`` where ``c̄`` are
  weighted mean class embeddings (Eq. 9).

Two ablations from the paper are supported directly:

* ``use_mean_embeddings=False`` drops the second channel of the schema
  similarities ("w/o mean embeddings" in Table 5),
* passing ``class_entity_maps`` instead of class scorers treats classes as
  ordinary entities ("w/o class embeddings"): class similarity then reads the
  entity channel at the pseudo-entity rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad
from repro.alignment.mean_embeddings import (
    entity_weights,
    mean_class_embeddings,
    mean_relation_embeddings,
)
from repro.alignment.propagation import StructuralPropagation
from repro.alignment.similarity import SimilarityEngine, blocked_cosine_similarity
from repro.embedding.base import KGEmbeddingModel
from repro.embedding.entity_class import EntityClassScorer
from repro.kg.elements import ElementKind
from repro.kg.pair import AlignedKGPair
from repro.nn.init import identity_with_noise
from repro.nn.module import Module, Parameter
from repro.utils.math import cosine_similarity_matrix
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class AlignmentSnapshot:
    """Cached NumPy state shared by similarity matrices and mean embeddings."""

    entity_matrix_1: np.ndarray
    entity_matrix_2: np.ndarray
    relation_matrix_1: np.ndarray
    relation_matrix_2: np.ndarray
    weights_1: np.ndarray
    weights_2: np.ndarray
    mean_relations_1: np.ndarray
    mean_relations_2: np.ndarray
    mean_classes_1: np.ndarray
    mean_classes_2: np.ndarray


class JointAlignmentModel(Module):
    """Aligns two embedded KGs with mapping matrices and cosine similarities."""

    def __init__(
        self,
        pair: AlignedKGPair,
        model1: KGEmbeddingModel,
        model2: KGEmbeddingModel,
        class_scorer1: EntityClassScorer | None = None,
        class_scorer2: EntityClassScorer | None = None,
        class_entity_maps: tuple[np.ndarray, np.ndarray] | None = None,
        use_mean_embeddings: bool = True,
        use_structural_channel: bool = True,
        propagation_hops: int = 3,
        propagation_alpha: float = 0.6,
        similarity_backend: str | None = None,
        similarity_workers: int | None = None,
        similarity_ann=None,
        rng: RandomState = None,
    ) -> None:
        if model1.dim != model2.dim:
            raise ValueError("both embedding models must share the entity dimension")
        if (class_scorer1 is None) != (class_scorer2 is None):
            raise ValueError("provide class scorers for both KGs or neither")
        rng = ensure_rng(rng)
        self.pair = pair
        self.kg1 = pair.kg1
        self.kg2 = pair.kg2
        self.model1 = model1
        self.model2 = model2
        self.class_scorer1 = class_scorer1
        self.class_scorer2 = class_scorer2
        self.class_entity_maps = class_entity_maps
        self.use_mean_embeddings = use_mean_embeddings
        self.use_class_embeddings = class_scorer1 is not None
        self.use_structural_channel = use_structural_channel
        self._propagation = (
            StructuralPropagation(self.kg1, self.kg2, hops=propagation_hops, alpha=propagation_alpha)
            if use_structural_channel
            else None
        )
        self._landmarks = np.empty((0, 2), dtype=np.int64)
        self._structural_similarity: np.ndarray | None = None
        self._structural_factors: tuple[np.ndarray, np.ndarray] | None = None
        self._snapshot_version = 0
        self._landmark_version = 0
        self.similarity = SimilarityEngine(
            self, backend=similarity_backend, workers=similarity_workers, ann=similarity_ann
        )

        entity_dim = model1.dim
        relation_dim = model1.relation_matrix().shape[1] if self.kg1.num_relations else entity_dim
        self.map_entity = Parameter(identity_with_noise(entity_dim, rng=rng), name="A_ent")
        self.map_relation = Parameter(identity_with_noise(relation_dim, rng=rng), name="A_rel")
        if self.use_class_embeddings:
            class_dim = class_scorer1.class_embedding_dim
            self.map_class = Parameter(identity_with_noise(class_dim, rng=rng), name="A_cls")
        else:
            self.map_class = None
        self._snapshot: AlignmentSnapshot | None = None

    # ------------------------------------------------------------- snapshotting
    def refresh_statistics(self) -> AlignmentSnapshot:
        """Recompute the NumPy caches: entity weights and mean embeddings.

        Called once per training round and before building similarity
        matrices; these quantities are treated as constants by the optimiser.
        The four matrix reads below are served by one cached forward per
        model (``KGEmbeddingModel.outputs``, not four separate forwards).

        On the dense backend the entity similarity computed here for the
        dangling-entity weights seeds the engine's cache; on the sharded
        backend the weights are instead *streamed* (per-row / per-column
        maxima over cosine tiles), so no ``N × M`` matrix is materialised.
        """
        with no_grad():
            e1 = self.model1.entity_matrix()
            e2 = self.model2.entity_matrix()
            r1 = self.model1.relation_matrix()
            r2 = self.model2.relation_matrix()
            if self.similarity.backend_name == "dense":
                mapped = e1 @ self.map_entity.data
                embedding_channel = blocked_cosine_similarity(
                    mapped, e2, self.similarity.block_size
                )
                structural = self.structural_similarity_matrix()
                if structural is not None:
                    sim = np.maximum(embedding_channel, structural)
                else:
                    sim = embedding_channel
                w1, w2 = entity_weights(sim)
            else:
                embedding_channel = sim = None
                w1, w2 = self._streamed_entity_weights(e1, e2)
            mean_rel1 = mean_relation_embeddings(self.kg1, self.model1, e1, w1)
            mean_rel2 = mean_relation_embeddings(self.kg2, self.model2, e2, w2)
            mean_cls1 = mean_class_embeddings(self.kg1, e1, w1)
            mean_cls2 = mean_class_embeddings(self.kg2, e2, w2)
        self._snapshot = AlignmentSnapshot(
            entity_matrix_1=e1,
            entity_matrix_2=e2,
            relation_matrix_1=r1,
            relation_matrix_2=r2,
            weights_1=w1,
            weights_2=w2,
            mean_relations_1=mean_rel1,
            mean_relations_2=mean_rel2,
            mean_classes_1=mean_cls1,
            mean_classes_2=mean_cls2,
        )
        self._snapshot_version += 1
        if sim is not None:
            # The entity similarity just computed for the weights is exactly
            # what entity_similarity_matrix() would rebuild — seed the engine.
            self.similarity.seed_entity_cache(embedding_channel, sim)
        return self._snapshot

    def entity_channel_factors(
        self, e1: np.ndarray, e2: np.ndarray
    ) -> tuple[list, bool]:
        """The entity similarity as cosine channel factors: ``(pairs, clip)``.

        Single definition of how the combined entity similarity decomposes
        into factored cosines — the mapped embedding channel plus (when the
        structural channel is enabled) the propagation features, with
        ``clip=True`` standing in for the all-zero structural matrix before
        any landmarks exist.  Both the engine's channel cache
        (:meth:`SimilarityEngine.channels`) and the streamed entity weights
        below build from here, so the similarity every sharded query serves
        and the similarity the dangling-entity weights are computed from can
        never drift apart.
        """
        from repro.runtime.streaming import ChannelPair
        from repro.utils.math import safe_l2_normalize

        pairs = [
            ChannelPair(safe_l2_normalize(e1 @ self.map_entity.data), safe_l2_normalize(e2))
        ]
        clip = False
        factors = self.structural_factors()
        if factors is not None:
            p1, p2 = factors
            if p1.shape[1] == 0:
                clip = True
            else:
                pairs.append(ChannelPair.from_raw(p1, p2))
        return pairs, clip

    def _streamed_entity_weights(
        self, e1: np.ndarray, e2: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dangling-entity weights from streamed tile maxima (Eq. 6).

        Builds the entity channel factors locally (the engine's channel cache
        keys on the snapshot version, which is mid-update here) and streams
        per-row / per-column maxima; ``max`` is order-independent, so the
        result matches the dense path exactly up to tile rounding.
        """
        from repro.runtime.streaming import CosineChannels, stream_row_col_max

        if e1.shape[0] == 0 or e2.shape[0] == 0:
            return np.zeros(e1.shape[0]), np.zeros(e2.shape[0])
        pairs, clip = self.entity_channel_factors(e1, e2)
        channels = CosineChannels(pairs, clip_at_zero=clip)
        engine = self.similarity
        w1, w2 = stream_row_col_max(channels, engine.block_size, engine.workers)
        return np.clip(w1, 0.0, 1.0), np.clip(w2, 0.0, 1.0)

    @property
    def snapshot(self) -> AlignmentSnapshot:
        if self._snapshot is None:
            return self.refresh_statistics()
        return self._snapshot

    # --------------------------------------------------- differentiable scores
    def entity_pair_similarity(self, pairs: np.ndarray) -> Tensor:
        """``S(e, e')`` for an ``(n, 2)`` array of (kg1 idx, kg2 idx) pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        e1 = self.model1.entity_output(pairs[:, 0])
        e2 = self.model2.entity_output(pairs[:, 1])
        return F.cosine_similarity_rows(e1 @ self.map_entity, e2)

    def relation_pair_similarity(self, pairs: np.ndarray) -> Tensor:
        """``S(r, r')`` for an ``(n, 2)`` array of relation index pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        r1 = self.model1.relation_output(pairs[:, 0])
        r2 = self.model2.relation_output(pairs[:, 1])
        direct = F.cosine_similarity_rows(r1 @ self.map_relation, r2)
        if not self.use_mean_embeddings:
            return direct
        snap = self.snapshot
        m1 = Tensor(snap.mean_relations_1[pairs[:, 0]])
        m2 = Tensor(snap.mean_relations_2[pairs[:, 1]])
        mean_sim = F.cosine_similarity_rows(m1 @ self.map_entity, m2)
        return F.maximum(direct, mean_sim)

    def class_pair_similarity(self, pairs: np.ndarray) -> Tensor:
        """``S(c, c')`` for an ``(n, 2)`` array of class index pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        channels: list[Tensor] = []
        if self.use_class_embeddings:
            c1 = self.class_scorer1.class_embedding(pairs[:, 0])
            c2 = self.class_scorer2.class_embedding(pairs[:, 1])
            channels.append(F.cosine_similarity_rows(c1 @ self.map_class, c2))
        elif self.class_entity_maps is not None:
            map1, map2 = self.class_entity_maps
            e1 = self.model1.entity_output(map1[pairs[:, 0]])
            e2 = self.model2.entity_output(map2[pairs[:, 1]])
            channels.append(F.cosine_similarity_rows(e1 @ self.map_entity, e2))
        if self.use_mean_embeddings:
            snap = self.snapshot
            m1 = Tensor(snap.mean_classes_1[pairs[:, 0]])
            m2 = Tensor(snap.mean_classes_2[pairs[:, 1]])
            channels.append(F.cosine_similarity_rows(m1 @ self.map_entity, m2))
        if not channels:
            raise RuntimeError(
                "class similarity needs class scorers, class_entity_maps or mean embeddings"
            )
        result = channels[0]
        for channel in channels[1:]:
            result = F.maximum(result, channel)
        return result

    def pair_similarity(self, kind: ElementKind, pairs: np.ndarray) -> Tensor:
        """Dispatch on the element kind (used by the active-learning loop)."""
        if kind is ElementKind.ENTITY:
            return self.entity_pair_similarity(pairs)
        if kind is ElementKind.RELATION:
            return self.relation_pair_similarity(pairs)
        return self.class_pair_similarity(pairs)

    # ------------------------------------------------------ structural channel
    def set_landmarks(self, pairs: np.ndarray) -> None:
        """Update the landmark set feeding the structural propagation channel.

        Called by the trainer with the union of labelled entity matches and
        mined potential matches whenever statistics are refreshed; the channel
        is recomputed lazily by :meth:`entity_similarity_matrix`.
        """
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if np.array_equal(pairs, self._landmarks):
            return  # unchanged landmarks must not invalidate cached matrices
        self._landmarks = pairs
        self._structural_similarity = None
        self._structural_factors = None
        self._landmark_version += 1

    def structural_factors(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Propagated landmark features ``(p1, p2)`` (None if channel disabled).

        The structural channel is the cosine of these factors, which is what
        lets the sharded backend stream it tile by tile instead of holding
        the full ``|E1| × |E2|`` propagation matrix.
        """
        if self._propagation is None:
            return None
        if self._structural_factors is None:
            self._structural_factors = self._propagation.propagate(self._landmarks)
        return self._structural_factors

    def structural_similarity_matrix(self) -> np.ndarray | None:
        """The propagation channel for the current landmarks (None if disabled)."""
        if self._propagation is None:
            return None
        if self._structural_similarity is None:
            p1, p2 = self.structural_factors()
            if p1.shape[1] == 0:
                # no landmarks: the channel is all zeros and never dominates
                # the embedding channel before any labels exist
                self._structural_similarity = np.zeros(
                    (self.kg1.num_entities, self.kg2.num_entities)
                )
            else:
                self._structural_similarity = cosine_similarity_matrix(p1, p2)
        return self._structural_similarity

    # ------------------------------------------------------ similarity matrices
    # All full-matrix computation lives in the SimilarityEngine, which caches
    # results behind the (parameter_version, state_version) token; these
    # wrappers keep the historical API.  Returned matrices are shared cache
    # entries — treat them as read-only.
    @property
    def snapshot_version(self) -> int:
        """Bumped by ``refresh_statistics``; part of every engine cache token."""
        return self._snapshot_version

    @property
    def landmark_version(self) -> int:
        """Bumped by effective ``set_landmarks`` calls; only the entity matrix
        depends on it (through the structural propagation channel)."""
        return self._landmark_version

    @property
    def state_version(self) -> tuple[int, int]:
        """Combined (snapshot, landmark) version of the non-parameter state."""
        return (self._snapshot_version, self._landmark_version)

    def embedding_entity_similarity_matrix(self) -> np.ndarray:
        """The embedding channel only: ``cos(A_ent · e, e')`` for all pairs."""
        return self.similarity.embedding_entity_matrix()

    def entity_similarity_matrix(self) -> np.ndarray:
        """Full ``|E1| × |E2|`` similarity matrix (NumPy, no gradients).

        The entity similarity is the element-wise maximum of the embedding
        channel and the structural propagation channel, mirroring how the
        schema similarities combine their direct and mean-embedding channels.
        """
        return self.similarity.matrix(ElementKind.ENTITY)

    def relation_similarity_matrix(self) -> np.ndarray:
        """Full ``|R1| × |R2|`` similarity matrix using both channels."""
        return self.similarity.matrix(ElementKind.RELATION)

    def class_similarity_matrix(self) -> np.ndarray:
        """Full ``|C1| × |C2|`` similarity matrix using the configured channels."""
        return self.similarity.matrix(ElementKind.CLASS)

    def similarity_matrix(self, kind: ElementKind) -> np.ndarray:
        return self.similarity.matrix(kind)

    # -------------------------------------------------------------- utilities
    def entity_weight_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """The dangling-entity weights ``w_e`` of both KGs (Eq. 6)."""
        snap = self.snapshot
        return snap.weights_1, snap.weights_2

    def parameter_summary(self) -> dict[str, int]:
        """Number of parameters per component (the paper's complexity analysis)."""
        summary = {
            "embedding_model_1": self.model1.num_parameters(),
            "embedding_model_2": self.model2.num_parameters(),
            "mapping_matrices": int(
                self.map_entity.size
                + self.map_relation.size
                + (self.map_class.size if self.map_class is not None else 0)
            ),
        }
        if self.use_class_embeddings:
            summary["class_scorers"] = (
                self.class_scorer1.num_parameters() + self.class_scorer2.num_parameters()
            )
        return summary
