"""Alignment probability calibration (Eqs. 11–12).

Cosine similarities are turned into match probabilities by temperature-scaled
softmax over each element's candidates, evaluated in both alignment
directions; the final probability of a pair is the minimum of the two
directions, which is deliberately conservative — the active-learning selection
uses these probabilities as weights and wants to avoid betting on non-matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.elements import ElementKind
from repro.utils.math import softmax


def _streamed_directional_probabilities(
    engine,
    kind: ElementKind,
    axis_indices: np.ndarray,
    other_indices: np.ndarray,
    temperature: float,
    transpose: bool,
) -> np.ndarray:
    """One softmax direction of Eq. 11 from streamed tiles.

    ``axis_indices[i]`` names the row (or column, when ``transpose``) being
    normalised and ``other_indices[i]`` the position whose probability is
    requested.  The unique normalised rows are processed in chunks of the
    engine's block size, with two tile passes per chunk — a max pass, then
    an exp-sum pass that also gathers each pair's logit — so peak memory is
    ``O(block²)`` no matter how many rows the pool touches.  Reductions
    accumulate block-partial sums, so results can differ from the dense
    softmax in the last ulp — acceptable on the sharded backend, whose tiles
    already round differently.
    """
    unique_axis, axis_pos = np.unique(axis_indices, return_inverse=True)
    iter_blocks = engine.iter_cols_blocks if transpose else engine.iter_rows_blocks
    chunk = max(int(getattr(engine, "block_size", unique_axis.shape[0])), 1)
    probabilities = np.empty(axis_indices.shape[0])
    for start in range(0, unique_axis.shape[0], chunk):
        chunk_slice = slice(start, min(start + chunk, unique_axis.shape[0]))
        chunk_rows = unique_axis[chunk_slice]
        in_chunk = (axis_pos >= chunk_slice.start) & (axis_pos < chunk_slice.stop)
        chunk_pos = axis_pos[in_chunk] - chunk_slice.start
        chunk_other = other_indices[in_chunk]

        def tiles():
            for block_slice, tile in iter_blocks(kind, chunk_rows):
                yield block_slice, (tile.T if transpose else tile)

        m = chunk_rows.shape[0]
        maxima = np.full(m, -np.inf)
        for _, tile in tiles():
            np.maximum(maxima, (tile / temperature).max(axis=1), out=maxima)
        sums = np.zeros(m)
        pair_logits = np.empty(chunk_other.shape[0])
        for block_slice, tile in tiles():
            z = tile / temperature - maxima[:, None]
            sums += np.exp(z).sum(axis=1)
            in_block = (chunk_other >= block_slice.start) & (chunk_other < block_slice.stop)
            if np.any(in_block):
                pair_logits[in_block] = z[
                    chunk_pos[in_block], chunk_other[in_block] - block_slice.start
                ]
        probabilities[in_chunk] = np.exp(pair_logits) / sums[chunk_pos]
    return probabilities


@dataclass(frozen=True)
class CalibrationConfig:
    """Temperature parameters per element kind (paper defaults, Sect. 7.1)."""

    z_entity: float = 0.05
    z_relation: float = 0.1
    z_class: float = 0.1

    def __post_init__(self) -> None:
        if min(self.z_entity, self.z_relation, self.z_class) <= 0:
            raise ValueError("temperatures must be positive")

    def temperature(self, kind: ElementKind) -> float:
        if kind is ElementKind.ENTITY:
            return self.z_entity
        if kind is ElementKind.RELATION:
            return self.z_relation
        return self.z_class


class AlignmentCalibrator:
    """Converts similarity matrices into calibrated match probabilities."""

    def __init__(self, config: CalibrationConfig | None = None) -> None:
        self.config = config or CalibrationConfig()

    def directional_probabilities(
        self, similarity_matrix: np.ndarray, kind: ElementKind
    ) -> tuple[np.ndarray, np.ndarray]:
        """``Pr[x' | x]`` (row-wise softmax) and ``Pr[x | x']`` (column-wise)."""
        if similarity_matrix.size == 0:
            return similarity_matrix.copy(), similarity_matrix.copy()
        temperature = self.config.temperature(kind)
        row = softmax(similarity_matrix, axis=1, temperature=temperature)
        col = softmax(similarity_matrix, axis=0, temperature=temperature)
        return row, col

    def probability_matrix(self, similarity_matrix: np.ndarray, kind: ElementKind) -> np.ndarray:
        """``Pr[y*(x, x') = 1]`` for every pair (Eq. 12)."""
        if similarity_matrix.size == 0:
            return similarity_matrix.copy()
        row, col = self.directional_probabilities(similarity_matrix, kind)
        return np.minimum(row, col)

    def pair_probability(
        self, similarity_matrix: np.ndarray, kind: ElementKind, i: int, j: int
    ) -> float:
        """Probability of a single pair; prefer :meth:`probability_matrix` in loops."""
        return float(self.probability_matrix(similarity_matrix, kind)[i, j])

    def pair_probabilities(
        self,
        similarity_matrix: np.ndarray,
        kind: ElementKind,
        lefts: np.ndarray,
        rights: np.ndarray,
    ) -> np.ndarray:
        """Calibrated probabilities for index pairs, touching only their rows/columns.

        Serving queries ask about a handful of pairs at a time; softmaxing the
        full matrix in both directions for each request would be quadratic
        work per query.  Each direction only needs the *rows* (respectively
        *columns*) the requested pairs live in, so this gathers those slices
        and normalises them alone — identical values to
        :meth:`probability_matrix`, at per-row cost.
        """
        lefts = np.asarray(lefts, dtype=np.int64)
        rights = np.asarray(rights, dtype=np.int64)
        if similarity_matrix.size == 0 or lefts.size == 0:
            return np.zeros(lefts.shape, dtype=float)
        return self.pair_probabilities_from_slabs(
            similarity_matrix[lefts], similarity_matrix[:, rights], kind, lefts, rights
        )

    def pair_probabilities_from_slabs(
        self,
        row_slab: np.ndarray,
        col_slab: np.ndarray,
        kind: ElementKind,
        lefts: np.ndarray,
        rights: np.ndarray,
    ) -> np.ndarray:
        """Pair probabilities from pre-gathered row/column slabs.

        ``row_slab`` is ``similarity[lefts]`` (full width) and ``col_slab``
        ``similarity[:, rights]`` (full height) — the serving layer gathers
        them through a :class:`~repro.runtime.views.SimilarityView`, the
        training stack through the engine.  Softmax is per-row / per-column,
        so slab-wise normalisation yields exactly the full-matrix values.
        """
        temperature = self.config.temperature(kind)
        row = softmax(row_slab, axis=1, temperature=temperature)
        col = softmax(col_slab, axis=0, temperature=temperature)
        take = np.arange(np.asarray(lefts).size)
        return np.minimum(row[take, rights], col[lefts, take])

    def pair_probabilities_from_engine(
        self,
        engine,
        kind: ElementKind,
        lefts: np.ndarray,
        rights: np.ndarray,
    ) -> np.ndarray:
        """Pair probabilities read through a similarity engine (any backend).

        On the dense backend this is the exact historical computation (slices
        of the cached matrix).  On the sharded backend each direction is
        normalised from *streamed tiles* in two passes (max, then exp-sum +
        target gather) over only the rows/columns the requested pairs touch,
        processed in row chunks of the engine's block size — peak memory
        ``O(block²)``, never ``N × M``.
        """
        lefts = np.asarray(lefts, dtype=np.int64)
        rights = np.asarray(rights, dtype=np.int64)
        num_rows, num_cols = engine.shape(kind)
        if num_rows == 0 or num_cols == 0 or lefts.size == 0:
            return np.zeros(lefts.shape, dtype=float)
        temperature = self.config.temperature(kind)
        if engine.backend_name == "dense":
            # Row direction: dedupe before gathering — pool lookups repeat
            # rows heavily (cross-product schema pools), softmax is per-row,
            # and a gathered row reduces bit-identically to the same row of
            # the full matrix.  Column direction: softmax the full matrix —
            # a column-sliced reduction can round differently in the last
            # ulp, and this path must stay bit-exact with the historical
            # probability_matrix lookup (the matrix is materialised on this
            # backend anyway, so this is the pre-backend cost, not more).
            matrix = engine.matrix(kind)
            unique_l, inverse_l = np.unique(lefts, return_inverse=True)
            row = softmax(matrix[unique_l], axis=1, temperature=temperature)
            col = softmax(matrix, axis=0, temperature=temperature)
            return np.minimum(row[inverse_l, rights], col[lefts, rights])
        row_dir = _streamed_directional_probabilities(
            engine, kind, lefts, rights, temperature, transpose=False
        )
        col_dir = _streamed_directional_probabilities(
            engine, kind, rights, lefts, temperature, transpose=True
        )
        return np.minimum(row_dir, col_dir)
