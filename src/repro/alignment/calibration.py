"""Alignment probability calibration (Eqs. 11–12).

Cosine similarities are turned into match probabilities by temperature-scaled
softmax over each element's candidates, evaluated in both alignment
directions; the final probability of a pair is the minimum of the two
directions, which is deliberately conservative — the active-learning selection
uses these probabilities as weights and wants to avoid betting on non-matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.elements import ElementKind
from repro.utils.math import softmax


@dataclass(frozen=True)
class CalibrationConfig:
    """Temperature parameters per element kind (paper defaults, Sect. 7.1)."""

    z_entity: float = 0.05
    z_relation: float = 0.1
    z_class: float = 0.1

    def __post_init__(self) -> None:
        if min(self.z_entity, self.z_relation, self.z_class) <= 0:
            raise ValueError("temperatures must be positive")

    def temperature(self, kind: ElementKind) -> float:
        if kind is ElementKind.ENTITY:
            return self.z_entity
        if kind is ElementKind.RELATION:
            return self.z_relation
        return self.z_class


class AlignmentCalibrator:
    """Converts similarity matrices into calibrated match probabilities."""

    def __init__(self, config: CalibrationConfig | None = None) -> None:
        self.config = config or CalibrationConfig()

    def directional_probabilities(
        self, similarity_matrix: np.ndarray, kind: ElementKind
    ) -> tuple[np.ndarray, np.ndarray]:
        """``Pr[x' | x]`` (row-wise softmax) and ``Pr[x | x']`` (column-wise)."""
        if similarity_matrix.size == 0:
            return similarity_matrix.copy(), similarity_matrix.copy()
        temperature = self.config.temperature(kind)
        row = softmax(similarity_matrix, axis=1, temperature=temperature)
        col = softmax(similarity_matrix, axis=0, temperature=temperature)
        return row, col

    def probability_matrix(self, similarity_matrix: np.ndarray, kind: ElementKind) -> np.ndarray:
        """``Pr[y*(x, x') = 1]`` for every pair (Eq. 12)."""
        if similarity_matrix.size == 0:
            return similarity_matrix.copy()
        row, col = self.directional_probabilities(similarity_matrix, kind)
        return np.minimum(row, col)

    def pair_probability(
        self, similarity_matrix: np.ndarray, kind: ElementKind, i: int, j: int
    ) -> float:
        """Probability of a single pair; prefer :meth:`probability_matrix` in loops."""
        return float(self.probability_matrix(similarity_matrix, kind)[i, j])

    def pair_probabilities(
        self,
        similarity_matrix: np.ndarray,
        kind: ElementKind,
        lefts: np.ndarray,
        rights: np.ndarray,
    ) -> np.ndarray:
        """Calibrated probabilities for index pairs, touching only their rows/columns.

        Serving queries ask about a handful of pairs at a time; softmaxing the
        full matrix in both directions for each request would be quadratic
        work per query.  Each direction only needs the *rows* (respectively
        *columns*) the requested pairs live in, so this gathers those slices
        and normalises them alone — identical values to
        :meth:`probability_matrix`, at per-row cost.
        """
        lefts = np.asarray(lefts, dtype=np.int64)
        rights = np.asarray(rights, dtype=np.int64)
        if similarity_matrix.size == 0 or lefts.size == 0:
            return np.zeros(lefts.shape, dtype=float)
        temperature = self.config.temperature(kind)
        row = softmax(similarity_matrix[lefts], axis=1, temperature=temperature)
        col = softmax(similarity_matrix[:, rights], axis=0, temperature=temperature)
        take = np.arange(lefts.size)
        return np.minimum(row[take, rights], col[lefts, take])
