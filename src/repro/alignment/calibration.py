"""Alignment probability calibration (Eqs. 11–12).

Cosine similarities are turned into match probabilities by temperature-scaled
softmax over each element's candidates, evaluated in both alignment
directions; the final probability of a pair is the minimum of the two
directions, which is deliberately conservative — the active-learning selection
uses these probabilities as weights and wants to avoid betting on non-matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.elements import ElementKind
from repro.utils.math import softmax


@dataclass(frozen=True)
class CalibrationConfig:
    """Temperature parameters per element kind (paper defaults, Sect. 7.1)."""

    z_entity: float = 0.05
    z_relation: float = 0.1
    z_class: float = 0.1

    def __post_init__(self) -> None:
        if min(self.z_entity, self.z_relation, self.z_class) <= 0:
            raise ValueError("temperatures must be positive")

    def temperature(self, kind: ElementKind) -> float:
        if kind is ElementKind.ENTITY:
            return self.z_entity
        if kind is ElementKind.RELATION:
            return self.z_relation
        return self.z_class


class AlignmentCalibrator:
    """Converts similarity matrices into calibrated match probabilities."""

    def __init__(self, config: CalibrationConfig | None = None) -> None:
        self.config = config or CalibrationConfig()

    def directional_probabilities(
        self, similarity_matrix: np.ndarray, kind: ElementKind
    ) -> tuple[np.ndarray, np.ndarray]:
        """``Pr[x' | x]`` (row-wise softmax) and ``Pr[x | x']`` (column-wise)."""
        if similarity_matrix.size == 0:
            return similarity_matrix.copy(), similarity_matrix.copy()
        temperature = self.config.temperature(kind)
        row = softmax(similarity_matrix, axis=1, temperature=temperature)
        col = softmax(similarity_matrix, axis=0, temperature=temperature)
        return row, col

    def probability_matrix(self, similarity_matrix: np.ndarray, kind: ElementKind) -> np.ndarray:
        """``Pr[y*(x, x') = 1]`` for every pair (Eq. 12)."""
        if similarity_matrix.size == 0:
            return similarity_matrix.copy()
        row, col = self.directional_probabilities(similarity_matrix, kind)
        return np.minimum(row, col)

    def pair_probability(
        self, similarity_matrix: np.ndarray, kind: ElementKind, i: int, j: int
    ) -> float:
        """Probability of a single pair; prefer :meth:`probability_matrix` in loops."""
        return float(self.probability_matrix(similarity_matrix, kind)[i, j])
