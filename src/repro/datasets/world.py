"""Synthetic "world" KG generation.

The generator produces a single coherent knowledge graph with the structural
properties the DAAKG method relies on:

* a class vocabulary with skewed class sizes (few large classes such as
  *Person*/*Place*, many small ones), and entities that may belong to several
  classes (the many-to-one problem of Sect. 4.1),
* relations with class-typed domains and ranges, so relation usage correlates
  with entity types (this is what schema signatures exploit),
* a mix of highly *functional* relations (``birthPlace``-like, at most one
  object per subject) and multi-valued relations, because functional relations
  carry most of the structure-based inference power (Example 1.1),
* skewed entity popularity, so some entities are hubs (``United States``-like)
  and most are in the long tail.

Two heterogeneous views of this world (see :mod:`repro.datasets.views`) play
the role of the two KGs to align.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kg.elements import Triple, TypeTriple
from repro.kg.graph import KnowledgeGraph
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of the synthetic world KG."""

    num_entities: int = 1000
    num_classes: int = 20
    num_relations: int = 30
    mean_out_degree: float = 4.0
    max_classes_per_entity: int = 3
    functional_relation_fraction: float = 0.4
    popularity_exponent: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_entities <= 0 or self.num_classes <= 0 or self.num_relations <= 0:
            raise ValueError("world sizes must be positive")
        if not 0.0 <= self.functional_relation_fraction <= 1.0:
            raise ValueError("functional_relation_fraction must be in [0, 1]")
        if self.mean_out_degree <= 0:
            raise ValueError("mean_out_degree must be positive")


@dataclass
class WorldKG:
    """The generated world: a KG plus the schema metadata used to generate it."""

    kg: KnowledgeGraph
    config: WorldConfig
    relation_domains: dict[str, str] = field(default_factory=dict)
    relation_ranges: dict[str, str] = field(default_factory=dict)
    functional_relations: set[str] = field(default_factory=set)
    entity_classes: dict[str, list[str]] = field(default_factory=dict)


def _zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_world(config: WorldConfig | None = None, seed: RandomState = None) -> WorldKG:
    """Generate a :class:`WorldKG` according to ``config``.

    ``seed`` overrides ``config.seed`` when provided, which lets benchmarks
    reuse one config with several random worlds.
    """
    config = config or WorldConfig()
    rng = ensure_rng(config.seed if seed is None else seed)

    entities = [f"ent_{i:05d}" for i in range(config.num_entities)]
    classes = [f"cls_{i:03d}" for i in range(config.num_classes)]
    relations = [f"rel_{i:03d}" for i in range(config.num_relations)]

    # ------------------------------------------------------------- class sizes
    class_probs = _zipf_probabilities(config.num_classes, 1.2)
    entity_classes: dict[str, list[str]] = {}
    class_members: dict[str, list[str]] = {c: [] for c in classes}
    for e in entities:
        n_classes = int(rng.integers(1, config.max_classes_per_entity + 1))
        chosen = rng.choice(
            config.num_classes, size=min(n_classes, config.num_classes), replace=False, p=class_probs
        )
        names = [classes[int(c)] for c in chosen]
        entity_classes[e] = names
        for c in names:
            class_members[c].append(e)
    # Guarantee every class has at least one member so that classes are alignable.
    for ci, c in enumerate(classes):
        if not class_members[c]:
            e = entities[int(rng.integers(0, config.num_entities))]
            class_members[c].append(e)
            entity_classes[e].append(c)

    # --------------------------------------------------------- relation schema
    relation_domains: dict[str, str] = {}
    relation_ranges: dict[str, str] = {}
    functional: set[str] = set()
    for i, r in enumerate(relations):
        relation_domains[r] = classes[int(rng.choice(config.num_classes, p=class_probs))]
        relation_ranges[r] = classes[int(rng.choice(config.num_classes, p=class_probs))]
        if rng.random() < config.functional_relation_fraction:
            functional.add(r)

    # ------------------------------------------------------------------ triples
    entity_popularity = _zipf_probabilities(config.num_entities, config.popularity_exponent)
    # Shuffle popularity so hub entities are spread across classes.
    entity_popularity = entity_popularity[rng.permutation(config.num_entities)]

    relations_by_domain: dict[str, list[str]] = {c: [] for c in classes}
    for r in relations:
        relations_by_domain[relation_domains[r]].append(r)

    triples: list[Triple] = []
    seen: set[tuple[str, str, str]] = set()
    functional_used: set[tuple[str, str]] = set()
    for e in entities:
        out_degree = int(rng.poisson(config.mean_out_degree))
        candidate_relations: list[str] = []
        for c in entity_classes[e]:
            candidate_relations.extend(relations_by_domain[c])
        if not candidate_relations:
            candidate_relations = relations
        for _ in range(out_degree):
            r = candidate_relations[int(rng.integers(0, len(candidate_relations)))]
            if r in functional and (e, r) in functional_used:
                continue
            range_class = relation_ranges[r]
            members = class_members[range_class]
            if members:
                # weight members by global popularity so hubs attract more edges
                weights = np.array(
                    [entity_popularity[int(m.split("_")[1])] for m in members], dtype=float
                )
                weights = weights / weights.sum()
                tail = members[int(rng.choice(len(members), p=weights))]
            else:
                tail = entities[int(rng.choice(config.num_entities, p=entity_popularity))]
            if tail == e:
                continue
            key = (e, r, tail)
            if key in seen:
                continue
            seen.add(key)
            functional_used.add((e, r))
            triples.append(Triple(e, r, tail))

    type_triples = [
        TypeTriple(e, c) for e in entities for c in entity_classes[e]
    ]

    kg = KnowledgeGraph(
        name="world",
        entities=entities,
        relations=relations,
        classes=classes,
        triples=triples,
        type_triples=type_triples,
    )
    return WorldKG(
        kg=kg,
        config=config,
        relation_domains=relation_domains,
        relation_ranges=relation_ranges,
        functional_relations=functional,
        entity_classes=entity_classes,
    )


def make_large_world_pair(
    num_entities: int,
    num_relations: int = 20,
    mean_out_degree: float = 4.0,
    popularity_exponent: float = 1.0,
    seed: int = 0,
    shared_topology: bool = False,
    num_communities: int = 1,
    inter_community_fraction: float = 0.05,
):
    """A fully-aligned two-view world pair sized for scale benchmarks.

    :func:`generate_world` models realistic schema structure but builds its
    triples one Python object at a time, which caps it at a few thousand
    entities.  This generator trades the class machinery away for fully
    vectorised triple sampling (skewed entity popularity, uniform relations),
    so pairs with tens of thousands of entities materialise in seconds — the
    scenario class the sharded similarity backend exists for.  Both views
    share the topology *sample* (each draws its own edges over the same
    entity popularity law), every entity is gold-aligned to its counterpart,
    and the two vocabularies share no lexical overlap.

    With ``shared_topology=True`` the two views instead share the *same*
    drawn edge set (isomorphic graphs under the gold alignment), which puts
    embedding-based alignment in a learnable regime — the setting campaign
    benchmarks need when they compare accuracy, not just memory or speed.

    ``num_communities > 1`` draws most edges (all but
    ``inter_community_fraction``) inside contiguous entity blocks.  Real KGs
    have that community structure (topical clusters), and it is exactly what
    ρ-bounded campaign partitioning exploits; the default (one community)
    keeps the historical expander-like topology.
    """
    from repro.kg.pair import AlignedKGPair, GoldAlignment
    from repro.kg.elements import ElementKind

    if num_entities <= 1:
        raise ValueError("num_entities must be > 1")
    if num_communities < 1 or num_communities > num_entities:
        raise ValueError("num_communities must be in [1, num_entities]")
    if not 0.0 <= inter_community_fraction <= 1.0:
        raise ValueError("inter_community_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    popularity = 1.0 / np.arange(1, num_entities + 1) ** popularity_exponent
    popularity = popularity / popularity.sum()
    num_triples = int(num_entities * mean_out_degree)
    community = (np.arange(num_entities) * num_communities) // num_entities

    def draw_tails(heads: np.ndarray) -> np.ndarray:
        """Tails by popularity — mostly within the head's community block."""
        tails = rng.choice(num_entities, size=heads.shape[0], p=popularity)
        if num_communities == 1:
            return tails
        local = rng.random(heads.shape[0]) >= inter_community_fraction
        for c in range(num_communities):
            rows = np.nonzero(local & (community[heads] == c))[0]
            if rows.size == 0:
                continue
            members = np.nonzero(community == c)[0]
            weights = popularity[members]
            tails[rows] = members[
                rng.choice(members.shape[0], size=rows.shape[0], p=weights / weights.sum())
            ]
        return tails

    shared_sample: dict[str, np.ndarray] = {}

    def one_view(prefix: str) -> KnowledgeGraph:
        entity_names = [f"{prefix}:e{i}" for i in range(num_entities)]
        relation_names = [f"{prefix}:r{j}" for j in range(num_relations)]
        if shared_topology and shared_sample:
            heads, tails, rels = (
                shared_sample["heads"], shared_sample["tails"], shared_sample["rels"]
            )
        else:
            heads = rng.choice(num_entities, size=num_triples, p=popularity)
            tails = draw_tails(heads)
            rels = rng.integers(0, num_relations, size=num_triples)
            shared_sample.update(heads=heads, tails=tails, rels=rels)
        keep = heads != tails
        triples = [
            Triple(entity_names[h], relation_names[r], entity_names[t])
            for h, r, t in zip(heads[keep], rels[keep], tails[keep])
        ]
        return KnowledgeGraph(
            name=prefix,
            entities=entity_names,
            relations=relation_names,
            classes=[],
            triples=triples,
            type_triples=[],
        )

    kg1 = one_view("lw1")
    kg2 = one_view("lw2")
    matches = [(f"lw1:e{i}", f"lw2:e{i}") for i in range(num_entities)]
    return AlignedKGPair(
        name=f"large-world-{num_entities}",
        kg1=kg1,
        kg2=kg2,
        entity_alignment=GoldAlignment(ElementKind.ENTITY, matches),
        relation_alignment=GoldAlignment(ElementKind.RELATION, []),
        class_alignment=GoldAlignment(ElementKind.CLASS, []),
    )
