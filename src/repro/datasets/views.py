"""Deriving two heterogeneous KG views from a world KG.

Each view renames the world's schema into its own namespace (so relation and
class names carry no trivial string overlap, like DBpedia vs. Wikidata), keeps
only a subset of relations/classes (producing dangling schema elements), drops
a fraction of triples and type assertions (structural heterogeneity), and can
drop a fraction of entities entirely (the paper removes 30% of KG2's entities
to create dangling entities).

Gold matches are the world elements that survive in both views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.world import WorldKG
from repro.kg.elements import ElementKind, Triple, TypeTriple
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignedKGPair, GoldAlignment
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class ViewConfig:
    """Parameters controlling how one view is carved out of the world KG."""

    prefix: str
    entity_keep_fraction: float = 1.0
    relation_keep_fraction: float = 1.0
    class_keep_fraction: float = 1.0
    triple_keep_fraction: float = 0.85
    type_keep_fraction: float = 0.9
    rename_entities: bool = True
    obfuscate_names: bool = False

    def __post_init__(self) -> None:
        for field_name in (
            "entity_keep_fraction",
            "relation_keep_fraction",
            "class_keep_fraction",
            "triple_keep_fraction",
            "type_keep_fraction",
        ):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{field_name} must be in (0, 1], got {value}")


def _keep_subset(items: list[str], fraction: float, rng: np.random.Generator) -> list[str]:
    n_keep = max(1, int(round(fraction * len(items))))
    if n_keep >= len(items):
        return list(items)
    chosen = rng.choice(len(items), size=n_keep, replace=False)
    chosen_set = {int(i) for i in chosen}
    return [item for i, item in enumerate(items) if i in chosen_set]


def derive_view(
    world: WorldKG, config: ViewConfig, seed: RandomState = None
) -> tuple[KnowledgeGraph, dict[str, str], dict[str, str], dict[str, str]]:
    """Derive one KG view.

    Returns the view KG and three maps from world names to view names for
    entities, relations and classes (only for elements kept in this view).
    """
    rng = ensure_rng(seed)
    kg = world.kg

    kept_entities = _keep_subset(kg.entities, config.entity_keep_fraction, rng)
    kept_relations = _keep_subset(kg.relations, config.relation_keep_fraction, rng)
    kept_classes = _keep_subset(kg.classes, config.class_keep_fraction, rng)
    kept_entity_set = set(kept_entities)
    kept_relation_set = set(kept_relations)
    kept_class_set = set(kept_classes)

    def local_name(world_name: str) -> str:
        """The view-local identifier of a world element.

        ``obfuscate_names`` simulates cross-lingual / cross-vocabulary datasets
        (D-W, EN-DE, EN-FR): names carry no lexical overlap with the other
        view, so purely lexical matchers get no signal, as in the paper.
        """
        if config.obfuscate_names:
            import hashlib

            digest = hashlib.md5(f"{config.prefix}:{world_name}".encode()).hexdigest()[:10]
            return digest
        return world_name

    def ent_name(world_name: str) -> str:
        if not config.rename_entities:
            return world_name
        return f"{config.prefix}:{local_name(world_name)}"

    entity_map = {e: ent_name(e) for e in kept_entities}
    relation_map = {r: f"{config.prefix}:{local_name(r)}" for r in kept_relations}
    class_map = {c: f"{config.prefix}:{local_name(c)}" for c in kept_classes}

    triples: list[Triple] = []
    for t in kg.triples:
        if t.head not in kept_entity_set or t.tail not in kept_entity_set:
            continue
        if t.relation not in kept_relation_set:
            continue
        if rng.random() > config.triple_keep_fraction:
            continue
        triples.append(Triple(entity_map[t.head], relation_map[t.relation], entity_map[t.tail]))

    type_triples: list[TypeTriple] = []
    for tt in kg.type_triples:
        if tt.entity not in kept_entity_set or tt.cls not in kept_class_set:
            continue
        if rng.random() > config.type_keep_fraction:
            continue
        type_triples.append(TypeTriple(entity_map[tt.entity], class_map[tt.cls]))

    # Drop elements that end up unused (mirrors how OpenEA samples are built:
    # the vocabularies are exactly what the triples mention).
    used_entities = {t.head for t in triples} | {t.tail for t in triples}
    used_entities |= {tt.entity for tt in type_triples}
    used_relations = {t.relation for t in triples}
    used_classes = {tt.cls for tt in type_triples}

    view_kg = KnowledgeGraph(
        name=config.prefix,
        entities=[entity_map[e] for e in kept_entities if entity_map[e] in used_entities],
        relations=[relation_map[r] for r in kept_relations if relation_map[r] in used_relations],
        classes=[class_map[c] for c in kept_classes if class_map[c] in used_classes],
        triples=triples,
        type_triples=type_triples,
    )
    entity_map = {w: v for w, v in entity_map.items() if v in used_entities}
    relation_map = {w: v for w, v in relation_map.items() if v in used_relations}
    class_map = {w: v for w, v in class_map.items() if v in used_classes}
    return view_kg, entity_map, relation_map, class_map


def derive_aligned_pair(
    world: WorldKG,
    name: str,
    view1: ViewConfig,
    view2: ViewConfig,
    seed: RandomState = None,
) -> AlignedKGPair:
    """Derive an :class:`AlignedKGPair` (two views + gold matches) from a world KG."""
    rng = ensure_rng(seed)
    seed1 = int(rng.integers(0, 2**31 - 1))
    seed2 = int(rng.integers(0, 2**31 - 1))
    kg1, ent_map1, rel_map1, cls_map1 = derive_view(world, view1, seed1)
    kg2, ent_map2, rel_map2, cls_map2 = derive_view(world, view2, seed2)

    entity_pairs = [
        (ent_map1[w], ent_map2[w]) for w in ent_map1 if w in ent_map2
    ]
    relation_pairs = [
        (rel_map1[w], rel_map2[w]) for w in rel_map1 if w in rel_map2
    ]
    class_pairs = [
        (cls_map1[w], cls_map2[w]) for w in cls_map1 if w in cls_map2
    ]

    return AlignedKGPair(
        name=name,
        kg1=kg1,
        kg2=kg2,
        entity_alignment=GoldAlignment(ElementKind.ENTITY, entity_pairs),
        relation_alignment=GoldAlignment(ElementKind.RELATION, relation_pairs),
        class_alignment=GoldAlignment(ElementKind.CLASS, class_pairs),
    )
