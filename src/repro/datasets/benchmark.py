"""Benchmark dataset registry: D-W, D-Y, EN-DE, EN-FR (scaled down).

The paper's datasets (Table 2) have 100k vs 70k entities, with schema sizes
413/261 relations and 167/116 classes (D-W), 287/32 relations and 13/9 classes
(D-Y), and so on.  The configs below keep two of their distinguishing
properties at ~1/100 scale:

* KG2 always keeps about 70% of the entities (the paper removes 30% of the
  second KG to create dangling entities),
* the relative schema richness is preserved: D-Y has very few classes and an
  asymmetric relation vocabulary, cross-lingual pairs (EN-DE, EN-FR) have
  richer, more balanced schemata.

``make_benchmark(name, scale=...)`` lets the runtime benchmarks grow the
datasets when more fidelity is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datasets.views import ViewConfig, derive_aligned_pair
from repro.datasets.world import WorldConfig, generate_world
from repro.kg.pair import AlignedKGPair, SplitRatios
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class BenchmarkConfig:
    """A named dataset configuration (world + two view configs)."""

    name: str
    description: str
    world: WorldConfig
    view1: ViewConfig
    view2: ViewConfig

    def scaled(self, scale: float) -> "BenchmarkConfig":
        """Scale entity/triple counts by ``scale`` (schema sizes stay fixed)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        world = replace(
            self.world,
            num_entities=max(50, int(self.world.num_entities * scale)),
        )
        return replace(self, world=world)


BENCHMARK_CONFIGS: dict[str, BenchmarkConfig] = {
    "D-W": BenchmarkConfig(
        name="D-W",
        description="DBpedia-Wikidata style: rich schemata on both sides, heterogeneous names",
        world=WorldConfig(
            num_entities=1000, num_classes=24, num_relations=40, mean_out_degree=6.0, seed=11
        ),
        view1=ViewConfig(prefix="dbp", relation_keep_fraction=1.0, class_keep_fraction=1.0,
                         triple_keep_fraction=0.9, type_keep_fraction=0.9),
        view2=ViewConfig(prefix="wd", obfuscate_names=True, entity_keep_fraction=0.7, relation_keep_fraction=0.7,
                         class_keep_fraction=0.7, triple_keep_fraction=0.9, type_keep_fraction=0.85),
    ),
    "D-Y": BenchmarkConfig(
        name="D-Y",
        description="DBpedia-YAGO style: very small class vocabulary, asymmetric relations",
        world=WorldConfig(
            num_entities=1000, num_classes=13, num_relations=36, mean_out_degree=6.0, seed=13
        ),
        view1=ViewConfig(prefix="dbp", relation_keep_fraction=1.0, class_keep_fraction=1.0,
                         triple_keep_fraction=0.9, type_keep_fraction=0.9),
        view2=ViewConfig(prefix="yago", entity_keep_fraction=0.7, relation_keep_fraction=0.4,
                         class_keep_fraction=0.7, triple_keep_fraction=0.9, type_keep_fraction=0.85),
    ),
    "EN-DE": BenchmarkConfig(
        name="EN-DE",
        description="English-German DBpedia style: same underlying schema, different languages",
        world=WorldConfig(
            num_entities=1000, num_classes=20, num_relations=38, mean_out_degree=6.0, seed=17
        ),
        view1=ViewConfig(prefix="en", relation_keep_fraction=1.0, class_keep_fraction=1.0,
                         triple_keep_fraction=0.9, type_keep_fraction=0.9),
        view2=ViewConfig(prefix="de", obfuscate_names=True, entity_keep_fraction=0.7, relation_keep_fraction=0.6,
                         class_keep_fraction=0.7, triple_keep_fraction=0.9, type_keep_fraction=0.85),
    ),
    "EN-FR": BenchmarkConfig(
        name="EN-FR",
        description="English-French DBpedia style: rich schemata, lower structural overlap",
        world=WorldConfig(
            num_entities=1000, num_classes=22, num_relations=40, mean_out_degree=5.0, seed=19
        ),
        view1=ViewConfig(prefix="en", relation_keep_fraction=1.0, class_keep_fraction=1.0,
                         triple_keep_fraction=0.85, type_keep_fraction=0.9),
        view2=ViewConfig(prefix="fr", obfuscate_names=True, entity_keep_fraction=0.7, relation_keep_fraction=0.75,
                         class_keep_fraction=0.7, triple_keep_fraction=0.8, type_keep_fraction=0.85),
    ),
}


def available_benchmarks() -> list[str]:
    """Names of the registered benchmark datasets."""
    return list(BENCHMARK_CONFIGS)


def make_benchmark(
    name: str,
    scale: float = 1.0,
    split: SplitRatios | None = None,
    seed: RandomState = 0,
) -> AlignedKGPair:
    """Materialise a benchmark dataset as an :class:`AlignedKGPair`.

    Parameters
    ----------
    name:
        One of :func:`available_benchmarks` (case-insensitive).
    scale:
        Multiplier on the number of world entities; 1.0 gives ~1000 entities
        in KG1 and ~700 in KG2.
    split:
        Train/valid/test ratios of gold entity matches (default 20/10/70 like
        the OpenEA protocol).
    seed:
        Seed for view derivation and the split shuffle; the world itself is
        generated with the per-dataset seed so each dataset keeps its identity.
    """
    key = name.upper()
    if key not in BENCHMARK_CONFIGS:
        raise KeyError(f"unknown benchmark {name!r}; available: {available_benchmarks()}")
    config = BENCHMARK_CONFIGS[key]
    if scale != 1.0:
        config = config.scaled(scale)
    rng = ensure_rng(seed)
    world = generate_world(config.world)
    pair = derive_aligned_pair(world, key, config.view1, config.view2, seed=rng)
    pair.split_entity_matches(split or SplitRatios(), seed=rng)
    return pair
