"""Benchmark datasets.

The paper evaluates on the OpenEA benchmark (samples of DBpedia, Wikidata,
YAGO and multilingual DBpedia).  Those dumps are not available offline, so
this package provides a *synthetic OpenEA-style generator*: a shared "world"
KG is sampled first, then two heterogeneous views of it are derived (renamed
schemata, dropped triples, dangling entities), yielding gold entity, relation
and class matches.  The four dataset configurations ``D-W``, ``D-Y``,
``EN-DE`` and ``EN-FR`` mirror the relative schema sizes of the paper's
Table 2 at a reduced scale.

Real OpenEA data can be used instead through
:func:`repro.kg.load_openea_directory`; the rest of the library is agnostic to
where the :class:`~repro.kg.pair.AlignedKGPair` came from.
"""

from repro.datasets.world import (
    WorldConfig,
    WorldKG,
    generate_world,
    make_large_world_pair,
)
from repro.datasets.views import ViewConfig, derive_view, derive_aligned_pair
from repro.datasets.benchmark import (
    BENCHMARK_CONFIGS,
    BenchmarkConfig,
    available_benchmarks,
    make_benchmark,
)

__all__ = [
    "BENCHMARK_CONFIGS",
    "BenchmarkConfig",
    "ViewConfig",
    "WorldConfig",
    "WorldKG",
    "available_benchmarks",
    "derive_aligned_pair",
    "derive_view",
    "generate_world",
    "make_large_world_pair",
    "make_benchmark",
]
