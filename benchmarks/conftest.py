"""Shared fixtures for the benchmark harness.

The benchmarks reproduce every table and figure of the paper's evaluation at a
reduced scale so the whole suite runs in minutes on a laptop.  Two environment
variables control fidelity:

* ``REPRO_BENCH_SCALE`` (default ``0.4``) — multiplier on dataset size,
* ``REPRO_BENCH_DATASETS`` (default ``D-W,D-Y``) — comma-separated dataset
  names; set to ``D-W,D-Y,EN-DE,EN-FR`` for the full sweep.

Expensive artefacts (datasets, fitted pipelines) are cached per session so the
table benchmarks that share them do not re-train.

Every bench module records its wall-time and headline metrics through
:func:`record_bench`; at session end the accumulated records are written as
machine-readable ``BENCH_<name>.json`` files in the repository root, so the
performance trajectory is tracked across PRs (CI uploads the table4 smoke
artifact on every run).
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import replace

import pytest

from repro import DAAKG, DAAKGConfig, make_benchmark
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.active.pool import PoolConfig
from repro.inference.power import InferencePowerConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
BENCH_DATASETS = [
    name.strip()
    for name in os.environ.get("REPRO_BENCH_DATASETS", "D-W,D-Y").split(",")
    if name.strip()
]

_PAIR_CACHE: dict[str, object] = {}
_PIPELINE_CACHE: dict[tuple, DAAKG] = {}


def bench_pair(name: str):
    """A benchmark dataset at the configured scale (cached)."""
    key = f"{name}:{BENCH_SCALE}"
    if key not in _PAIR_CACHE:
        _PAIR_CACHE[key] = make_benchmark(name, scale=BENCH_SCALE, seed=0)
    return _PAIR_CACHE[key]


def quick_config(base_model: str = "transe", **overrides) -> DAAKGConfig:
    """A DAAKG configuration sized for the benchmark harness."""
    config = DAAKGConfig(
        base_model=base_model,
        pretrain=EmbeddingTrainingConfig(epochs=6),
        alignment=AlignmentTrainingConfig(
            rounds=3,
            epochs_per_round=15,
            num_negatives=8,
            embedding_batches_per_round=3,
            embedding_batch_size=512,
        ),
        pool=PoolConfig(top_n=50),
        inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
        seed=0,
    )
    if overrides:
        config = replace(config, **overrides)
    return config


def fitted_daakg(dataset: str, base_model: str = "transe", ablation: str = "full") -> DAAKG:
    """A fitted DAAKG pipeline (cached per dataset/model/ablation)."""
    key = (dataset, base_model, ablation, BENCH_SCALE)
    if key not in _PIPELINE_CACHE:
        config = quick_config(base_model).with_ablation(ablation)
        pipeline = DAAKG(bench_pair(dataset), config)
        pipeline.fit()
        _PIPELINE_CACHE[key] = pipeline
    return _PIPELINE_CACHE[key]


@pytest.fixture(scope="session")
def bench_datasets() -> list[str]:
    return list(BENCH_DATASETS)


# ----------------------------------------------------------- bench artifacts
_BENCH_RECORDS: dict[str, dict] = {}
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def record_bench(
    name: str,
    wall_time_seconds: float | None = None,
    headline: dict | None = None,
    detail: dict | None = None,
) -> None:
    """Accumulate one benchmark's results for the ``BENCH_<name>.json`` artifact.

    ``wall_time_seconds`` adds to the benchmark's total (components report
    their own share), ``headline`` holds the few numbers worth comparing
    across PRs, and ``detail`` per-component breakdowns.  Repeated calls from
    cached fixtures are harmless: cached components simply report nothing.
    """
    entry = _BENCH_RECORDS.setdefault(
        name, {"name": name, "wall_time_seconds": 0.0, "headline": {}, "detail": {}}
    )
    if wall_time_seconds is not None:
        entry["wall_time_seconds"] += float(wall_time_seconds)
    if headline:
        entry["headline"].update(headline)
    if detail:
        entry["detail"].update(detail)


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write one ``BENCH_<name>.json`` per recorded benchmark (repo root)."""
    for name, entry in _BENCH_RECORDS.items():
        entry["wall_time_seconds"] = round(entry["wall_time_seconds"], 3)
        entry["scale"] = BENCH_SCALE
        entry["datasets"] = BENCH_DATASETS
        entry["python"] = platform.python_version()
        # which campaign executor the session ran under: wall-clock numbers
        # are only comparable between artifacts produced on the same backend
        entry["executor"] = os.environ.get("REPRO_CAMPAIGN_EXECUTOR") or "auto"
        # host context: lets check_regression explain wall-clock drift when a
        # baseline was produced on different hardware (informational only)
        entry["host"] = {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        }
        path = os.path.join(_REPO_ROOT, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=2, sort_keys=True)
            handle.write("\n")


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print a result table in the shape of the paper's tables."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(x)) for x in [header[i]] + [row[i] for row in rows]) for i in range(len(header))]
    print("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    for row in rows:
        print("  ".join(str(x).ljust(widths[i]) for i, x in enumerate(row)))
