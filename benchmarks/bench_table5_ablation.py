"""Table 5: ablation study of the embedding-based joint alignment.

Runs DAAKG with each component removed (class embeddings, mean embeddings,
semi-supervision) and reports entity/relation/class H@1 and F1.  The paper's
shape: mean embeddings matter most for schema alignment, semi-supervision most
for entity alignment, and every component helps somewhere.
"""

import pytest

from conftest import BENCH_DATASETS, fitted_daakg, print_table

ABLATIONS = ["full", "class_embeddings", "mean_embeddings", "semi_supervision"]
LABELS = {
    "full": "DAAKG",
    "class_embeddings": "w/o class embeddings",
    "mean_embeddings": "w/o mean embeddings",
    "semi_supervision": "w/o semi-supervision",
}

_RESULTS: dict[str, dict] = {}


def _scores(ablation: str) -> dict:
    if ablation not in _RESULTS:
        _RESULTS[ablation] = fitted_daakg(BENCH_DATASETS[0], "transe", ablation).evaluate()
    return _RESULTS[ablation]


@pytest.mark.parametrize("ablation", ABLATIONS)
def test_table5_ablation_variant(benchmark, ablation):
    scores = benchmark.pedantic(lambda: _scores(ablation), rounds=1, iterations=1)
    rows = [
        [kind, f"{scores[kind].hits_at_1:.3f}", f"{scores[kind].f1:.3f}"]
        for kind in ("entity", "relation", "class")
    ]
    print_table(
        f"Table 5 ({BENCH_DATASETS[0]}, {LABELS[ablation]})", ["Task", "H@1", "F1"], rows
    )
    for kind in ("entity", "relation", "class"):
        assert 0.0 <= scores[kind].f1 <= 1.0


def test_table5_semi_supervision_helps_entities():
    """Semi-supervision should not hurt entity alignment (paper: biggest gain)."""
    full = _scores("full")
    without = _scores("semi_supervision")
    assert full["entity"].hits_at_1 >= without["entity"].hits_at_1 - 0.05
