"""Similarity backend scaling: dense O(N·M) vs sharded O(block² + N·k) memory.

The point of the sharded backend is that the similarity runtime's peak
*transient* memory — the working set of a top-k pass above the model's
resident factor state — is bounded by the tile size, not by ``N × M``.  This
benchmark pins that claim with numbers: the same query workload (streamed
top-k tables, evaluation over a fixed gold budget, semi-supervised threshold
mining) runs on synthetic large-world pairs at scale factors 1 / 2 / 4
against both backends, tracking per-phase peak allocations with
``tracemalloc`` (which traces NumPy buffers).

Assertions:

* the sharded top-k transient peak is flat across scale factors (within 10%
  — the tile dominates; the ``N·k`` output is visible but small),
* the dense top-k transient peak grows ~quadratically (≥ 4× from scale 1 to
  scale 4; in practice ~16×),
* at the largest scale the sharded backend's worst phase uses a small
  fraction of the dense backend's.

Evaluation uses a fixed 64-pair gold budget at every scale (a constant
labelling/evaluation budget, as in a real campaign) so the measured phase
isolates the similarity runtime rather than an O(gold·M) protocol slab, and
the landmark set is likewise pinned at 128 so the structural propagation
factors stay a constant number of columns.

Writes ``BENCH_scale.json`` via the shared conftest harness.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
import pytest

from conftest import print_table, record_bench
from repro.alignment import (
    SimilarityEngine,
    evaluate_alignment_from_engine,
    mine_potential_matches_from_engine,
)
from repro.alignment.model import JointAlignmentModel
from repro.datasets import make_large_world_pair
from repro.embedding import TransE
from repro.kg.elements import ElementKind
from repro.runtime import create_backend

BASE_ENTITIES = 1408
SCALE_FACTORS = (1, 2, 4)
SHARDED_BLOCK = 1024
DENSE_BLOCK = 4096  # the dense default: full-width row blocks
LANDMARK_BUDGET = 128
GOLD_BUDGET = 64
TOP_K = 10
MINE_THRESHOLD = 0.8


def build_engine(pair, backend: str, workers: int = 1) -> SimilarityEngine:
    """An untrained joint model with its engine pinned to ``backend``.

    Training is irrelevant to the memory profile of the similarity runtime,
    so random TransE embeddings keep the benchmark about the backends.  The
    backend is pinned directly (not via config) so the comparison is
    unaffected by a REPRO_SIMILARITY_BACKEND override in the environment.
    """
    model = JointAlignmentModel(
        pair,
        TransE(pair.kg1, dim=32, rng=0),
        TransE(pair.kg2, dim=32, rng=1),
        rng=0,
    )
    block = SHARDED_BLOCK if backend == "sharded" else DENSE_BLOCK
    engine = SimilarityEngine(model, block_size=block)
    engine.backend = create_backend(engine, backend)
    engine.workers = workers  # direct assignment: REPRO_SIMILARITY_WORKERS must not leak in
    model.similarity = engine
    model.set_landmarks(pair.entity_match_ids()[:LANDMARK_BUDGET])
    return engine


def run_workload(engine: SimilarityEngine, gold: np.ndarray) -> dict:
    """The query workload; returns per-phase wall time and transient peak MB.

    Transient peak = tracemalloc peak minus the traced memory resident when
    the phase starts, i.e. the phase's working set above the model state
    (snapshot, channel factors) that exists on both backends anyway.
    """
    engine.model.refresh_statistics()
    if engine.backend_name == "sharded":
        engine.channels(ElementKind.ENTITY)  # warm the factor cache

    phases: dict[str, dict] = {}

    def phase(name, fn):
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        start = time.perf_counter()
        fn()
        phases[name] = {
            "seconds": round(time.perf_counter() - start, 3),
            "transient_peak_mb": round(
                (tracemalloc.get_traced_memory()[1] - base) / 1e6, 2
            ),
        }

    phase("topk", lambda: engine.top_k_table(ElementKind.ENTITY, TOP_K))
    phase("evaluate", lambda: evaluate_alignment_from_engine(engine, ElementKind.ENTITY, gold))
    phase(
        "mine",
        lambda: mine_potential_matches_from_engine(
            engine, ElementKind.ENTITY, threshold=MINE_THRESHOLD
        ),
    )
    return phases


@pytest.fixture(scope="module")
def scale_results():
    results: dict[str, dict[int, dict]] = {"dense": {}, "sharded": {}}
    for factor in SCALE_FACTORS:
        pair = make_large_world_pair(BASE_ENTITIES * factor, seed=factor)
        for backend in ("dense", "sharded"):
            engine = build_engine(pair, backend)
            tracemalloc.start()
            try:
                results[backend][factor] = run_workload(engine, pair.entity_match_ids()[:GOLD_BUDGET])
            finally:
                tracemalloc.stop()
    return results


def test_bench_similarity_scale(scale_results):
    rows = []
    for backend in ("dense", "sharded"):
        for factor in SCALE_FACTORS:
            phases = scale_results[backend][factor]
            rows.append(
                [
                    backend,
                    BASE_ENTITIES * factor,
                    phases["topk"]["transient_peak_mb"],
                    phases["evaluate"]["transient_peak_mb"],
                    phases["mine"]["transient_peak_mb"],
                    round(sum(p["seconds"] for p in phases.values()), 2),
                ]
            )
    print_table(
        "Similarity backend scaling (transient peak MB per phase)",
        ["backend", "entities/side", "topk MB", "eval MB", "mine MB", "total s"],
        rows,
    )

    dense_topk = {f: scale_results["dense"][f]["topk"]["transient_peak_mb"] for f in SCALE_FACTORS}
    sharded_topk = {f: scale_results["sharded"][f]["topk"]["transient_peak_mb"] for f in SCALE_FACTORS}
    dense_growth = dense_topk[4] / dense_topk[1]
    sharded_growth = sharded_topk[4] / sharded_topk[1]
    worst_dense = max(p["transient_peak_mb"] for p in scale_results["dense"][4].values())
    worst_sharded = max(p["transient_peak_mb"] for p in scale_results["sharded"][4].values())

    record_bench(
        "scale",
        wall_time_seconds=sum(
            p["seconds"]
            for backend in scale_results.values()
            for phases in backend.values()
            for p in phases.values()
        ),
        headline={
            "dense_topk_growth_1_to_4": round(dense_growth, 2),
            "sharded_topk_growth_1_to_4": round(sharded_growth, 3),
            "dense_peak_mb_at_scale_4": worst_dense,
            "sharded_peak_mb_at_scale_4": worst_sharded,
            "peak_reduction_at_scale_4": round(worst_dense / worst_sharded, 1),
        },
        detail={
            "base_entities": BASE_ENTITIES,
            "scale_factors": list(SCALE_FACTORS),
            "sharded_block": SHARDED_BLOCK,
            "landmark_budget": LANDMARK_BUDGET,
            "gold_budget": GOLD_BUDGET,
            "results": {
                backend: {str(f): phases for f, phases in per_scale.items()}
                for backend, per_scale in scale_results.items()
            },
        },
    )

    # dense peak transient memory tracks N×M (~quadratic in the scale factor)
    assert dense_growth >= 4.0, f"dense top-k peak grew only {dense_growth:.1f}x from scale 1 to 4"
    # sharded peak stays flat: the tile dominates, N·k output is marginal
    assert sharded_growth <= 1.10, (
        f"sharded top-k peak grew {sharded_growth:.2f}x across scales; "
        "expected flat (within 10%) — the streaming invariant is broken"
    )
    assert worst_sharded < worst_dense / 4, (
        f"sharded worst-phase peak {worst_sharded}MB is not clearly below "
        f"dense {worst_dense}MB at scale 4"
    )


def test_bench_multi_worker_topk():
    """Multi-worker sharded top-k: identical tables, recorded wall times."""
    pair = make_large_world_pair(BASE_ENTITIES, seed=1)
    serial = build_engine(pair, "sharded", workers=1)
    parallel = build_engine(pair, "sharded", workers=4)
    start = time.perf_counter()
    table_serial = serial.top_k_table(ElementKind.ENTITY, TOP_K)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    table_parallel = parallel.top_k_table(ElementKind.ENTITY, TOP_K)
    parallel_s = time.perf_counter() - start
    assert np.array_equal(table_serial.left_indices, table_parallel.left_indices)
    assert np.array_equal(table_serial.left_values, table_parallel.left_values)
    record_bench(
        "scale",
        headline={"topk_workers1_s": round(serial_s, 3), "topk_workers4_s": round(parallel_s, 3)},
    )
