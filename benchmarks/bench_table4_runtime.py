"""Table 4: running time comparison.

Times PARIS, the lexical matcher, the embedding baselines and DAAKG (plus its
ablations) on the first benchmark dataset.  The paper's shape: PARIS and the
text-only method run in seconds, all deep methods cost much more, and
semi-supervision is DAAKG's most expensive component.
"""

from conftest import BENCH_DATASETS, bench_pair, fitted_daakg, print_table, record_bench
from repro.baselines import LexicalMatcher, MTransE, PARIS


def test_table4_runtime(benchmark):
    dataset = BENCH_DATASETS[0]
    pair = bench_pair(dataset)

    def run() -> list[list]:
        rows = []
        paris = PARIS().fit(pair)
        rows.append(["PARIS", f"{paris.training_time.elapsed:.2f}s"])
        lexical = LexicalMatcher().fit(pair)
        rows.append(["Lexical", f"{lexical.training_time.elapsed:.2f}s"])
        mtranse = MTransE().fit(pair)
        rows.append(["MTransE", f"{mtranse.training_time.elapsed:.2f}s"])
        full = fitted_daakg(dataset, "transe")
        rows.append(["DAAKG (TransE)", f"{full.training_time.elapsed:.2f}s"])
        without_semi = fitted_daakg(dataset, "transe", "semi_supervision")
        rows.append(["DAAKG w/o semi-supervision", f"{without_semi.training_time.elapsed:.2f}s"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Table 4: running time ({dataset})", ["Method", "Time"], rows)
    times = {row[0]: float(row[1][:-1]) for row in rows}
    record_bench(
        "table4",
        wall_time_seconds=sum(times.values()),
        headline={f"{method}:seconds": seconds for method, seconds in times.items()},
    )
    # PARIS (no training) should be cheaper than the full deep pipeline.
    assert times["PARIS"] <= times["DAAKG (TransE)"]
