"""Table 3: comparison of deep alignment methods.

For every benchmark dataset, fits DAAKG and the baseline families (PARIS,
MTransE, BootEA, GCN-Align, lexical) on the training split and reports H@1,
MRR and F1 for entity, relation and class alignment.  The paper's headline
shape to check: DAAKG leads entity alignment and is the only deep method with
satisfactory relation/class alignment; the lexical baseline only works where
the two KGs share a vocabulary (D-Y here).
"""

import pytest

from conftest import BENCH_DATASETS, bench_pair, fitted_daakg, print_table, record_bench
from repro.baselines import BootEA, GCNAlign, LexicalMatcher, MTransE, PARIS

METHODS = {
    "PARIS": lambda: PARIS(),
    "MTransE": lambda: MTransE(),
    "BootEA": lambda: BootEA(),
    "GCN-Align": lambda: GCNAlign(),
    "Lexical": lambda: LexicalMatcher(),
}

RESULTS: dict[tuple[str, str], dict] = {}


def _run_method(name: str, dataset: str) -> dict:
    key = (name, dataset)
    if key in RESULTS:
        return RESULTS[key]
    if name == "DAAKG":
        pipeline = fitted_daakg(dataset, "transe")
        scores = pipeline.evaluate()
        seconds = pipeline.training_time.elapsed
    else:
        baseline = METHODS[name]()
        baseline.fit(bench_pair(dataset))
        scores = baseline.evaluate()
        seconds = baseline.training_time.elapsed
    RESULTS[key] = {"scores": scores, "seconds": seconds}
    headline = None
    if name == "DAAKG":
        headline = {f"daakg:{dataset}:entity_h1": round(scores["entity"].hits_at_1, 4)}
    record_bench(
        "table3",
        wall_time_seconds=seconds,
        headline=headline,
        detail={f"{name}:{dataset}:seconds": round(seconds, 3)},
    )
    return RESULTS[key]


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("method", list(METHODS) + ["DAAKG"])
def test_table3_method_on_dataset(benchmark, method, dataset):
    result = benchmark.pedantic(lambda: _run_method(method, dataset), rounds=1, iterations=1)
    scores = result["scores"]
    rows = [
        [
            kind,
            f"{scores[kind].hits_at_1:.3f}",
            f"{scores[kind].mrr:.3f}",
            f"{scores[kind].f1:.3f}",
        ]
        for kind in ("entity", "relation", "class")
    ]
    print_table(f"Table 3 ({dataset}, {method})", ["Task", "H@1", "MRR", "F1"], rows)
    for kind in ("entity", "relation", "class"):
        assert 0.0 <= scores[kind].hits_at_1 <= 1.0


def test_table3_daakg_beats_translation_baseline():
    """The headline comparison: DAAKG's schema alignment dominates MTransE's."""
    dataset = BENCH_DATASETS[0]
    daakg = _run_method("DAAKG", dataset)["scores"]
    mtranse = _run_method("MTransE", dataset)["scores"]
    assert daakg["relation"].hits_at_1 >= mtranse["relation"].hits_at_1
    assert daakg["entity"].hits_at_1 >= mtranse["entity"].hits_at_1
