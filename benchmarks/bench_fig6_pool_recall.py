"""Figure 6: recall of the element pair pool as a function of N.

Sweeps the top-N parameter of the schema-signature pool generation and
measures how many gold entity matches survive, together with the fraction of
the full pair space the pool retains.  The paper's shape: recall grows with N
while the pool stays a small fraction of all pairs.
"""

from conftest import BENCH_DATASETS, fitted_daakg, print_table
from repro.active.pool import PoolConfig, build_pool

N_VALUES = [10, 25, 50, 100, 200]


def test_fig6_pool_recall(benchmark):
    pipeline = fitted_daakg(BENCH_DATASETS[0], "transe")
    gold = {
        (pipeline.kg1.entity_id(a), pipeline.kg2.entity_id(b))
        for a, b in pipeline.pair.entity_alignment.pairs
    }
    total_pairs = pipeline.kg1.num_entities * pipeline.kg2.num_entities

    def run() -> list[list]:
        rows = []
        for n in N_VALUES:
            pool = build_pool(pipeline.model, PoolConfig(top_n=n))
            recall = pool.recall_of_matches(gold)
            reduction = 1.0 - len(pool.entity_pairs) / total_pairs
            rows.append([n, len(pool.entity_pairs), f"{recall:.3f}", f"{reduction:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Figure 6: pool recall vs N ({BENCH_DATASETS[0]}, TransE)",
        ["N", "Entity pairs", "Recall", "Pair-space reduction"],
        rows,
    )
    recalls = [float(row[2]) for row in rows]
    # Recall must be monotone non-decreasing in N.
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
