"""ANN retrieval scaling: sub-linear query time at a pinned recall floor.

PR 4 made peak memory flat; this benchmark pins the *compute* claim of the
ANN backend: answering a fixed top-k query batch from the per-channel
inverted-list indexes grows sub-linearly with the catalogue, while the exact
streamed kernel scans every column block and grows linearly per query (the
full table pass is quadratic).  Scale factors 4 / 8 / 16 over the
``BENCH_SCALE``-adjusted base double the entity count twice; per data
doubling the exact per-batch work grows ~2× (fixed query batch, double the
columns), so the wall asserts the ANN per-doubling query-time ratio stays
under that exact-growth ratio with margin — and that recall against the
exact kernel holds the configured floor at every scale.

Embeddings are synthetic but *clustered* (a mixture of Gaussians shared by
both sides), modelling trained-embedding geometry — on structureless random
vectors no inverted-list index can beat a scan and the backend would
correctly fall back to exact.  Returned ANN scores are asserted bit-identical
to ``CosineChannels.pair_values``, the exactness anchor of the re-rank
contract.

Writes ``BENCH_ann.json`` via the shared conftest harness; the ``recall_*``
headline keys are gated strictly by the regression wall (any drop fails).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import BENCH_SCALE, print_table, record_bench
from repro.alignment import SimilarityEngine
from repro.alignment.model import JointAlignmentModel
from repro.datasets import make_large_world_pair
from repro.embedding import TransE
from repro.kg.elements import ElementKind
from repro.runtime import AnnParams, create_backend, stream_topk, topk_recall

BASE_ENTITIES = max(352, int(round(1408 * BENCH_SCALE / 0.4)))
SCALE_FACTORS = (4, 8, 16)
BLOCK = 1024
LANDMARK_BUDGET = 128
TOP_K = 10
QUERY_ROWS = 256  # fixed query batch: isolates per-query cost from N
EMBED_DIM = 32
NUM_CLUSTERS = 64
TIMING_REPEATS = 3


def clustered_embeddings(num: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """A mixture of Gaussians: the geometry IVF indexes exploit in trained models."""
    centers = rng.normal(size=(NUM_CLUSTERS, dim))
    assign = rng.integers(0, NUM_CLUSTERS, size=num)
    return centers[assign] + 0.25 * rng.normal(size=(num, dim))


def build_engine(pair) -> SimilarityEngine:
    """An ANN-backed engine over clustered synthetic embeddings.

    Both KGs draw from the *same* cluster centers (one shared generator), so
    cross-KG similarities have the nearest-neighbour structure of a trained
    alignment model.  Backend and knobs are pinned directly — a
    REPRO_SIMILARITY_* override in the environment must not skew the
    comparison.
    """
    rng = np.random.default_rng(7)
    model1 = TransE(pair.kg1, dim=EMBED_DIM, rng=0)
    model2 = TransE(pair.kg2, dim=EMBED_DIM, rng=1)
    model1.entity_embeddings.weight.data[:] = clustered_embeddings(
        pair.kg1.num_entities, EMBED_DIM, rng
    )
    model2.entity_embeddings.weight.data[:] = clustered_embeddings(
        pair.kg2.num_entities, EMBED_DIM, rng
    )
    model1.mark_parameters_mutated()
    model2.mark_parameters_mutated()
    model = JointAlignmentModel(pair, model1, model2, rng=0)
    engine = SimilarityEngine(model, block_size=BLOCK)
    engine.workers = 1
    engine.ann_params = AnnParams()  # default knobs: that is what the wall gates
    engine.backend = create_backend(engine, "ann")
    model.similarity = engine
    model.set_landmarks(pair.entity_match_ids()[:LANDMARK_BUDGET])
    return engine


def timed(fn) -> tuple[float, object]:
    """Best-of-N wall time (noise floor) and the last result."""
    best, result = float("inf"), None
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def ann_results():
    results: dict[int, dict] = {}
    for factor in SCALE_FACTORS:
        num_entities = BASE_ENTITIES * factor
        pair = make_large_world_pair(num_entities, seed=factor)
        engine = build_engine(pair)
        backend = engine.backend
        channels = engine.channels(ElementKind.ENTITY)
        query = np.linspace(0, channels.num_rows - 1, QUERY_ROWS).astype(np.int64)

        build_start = time.perf_counter()
        payload = backend._index_for(ElementKind.ENTITY)
        build_s = time.perf_counter() - build_start
        assert payload is not None, (
            f"ANN backend fell back to exact at {num_entities} entities — "
            "the benchmark's clustered embeddings should always index"
        )

        exact_s, (exact_idx, exact_val) = timed(
            lambda: stream_topk(channels.select_rows(query), TOP_K, BLOCK, 1)
        )
        ann_s, (ann_idx, ann_val) = timed(
            lambda: backend.query_top_k(ElementKind.ENTITY, query, TOP_K)
        )
        # the exactness contract: every returned score is the pair-exact value
        assert np.array_equal(
            ann_val.ravel(),
            channels.pair_values(np.repeat(query, TOP_K), ann_idx.ravel()),
        )
        results[factor] = {
            "entities": num_entities,
            "nprobe": payload[1],
            "index_build_s": round(build_s, 3),
            "exact_query_s": round(exact_s, 4),
            "ann_query_s": round(ann_s, 4),
            # value-aware recall: structurally identical entities tie bitwise,
            # and any same-valued member of a tie class is a correct answer
            "recall": topk_recall(exact_idx, ann_idx, exact_val, ann_val),
            "wall_s": build_s + TIMING_REPEATS * (exact_s + ann_s),
        }
    return results


def test_bench_ann_retrieval(ann_results):
    rows = [
        [
            r["entities"],
            r["nprobe"],
            r["index_build_s"],
            r["exact_query_s"],
            r["ann_query_s"],
            round(r["exact_query_s"] / r["ann_query_s"], 2),
            round(r["recall"], 3),
        ]
        for r in ann_results.values()
    ]
    print_table(
        f"ANN retrieval scaling ({QUERY_ROWS}-row top-{TOP_K} batch)",
        ["entities/side", "nprobe", "build s", "exact s", "ann s", "speedup", "recall"],
        rows,
    )

    first, last = SCALE_FACTORS[0], SCALE_FACTORS[-1]
    doublings = np.log2(last / first)
    ann_growth = ann_results[last]["ann_query_s"] / ann_results[first]["ann_query_s"]
    exact_growth = (
        ann_results[last]["exact_query_s"] / ann_results[first]["exact_query_s"]
    )
    per_doubling = ann_growth ** (1.0 / doublings)
    min_recall = min(r["recall"] for r in ann_results.values())

    record_bench(
        "ann",
        wall_time_seconds=sum(r["wall_s"] for r in ann_results.values()),
        headline={
            # strict accuracy floor: the regression wall fails on ANY drop
            **{
                f"recall_scale{factor}": round(r["recall"], 3)
                for factor, r in ann_results.items()
            },
            "ann_per_doubling_query_growth": round(per_doubling, 3),
            "exact_total_query_growth": round(exact_growth, 2),
            "speedup_at_largest_scale": round(
                ann_results[last]["exact_query_s"] / ann_results[last]["ann_query_s"], 2
            ),
            "sublinear_vs_exact": bool(per_doubling < 2.0),
        },
        detail={
            "base_entities": BASE_ENTITIES,
            "scale_factors": list(SCALE_FACTORS),
            "block": BLOCK,
            "query_rows": QUERY_ROWS,
            "top_k": TOP_K,
            "landmark_budget": LANDMARK_BUDGET,
            "results": {str(f): r for f, r in ann_results.items()},
        },
    )

    for factor, r in ann_results.items():
        assert r["recall"] >= 0.95, (
            f"ANN recall {r['recall']:.3f} at scale {factor} is below the 0.95 "
            "floor at default knobs"
        )
    # data doubles per step, so the exact per-batch scan doubles per step; the
    # issue's bar — query-time growth under half the 4x data-growth ratio per
    # doubling — means the ANN ratio must stay below 2.0 per doubling
    assert per_doubling < 2.0, (
        f"ANN query time grew {per_doubling:.2f}x per data doubling "
        f"({ann_growth:.2f}x total) — retrieval is not sub-linear"
    )
    assert min_recall >= 0.95
