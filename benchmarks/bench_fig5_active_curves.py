"""Figure 5: active alignment curves (H@1 and F1 vs. labelling budget).

Starts every strategy from the same 5% seed of labelled entity matches and
runs the same number of active-learning batches, reporting the progressive
entity H@1/F1 after each batch.  The paper's shape: DAAKG's inference-power
selection dominates the uncertainty/structural baselines, which in turn beat
random selection.
"""

import time

import pytest

from conftest import BENCH_DATASETS, BENCH_SCALE, print_table, quick_config, record_bench
from repro import DAAKG, make_benchmark
from repro.active import ActiveLearningConfig, create_strategy
from repro.kg.pair import SplitRatios

STRATEGIES = ["random", "degree", "pagerank", "uncertainty", "activeea", "daakg"]

_RESULTS: dict[str, list] = {}


def _run_strategy(strategy_name: str) -> list:
    if strategy_name in _RESULTS:
        return _RESULTS[strategy_name]
    start = time.perf_counter()
    pair = make_benchmark(
        BENCH_DATASETS[0], scale=BENCH_SCALE, split=SplitRatios(train=0.05, valid=0.05, test=0.9), seed=0
    )
    config = quick_config("transe")
    pipeline = DAAKG(pair, config)
    pipeline.fit()
    loop = pipeline.active_learning(
        strategy=create_strategy(strategy_name),
        config=ActiveLearningConfig(
            batch_size=30,
            num_batches=3,
            fine_tune_epochs=8,
            pool=config.pool,
            inference=config.inference,
        ),
    )
    _RESULTS[strategy_name] = loop.run()
    records = _RESULTS[strategy_name]
    record_bench(
        "fig5",
        wall_time_seconds=time.perf_counter() - start,
        headline={f"{strategy_name}:final_entity_h1": round(records[-1].entity_scores.hits_at_1, 4)},
        detail={f"{strategy_name}:seconds": round(time.perf_counter() - start, 3)},
    )
    return _RESULTS[strategy_name]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig5_active_curve(benchmark, strategy):
    records = benchmark.pedantic(lambda: _run_strategy(strategy), rounds=1, iterations=1)
    rows = [
        [
            record.batch_index,
            record.labels_used,
            f"{record.match_fraction:.2f}",
            f"{record.entity_scores.hits_at_1:.3f}",
            f"{record.entity_scores.f1:.3f}",
        ]
        for record in records
    ]
    print_table(
        f"Figure 5 ({BENCH_DATASETS[0]}, TransE, {strategy})",
        ["Batch", "Labels", "Match frac", "Entity H@1", "Entity F1"],
        rows,
    )
    assert records, "active loop produced no records"
    # Progressive scores must stay valid probabilities.
    for record in records:
        assert 0.0 <= record.entity_scores.hits_at_1 <= 1.0


def test_fig5_daakg_not_worse_than_random():
    """DAAKG's final progressive H@1 should match or beat random selection."""
    daakg = _run_strategy("daakg")[-1].entity_scores.hits_at_1
    random = _run_strategy("random")[-1].entity_scores.hits_at_1
    assert daakg >= random - 0.05
