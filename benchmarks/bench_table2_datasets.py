"""Table 2: dataset statistics.

Regenerates the dataset statistics table (entities, relations, classes and
gold matches per dataset) for the scaled-down synthetic benchmark suite.
"""

from conftest import BENCH_DATASETS, bench_pair, print_table


def _collect_rows() -> list[list]:
    rows = []
    for name in BENCH_DATASETS:
        pair = bench_pair(name)
        summary = pair.summary()
        rows.append(
            [
                name,
                f"{summary['entities_kg1']} vs. {summary['entities_kg2']}",
                f"{summary['relations_kg1']} vs. {summary['relations_kg2']}",
                f"{summary['classes_kg1']} vs. {summary['classes_kg2']}",
                summary["entity_matches"],
                summary["relation_matches"],
                summary["class_matches"],
            ]
        )
    return rows


def test_table2_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_collect_rows, rounds=1, iterations=1)
    print_table(
        "Table 2: dataset statistics",
        ["Dataset", "Entities", "Relations", "Classes", "Ent. matches", "Rel. matches", "Cls. matches"],
        rows,
    )
    assert len(rows) == len(BENCH_DATASETS)
    for row in rows:
        assert row[4] > 0
