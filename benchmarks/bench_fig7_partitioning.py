"""Figure 7: run time and relative inference power of partition-based selection.

Compares Algorithm 1 (greedy selection on exact reachable sets) against
Algorithm 2 (graph-partitioning-based selection) for several values of the
partition threshold ρ, reporting wall-clock time and the relative expected
overall inference power of the selected batch.  The paper's shape: smaller ρ
runs faster at a modest cost in inference power.

Writes ``BENCH_fig7.json`` via the shared conftest harness (headline: greedy
wall time, best partition speedup, worst relative power), so the selection
runtime's trajectory is tracked across PRs like every other benchmark.
"""

import time

from conftest import BENCH_DATASETS, fitted_daakg, print_table, record_bench
from repro.active.partition import PartitionSelectionConfig, partition_select
from repro.active.selection import GreedySelectionConfig, expected_overall_power, greedy_select
from repro.alignment.calibration import AlignmentCalibrator
from repro.kg.elements import ElementKind

RHO_VALUES = [1.0, 0.95, 0.9, 0.85, 0.8]
BATCH_SIZE = 30


def test_fig7_partitioning(benchmark):
    pipeline = fitted_daakg(BENCH_DATASETS[0], "transe")
    pool = pipeline.build_pool()
    graph, estimator = pipeline.build_inference_estimator(pool)
    calibrator = AlignmentCalibrator(pipeline.config.calibration)
    probabilities = {}
    matrices = {
        ElementKind.ENTITY: calibrator.probability_matrix(
            pipeline.model.entity_similarity_matrix(), ElementKind.ENTITY
        ),
        ElementKind.RELATION: calibrator.probability_matrix(
            pipeline.model.relation_similarity_matrix(), ElementKind.RELATION
        ),
        ElementKind.CLASS: calibrator.probability_matrix(
            pipeline.model.class_similarity_matrix(), ElementKind.CLASS
        ),
    }
    for pair in pool.all_pairs:
        matrix = matrices[pair.kind]
        probabilities[pair] = float(matrix[pair.left, pair.right]) if matrix.size else 0.0
    candidates = pool.all_pairs
    selection_config = GreedySelectionConfig(
        batch_size=BATCH_SIZE, power_threshold=estimator.config.power_threshold, candidate_limit=500
    )

    def run() -> list[dict]:
        entries = []
        start = time.perf_counter()
        greedy_batch = greedy_select(candidates, probabilities, estimator.reachable_power,
                                     selection_config, rng=0)
        greedy_time = time.perf_counter() - start
        greedy_power = expected_overall_power(
            greedy_batch, probabilities, estimator.reachable_power,
            power_threshold=estimator.config.power_threshold, rng=0,
        )
        entries.append({"rho": 1.0, "algorithm": "greedy", "seconds": greedy_time,
                        "relative_power": 1.0})
        for rho in RHO_VALUES[1:]:
            start = time.perf_counter()
            batch = partition_select(
                candidates, probabilities, graph, estimator,
                selection_config=selection_config,
                partition_config=PartitionSelectionConfig(rho=rho),
                rng=0,
            )
            elapsed = time.perf_counter() - start
            power = expected_overall_power(
                batch, probabilities, estimator.reachable_power,
                power_threshold=estimator.config.power_threshold, rng=0,
            )
            relative = power / greedy_power if greedy_power > 0 else 1.0
            entries.append({"rho": rho, "algorithm": "partition", "seconds": elapsed,
                            "relative_power": relative})
        return entries

    entries = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Figure 7: selection algorithms ({BENCH_DATASETS[0]}, TransE, B={BATCH_SIZE})",
        ["Algorithm", "Time", "Relative inference power"],
        [
            [
                f"{e['algorithm']} (rho={e['rho']:.2f})",
                f"{e['seconds']:.2f}s",
                f"{e['relative_power']:.3f}",
            ]
            for e in entries
        ],
    )
    greedy_seconds = entries[0]["seconds"]
    partition_entries = entries[1:]
    record_bench(
        "fig7",
        wall_time_seconds=sum(e["seconds"] for e in entries),
        # headline carries the deterministic quality number; raw selection
        # timings live in detail — a single-shot sub-second ratio would make
        # the regression wall gate on timing noise
        headline={
            "greedy_seconds": round(greedy_seconds, 3),
            "worst_relative_power": round(
                min(e["relative_power"] for e in partition_entries), 3
            ),
        },
        detail={
            "batch_size": BATCH_SIZE,
            "dataset": BENCH_DATASETS[0],
            "results": [
                {key: (round(v, 4) if isinstance(v, float) else v) for key, v in e.items()}
                for e in entries
            ],
        },
    )
    relatives = [e["relative_power"] for e in partition_entries]
    assert all(r >= 0.0 for r in relatives)
