"""Incremental end-to-end updates: warm-start retrains vs full retrains.

The incremental-update path's claim: when a drifting KG delivers a delta that
touches one campaign piece, ``PartitionedCampaign.apply_update`` retrains
exactly that piece from its warm-start checkpoint and re-merges — so a batch
of K localised updates costs a fraction of K full retrains, while the merged
quality stays put and the serving layer keeps answering throughout.

Two tracks over the same drifting ``make_large_world_pair`` world (K update
batches, each confined to one partition's community):

* **incremental** — one campaign ingests every delta via ``apply_update``;
* **full retrain** — a fresh campaign is partitioned and trained from
  scratch on each successively-updated pair.

During the incremental track a :class:`ServingFrontend` storm hammers the
service from worker threads while each update trains and the refreshed
campaign is hot-swapped in.

Assertions (always):

* incremental wall-clock ≤ 0.5× the full-retrain track at K=4 batches,
* final |ΔH@1| between the tracks ≤ 0.02,
* the mid-update storm completes with zero errors and zero shed requests
  across every hot-swap.

Writes ``BENCH_update.json`` via the shared conftest harness.
"""

from __future__ import annotations

import threading
import time

import pytest

from conftest import BENCH_SCALE, print_table, record_bench
from repro import DAAKGConfig, KGDelta, PartitionConfig, PartitionedCampaign, serve
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.datasets import make_large_world_pair
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.inference.power import InferencePowerConfig
from repro.kg.pair import SplitRatios

MIN_ENTITIES = 600
NUM_ENTITIES = max(MIN_ENTITIES, int(1500 * BENCH_SCALE))
NUM_PARTITIONS = 4
NUM_UPDATES = 4
ENTITIES_PER_UPDATE = 3
STORM_TOP_K = 5


def world_pair():
    pair = make_large_world_pair(
        NUM_ENTITIES,
        num_relations=10,
        mean_out_degree=5.0,
        seed=0,
        shared_topology=True,
        num_communities=NUM_PARTITIONS,
        inter_community_fraction=0.05,
    )
    pair.split_entity_matches(SplitRatios(train=0.3, valid=0.1, test=0.6), seed=0)
    return pair


def campaign_config() -> DAAKGConfig:
    return DAAKGConfig(
        base_model="transe",
        entity_dim=24,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=3),
        alignment=AlignmentTrainingConfig(
            rounds=2, epochs_per_round=8, num_negatives=6,
            embedding_batches_per_round=2, embedding_batch_size=512,
        ),
        pool=PoolConfig(top_n=15),
        inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
        similarity_backend="sharded",
        seed=0,
    )


def loop_config() -> ActiveLearningConfig:
    return ActiveLearningConfig(batch_size=20, num_batches=1, fine_tune_epochs=4)


def partition_knobs() -> PartitionConfig:
    return PartitionConfig(
        num_partitions=NUM_PARTITIONS, workers=1, executor="serial",
        max_refine_passes=30, balance_slack=0.6,
    )


def build_campaign(pair) -> PartitionedCampaign:
    return PartitionedCampaign(
        pair,
        campaign_config(),
        strategy="uncertainty",
        active_config=loop_config(),
        partition=partition_knobs(),
        resolve_env=False,  # the comparison must not be resharded from outside
    )


def drift_delta(campaign: PartitionedCampaign, step: int) -> KGDelta:
    """One update batch confined to a single partition's community.

    New gold-linked entity pairs anchored inside piece ``step % P``, plus a
    fresh triple between existing entities of that piece — the localised
    drift the membership routing exists for.
    """
    piece = campaign.partition.pieces[step % NUM_PARTITIONS]
    anchors_1 = [n for n in piece.pair.kg1.entities if not n.startswith("lw1:inc")]
    anchors_2 = [n for n in piece.pair.kg2.entities if not n.startswith("lw2:inc")]
    relations_1 = campaign.dataset.kg1.relations
    relations_2 = campaign.dataset.kg2.relations
    new_1, new_2, triples_1, triples_2, links = [], [], [], [], []
    for j in range(ENTITIES_PER_UPDATE):
        a = f"lw1:inc{step}_{j}"
        b = f"lw2:inc{step}_{j}"
        new_1.append(a)
        new_2.append(b)
        anchor_1 = anchors_1[(7 * step + 3 * j) % len(anchors_1)]
        anchor_2 = anchors_2[(7 * step + 3 * j) % len(anchors_2)]
        triples_1.append((a, relations_1[j % len(relations_1)], anchor_1))
        triples_1.append((anchors_1[(7 * step + 3 * j + 1) % len(anchors_1)],
                          relations_1[(j + 1) % len(relations_1)], a))
        triples_2.append((b, relations_2[j % len(relations_2)], anchor_2))
        links.append((a, b))
    return KGDelta(
        added_entities_1=tuple(new_1),
        added_entities_2=tuple(new_2),
        added_triples_1=tuple(triples_1),
        added_triples_2=tuple(triples_2),
        added_gold_links=tuple(links),
    )


class Storm:
    """Open-loop query pressure from worker threads, across hot-swaps."""

    def __init__(self, frontend, uris) -> None:
        self.frontend = frontend
        self.uris = uris
        self.issued = 0
        self.errors: list[str] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._run, args=(i,), daemon=True) for i in range(2)
        ]

    def _run(self, worker: int) -> None:
        position = worker
        while not self._stop.is_set():
            uri = self.uris[position % len(self.uris)]
            position += len(self._threads)
            try:
                answer = self.frontend.submit_top_k(
                    uri, k=STORM_TOP_K, deadline_ms=30_000.0
                ).result(timeout=30.0)
                if len(answer) != STORM_TOP_K:
                    raise RuntimeError(f"short answer for {uri!r}: {len(answer)}")
                with self._lock:
                    self.issued += 1
            except Exception as exc:  # noqa: BLE001 - every failure is a finding
                with self._lock:
                    self.errors.append(f"{type(exc).__name__}: {exc}")
                    self.issued += 1
            time.sleep(0.002)

    def __enter__(self) -> "Storm":
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=60.0)


@pytest.fixture(scope="module")
def update_results():
    from repro.serving import FrontendConfig

    results: dict = {}

    # ---------------------------------------------------------- incremental
    incremental = build_campaign(world_pair())
    start = time.perf_counter()
    incremental.run()
    baseline_seconds = time.perf_counter() - start

    deltas: list[KGDelta] = []
    update_seconds: list[float] = []
    touched: list[tuple[int, ...]] = []
    frontend = serve(
        incremental,
        frontend=FrontendConfig(
            num_workers=2, max_queue_depth=8192, default_deadline_ms=30_000.0
        ),
    )
    service = frontend.service
    storm_uris = list(world_pair().kg1.entities[: max(32, NUM_ENTITIES // 16)])
    try:
        with Storm(frontend, storm_uris) as storm:
            for step in range(NUM_UPDATES):
                delta = drift_delta(incremental, step)
                deltas.append(delta)
                start = time.perf_counter()
                report = incremental.apply_update(delta)
                update_seconds.append(time.perf_counter() - start)
                touched.append(report.touched)
                # zero-downtime refresh: queries keep resolving against the
                # old snapshot until the single reference assignment
                service.hot_swap(incremental)
        frontend.drain()
        stats = frontend.stats()
    finally:
        frontend.stop()
    results["incremental"] = {
        "baseline_seconds": baseline_seconds,
        "update_seconds": update_seconds,
        "touched": touched,
        "h1": incremental.evaluate()["entity"].hits_at_1,
        "storm_issued": storm.issued,
        "storm_errors": storm.errors,
        "storm_shed": stats["shed_total"],
        "num_entities": incremental.dataset.kg1.num_entities,
    }

    # --------------------------------------------------------- full retrain
    pair = world_pair()
    retrain_seconds: list[float] = []
    full = None
    for delta in deltas:
        pair = pair.apply_delta(delta)
        full = build_campaign(pair)
        start = time.perf_counter()
        full.run()
        retrain_seconds.append(time.perf_counter() - start)
    results["full"] = {
        "retrain_seconds": retrain_seconds,
        "h1": full.evaluate()["entity"].hits_at_1,
    }
    return results


def test_bench_incremental_update(update_results):
    incremental = update_results["incremental"]
    full = update_results["full"]
    incremental_total = sum(incremental["update_seconds"])
    full_total = sum(full["retrain_seconds"])
    ratio = incremental_total / full_total
    h1_delta = incremental["h1"] - full["h1"]

    rows = []
    for step in range(NUM_UPDATES):
        rows.append(
            [
                f"update {step}",
                str(list(incremental["touched"][step])),
                f"{incremental['update_seconds'][step]:.2f}s",
                f"{full['retrain_seconds'][step]:.2f}s",
            ]
        )
    rows.append(["total", "-", f"{incremental_total:.2f}s", f"{full_total:.2f}s"])
    print_table(
        f"Incremental updates ({NUM_ENTITIES}+ entities/side, {NUM_PARTITIONS} "
        f"partitions, {NUM_UPDATES} update batches)",
        ["batch", "touched pieces", "incremental", "full retrain"],
        rows,
    )

    record_bench(
        "update",
        wall_time_seconds=incremental["baseline_seconds"] + incremental_total + full_total,
        headline={
            "incremental_over_full_ratio": round(ratio, 3),
            "incremental_seconds": round(incremental_total, 2),
            "full_retrain_seconds": round(full_total, 2),
            "h1_incremental": round(incremental["h1"], 4),
            "h1_full_retrain": round(full["h1"], 4),
            "h1_delta": round(h1_delta, 4),
            "storm_requests": incremental["storm_issued"],
            "storm_errors": len(incremental["storm_errors"]),
            "storm_shed": int(incremental["storm_shed"]),
        },
        detail={
            "num_entities_start": NUM_ENTITIES,
            "num_entities_end": incremental["num_entities"],
            "num_partitions": NUM_PARTITIONS,
            "num_updates": NUM_UPDATES,
            "entities_per_update": ENTITIES_PER_UPDATE,
            "touched_per_update": [list(t) for t in incremental["touched"]],
            "update_seconds": [round(s, 3) for s in incremental["update_seconds"]],
            "retrain_seconds": [round(s, 3) for s in full["retrain_seconds"]],
            "baseline_seconds": round(incremental["baseline_seconds"], 2),
        },
    )

    # each localised delta must touch exactly one piece
    assert all(len(t) == 1 for t in incremental["touched"])
    assert ratio <= 0.5, f"incremental updates not cheap enough: {ratio:.2f}x full retrain"
    assert abs(h1_delta) <= 0.02, f"incremental quality drifted: ΔH@1 {h1_delta:+.4f}"
    assert incremental["storm_errors"] == [], incremental["storm_errors"][:5]
    assert incremental["storm_shed"] == 0
    assert incremental["storm_issued"] > 0
