#!/usr/bin/env python
"""Benchmark regression wall: diff fresh ``BENCH_*.json`` against baselines.

CI produces every ``BENCH_<name>.json`` artifact on each run; this script
compares them headline-by-headline against the committed baselines and fails
(exit code 1) when:

* total ``wall_time_seconds`` regresses by more than ``--max-wall-ratio``
  (default 1.2, i.e. >20% slower) — tiny baselines below
  ``--min-wall-seconds`` are exempt, their noise exceeds any honest signal;
* any ``recall*`` headline metric drops **at all** — recall floors are
  contractual (the ANN backend calibrates against them), so they gate
  strictly with no epsilon;
* any other *accuracy-like* headline metric (H@1/MRR/F1/precision/speedup/
  power/…, where higher is better) drops by more than
  ``--accuracy-epsilon``;
* a boolean headline invariant flips from true to false.

A fresh artifact with no committed baseline (e.g. a PR that adds a new
benchmark, or baselines predating ``BENCH_ann.json``) is tolerated with a
loud WARN rather than a failure — commit the fresh artifact to adopt it.

Time-like headline metrics (``*_seconds``, ``*_mb``, latencies) are reported
for context but only the benchmark's total wall time gates, keeping the wall
strict on correctness and honest about machine-speed noise.  Artifacts whose
``scale`` / ``datasets`` / ``executor`` stamps differ from the baseline
**fail** — the numbers would not be comparable, and silently skipping would
let a PR dodge the wall by changing the benchmark's configuration;
regenerate and commit the baseline instead.  (Baselines written before the
``executor`` stamp existed are compared without it.)

A markdown summary is always written (``--markdown -`` for stdout; CI
appends it to ``$GITHUB_STEP_SUMMARY``).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

# Recall floors gate strictly: the ANN backend calibrates its probe width
# against a configured recall floor, so any drop is a contract violation,
# not noise (values are deterministic — seeded data, seeded index).
RECALL_FLOOR_MARKERS = ("recall",)
ACCURACY_MARKERS = (
    "h@", "h1", "h10", "hits", "mrr", "f1", "precision", "accuracy",
    "power", "identical",
)
# Performance ratios (higher is better) depend on machine speed, so they get
# the same relative budget as wall-clock rather than the accuracy epsilon.
PERF_RATIO_MARKERS = ("speedup", "qps", "reduction")
TIME_MARKERS = ("seconds", "_s", "ms", "p50", "p99", "latency", "mb", "growth")


def classify(key: str) -> str:
    lowered = key.lower()
    # signed differences (e.g. h1_delta = merged - monolithic) have no
    # higher-is-better direction; the producing benchmark bounds |delta|
    if "delta" in lowered:
        return "informational"
    if any(marker in lowered for marker in RECALL_FLOOR_MARKERS):
        return "recall_floor"
    if any(marker in lowered for marker in ACCURACY_MARKERS):
        return "higher_better"
    if any(marker in lowered for marker in PERF_RATIO_MARKERS):
        return "perf_ratio"
    if any(marker in lowered for marker in TIME_MARKERS):
        return "time_like"
    return "informational"


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _host_summary(entry: dict) -> str:
    """One-line host stamp for the report, tolerant of pre-stamp artifacts."""
    host = entry.get("host")
    if not isinstance(host, dict):
        return "(unstamped)"
    cpus = host.get("cpu_count", "?")
    machine = host.get("machine", "?")
    return f"{cpus} cpus / {machine}"


def compare_artifact(name: str, baseline: dict, fresh: dict, args) -> tuple[list, list]:
    """Returns (markdown rows, failure strings) for one benchmark."""
    rows: list[list[str]] = []
    failures: list[str] = []

    if baseline.get("scale") != fresh.get("scale") or baseline.get("datasets") != fresh.get(
        "datasets"
    ):
        # a mismatch means the benchmark's configuration changed under the
        # baseline; skipping here would let a regressing PR bypass the wall
        # by also touching the scale stamp, so it fails until the baseline
        # is regenerated at the new configuration
        rows.append(
            [
                name,
                "(config)",
                f"scale={baseline.get('scale')}",
                f"scale={fresh.get('scale')}",
                "",
                "FAIL: scale/datasets changed — regenerate the baseline",
            ]
        )
        failures.append(
            f"{name}: benchmark scale/datasets differ from the committed baseline "
            "(regenerate and commit BENCH_*.json)"
        )
        return rows, failures

    # wall-clock is only comparable between runs on the same campaign
    # executor backend; tolerate baselines predating the stamp
    base_executor = baseline.get("executor")
    fresh_executor = fresh.get("executor")
    if (
        base_executor is not None
        and fresh_executor is not None
        and base_executor != fresh_executor
    ):
        rows.append(
            [
                name,
                "(config)",
                f"executor={base_executor}",
                f"executor={fresh_executor}",
                "",
                "FAIL: executor changed — regenerate the baseline",
            ]
        )
        failures.append(
            f"{name}: campaign executor differs from the committed baseline "
            f"({base_executor!r} vs {fresh_executor!r}); wall-clock is not "
            "comparable — regenerate and commit BENCH_*.json"
        )
        return rows, failures

    # host context (cpu count, platform) is printed but never gates: it
    # explains wall-clock drift between machines, it does not excuse it.
    # Baselines predating the stamp simply show "(unstamped)".
    base_host = _host_summary(baseline)
    fresh_host = _host_summary(fresh)
    if base_host != fresh_host:
        rows.append([name, "(host)", base_host, fresh_host, "", "info: hosts differ"])

    base_wall = float(baseline.get("wall_time_seconds", 0.0))
    fresh_wall = float(fresh.get("wall_time_seconds", 0.0))
    if base_wall >= args.min_wall_seconds:
        ratio = fresh_wall / base_wall if base_wall > 0 else 1.0
        status = "ok"
        if ratio > args.max_wall_ratio:
            status = f"FAIL: {ratio:.2f}x > {args.max_wall_ratio:.2f}x budget"
            failures.append(
                f"{name}: wall time regressed {base_wall:.2f}s -> {fresh_wall:.2f}s "
                f"({ratio:.2f}x)"
            )
        rows.append(
            [
                name,
                "wall_time_seconds",
                f"{base_wall:.2f}",
                f"{fresh_wall:.2f}",
                f"{ratio:.2f}x",
                status,
            ]
        )
    else:
        rows.append(
            [
                name,
                "wall_time_seconds",
                f"{base_wall:.2f}",
                f"{fresh_wall:.2f}",
                "",
                "ok (below gating floor)",
            ]
        )

    base_head = baseline.get("headline", {})
    fresh_head = fresh.get("headline", {})
    for key in sorted(base_head):
        if key not in fresh_head:
            rows.append([name, key, str(base_head[key]), "(missing)", "", "FAIL: metric gone"])
            failures.append(f"{name}: headline metric {key!r} disappeared")
            continue
        base_value, fresh_value = base_head[key], fresh_head[key]
        kind = classify(key)
        if isinstance(base_value, bool) or isinstance(fresh_value, bool):
            status = "ok"
            if bool(base_value) and not bool(fresh_value):
                status = "FAIL: invariant flipped"
                failures.append(f"{name}: boolean invariant {key!r} flipped to false")
            rows.append([name, key, str(base_value), str(fresh_value), "", status])
            continue
        if not isinstance(base_value, (int, float)) or not isinstance(
            fresh_value, (int, float)
        ):
            rows.append([name, key, str(base_value), str(fresh_value), "", "info"])
            continue
        delta = float(fresh_value) - float(base_value)
        if kind == "recall_floor":
            status = "ok"
            if delta < 0:
                status = "FAIL: recall dropped (strict floor)"
                failures.append(
                    f"{name}: {key} dropped {base_value} -> {fresh_value} "
                    "(recall metrics gate strictly: any drop fails)"
                )
            rows.append([name, key, str(base_value), str(fresh_value), f"{delta:+.4g}", status])
        elif kind == "higher_better":
            status = "ok"
            if delta < -args.accuracy_epsilon:
                status = "FAIL: accuracy regression"
                failures.append(
                    f"{name}: {key} regressed {base_value} -> {fresh_value} ({delta:+.4f})"
                )
            rows.append([name, key, str(base_value), str(fresh_value), f"{delta:+.4g}", status])
        elif kind == "perf_ratio":
            status = "ok"
            floor = float(base_value) / args.max_wall_ratio
            if float(base_value) > 0 and float(fresh_value) < floor:
                status = f"FAIL: dropped beyond 1/{args.max_wall_ratio:.2f} budget"
                failures.append(
                    f"{name}: {key} dropped {base_value} -> {fresh_value} "
                    f"(beyond the {args.max_wall_ratio:.2f}x relative budget)"
                )
            rows.append([name, key, str(base_value), str(fresh_value), f"{delta:+.4g}", status])
        else:
            rows.append([name, key, str(base_value), str(fresh_value), f"{delta:+.4g}", "info"])
    return rows, failures


def render_markdown(rows: list[list[str]], failures: list[str]) -> str:
    lines = ["## Benchmark regression wall", ""]
    if failures:
        lines.append(f"**{len(failures)} regression(s) detected:**")
        lines.extend(f"- {failure}" for failure in failures)
    else:
        lines.append("All benchmarks within budget.")
    lines += [
        "",
        "| benchmark | metric | baseline | fresh | delta | status |",
        "|---|---|---|---|---|---|",
    ]
    lines.extend("| " + " | ".join(str(cell) for cell in row) + " |" for row in rows)
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="bench-baseline", help="directory of committed artifacts"
    )
    parser.add_argument("--fresh", default=".", help="directory of freshly produced artifacts")
    parser.add_argument("--max-wall-ratio", type=float, default=1.2)
    parser.add_argument("--min-wall-seconds", type=float, default=0.5)
    parser.add_argument("--accuracy-epsilon", type=float, default=1e-6)
    parser.add_argument("--markdown", default="-", help="markdown summary path ('-' = stdout)")
    args = parser.parse_args(argv)

    baselines = sorted(glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not baselines:
        print(f"no baseline artifacts under {args.baseline!r}", file=sys.stderr)
        return 2

    all_rows: list[list[str]] = []
    all_failures: list[str] = []
    for baseline_path in baselines:
        name = os.path.basename(baseline_path)[len("BENCH_") : -len(".json")]
        fresh_path = os.path.join(args.fresh, os.path.basename(baseline_path))
        if not os.path.isfile(fresh_path):
            all_rows.append([name, "(artifact)", "present", "missing", "", "FAIL: not produced"])
            all_failures.append(f"{name}: fresh artifact missing ({fresh_path})")
            continue
        rows, failures = compare_artifact(name, load(baseline_path), load(fresh_path), args)
        all_rows.extend(rows)
        all_failures.extend(failures)

    # a fresh artifact without a committed baseline is ungated — surface it
    # loudly so the wall grows with the benchmark suite instead of silently
    # excluding newcomers (commit the fresh artifact to adopt it as baseline)
    known = {os.path.basename(path) for path in baselines}
    for fresh_path in sorted(glob.glob(os.path.join(args.fresh, "BENCH_*.json"))):
        basename = os.path.basename(fresh_path)
        if basename not in known:
            name = basename[len("BENCH_") : -len(".json")]
            all_rows.append(
                [name, "(artifact)", "missing", "present", "", "WARN: no baseline committed"]
            )

    markdown = render_markdown(all_rows, all_failures)
    if args.markdown == "-":
        print(markdown)
    else:
        with open(args.markdown, "a", encoding="utf-8") as handle:
            handle.write(markdown)
        print(markdown)
    return 1 if all_failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
