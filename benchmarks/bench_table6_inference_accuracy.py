"""Table 6: accuracy of the inference power measurement.

For each base embedding model, takes the labelled training matches, computes
the element pairs whose inference power from those labels exceeds the
threshold κ, and measures which fraction of them are true matches.  The
paper's shape: the measurement is accurate (≳0.75), and TransE — whose tail
bound is exact — is the most accurate, with the sampled-bound models behind.
"""

import time

import pytest

from conftest import BENCH_DATASETS, fitted_daakg, print_table, record_bench
from repro.inference.pairs import ElementPair
from repro.inference.power import inference_accuracy
from repro.kg.elements import ElementKind

MODELS = ["transe", "rotate", "compgcn"]

_RESULTS: dict[str, float] = {}


def _accuracy(base_model: str) -> float:
    if base_model in _RESULTS:
        return _RESULTS[base_model]
    start = time.perf_counter()
    pipeline = fitted_daakg(BENCH_DATASETS[0], base_model)
    pool = pipeline.build_pool()
    graph, estimator = pipeline.build_inference_estimator(pool)
    labelled = [
        ElementPair(ElementKind.ENTITY, left, right)
        for left, right in pipeline.trainer.labels.matches[ElementKind.ENTITY]
    ]
    gold = {
        ElementKind.ENTITY: {tuple(r) for r in pipeline.pair.entity_match_ids().tolist()},
        ElementKind.RELATION: {tuple(r) for r in pipeline.pair.relation_match_ids().tolist()},
        ElementKind.CLASS: {tuple(r) for r in pipeline.pair.class_match_ids().tolist()},
    }
    _RESULTS[base_model] = inference_accuracy(estimator, labelled, gold)
    record_bench(
        "table6",
        wall_time_seconds=time.perf_counter() - start,
        headline={f"{base_model}:accuracy": round(_RESULTS[base_model], 4)},
    )
    return _RESULTS[base_model]


@pytest.mark.parametrize("base_model", MODELS)
def test_table6_inference_accuracy(benchmark, base_model):
    accuracy = benchmark.pedantic(lambda: _accuracy(base_model), rounds=1, iterations=1)
    print_table(
        f"Table 6: inference power accuracy ({BENCH_DATASETS[0]})",
        ["Model", "Accuracy"],
        [[base_model, f"{accuracy:.3f}"]],
    )
    assert 0.0 <= accuracy <= 1.0


def test_table6_transe_bound_is_competitive():
    """TransE's exact bound should be at least as accurate as CompGCN's sampled bound."""
    assert _accuracy("transe") >= _accuracy("compgcn") - 0.1
