"""Serving benchmark: query throughput, latency percentiles and fold-in cost.

Freezes a fitted DAAKG pipeline into an :class:`AlignmentService` (through a
real checkpoint round-trip, so the measured path is the production one),
then measures:

* single-query top-k latency (p50 / p99) and queries/sec — quantiles are
  read from the service's own request histogram (``service.metrics()``)
  rather than an external stopwatch list, so the benchmark exercises the
  same telemetry surface operators see in production,
* micro-batched throughput at the service's ``max_batch``,
* ``score_pairs`` throughput,
* incremental fold-in latency versus a full similarity-matrix recompute —
  the whole point of fold-in is that appending one row/column is orders of
  magnitude cheaper than rebuilding the ``|E1| × |E2|`` state.

``test_serving_frontend_under_load`` then puts the concurrent
:class:`ServingFrontend` dispatcher in front of the same service and
measures what the caller-driven numbers above cannot show:

* closed-loop dispatcher throughput versus the single-thread baseline
  (multiple submitter threads sharing the worker pool's batches),
* an **open-loop Poisson sweep** at 0.25× / 0.5× / 1× / 2× of the measured
  closed-loop capacity — arrivals are generated on a wall-clock schedule
  whether or not the service keeps up, which is what separates a saturation
  curve from a closed-loop average: p50/p99 end-to-end latency and shed
  rate per arrival-rate point,
* a sustained query storm across two hot-swaps and a fold-in — the
  zero-downtime claim measured rather than asserted.

Both tests record into ``BENCH_serving.json`` via the shared
``record_bench`` hook (headline dicts merge across calls).
"""

import gc
import os
import threading
import time

import numpy as np

from conftest import BENCH_DATASETS, fitted_daakg, print_table, record_bench
from repro.updates import KGDelta
from repro.serving import (
    AlignmentService,
    BackpressureError,
    FrontendConfig,
    ServingFrontend,
)
from repro.serving.service import ServingSnapshot

NUM_SINGLE_QUERIES = 400
NUM_BATCHED_QUERIES = 2000
NUM_SCORE_PAIRS = 2000
FOLD_REPEATS = 5

# ---- frontend-under-load phases
NUM_BASELINE_QUERIES = 3000  # single-thread closed-loop reference
NUM_DISPATCHED_QUERIES = 16000  # dispatcher closed-loop, across submitters
NUM_SUBMITTERS = 4
SUBMIT_WINDOW = 256  # tickets in flight per submitter before collecting
OPEN_LOOP_MULTIPLIERS = (0.25, 0.5, 1.0, 2.0)
OPEN_LOOP_SECONDS = 0.8  # per arrival-rate point
OPEN_LOOP_PROBE_SECONDS = 0.5  # capacity-calibration point (deliberately saturated)
OPEN_LOOP_BIN_SECONDS = 0.002  # Poisson arrivals are drawn per wall-clock bin
OPEN_LOOP_QUEUE_DEPTH = 1024
OPEN_LOOP_DEADLINE_MS = 50.0
P99_BUDGET_MS = 25.0  # tail-latency budget at the 0.5x operating point
STORM_SECONDS = 0.75


def _gc_paused_call(fn):
    """Run ``fn`` with the cyclic GC paused (collect first, re-enable after).

    By this point the session holds millions of live objects (fitted
    pipelines, similarity matrices), and the load phases allocate hundreds
    of thousands of tickets and result tuples — enough to trigger gen-2
    collections whose ~100 ms stop-the-world pauses read as worker stalls
    and artificial shedding.  Tickets and results are acyclic, so plain
    refcounting reclaims everything while the collector is off.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        return fn()
    finally:
        if was_enabled:
            gc.enable()


def test_serving_throughput(benchmark, tmp_path):
    dataset = BENCH_DATASETS[0]
    pipeline = fitted_daakg(dataset, "transe")
    checkpoint = tmp_path / "serving-ckpt"
    save_start = time.perf_counter()
    pipeline.save(checkpoint)
    save_seconds = time.perf_counter() - save_start

    load_start = time.perf_counter()
    service = AlignmentService.from_checkpoint(checkpoint, max_batch=64, cache_size=0)
    load_seconds = time.perf_counter() - load_start

    kg1, kg2 = pipeline.kg1, pipeline.kg2
    rng = np.random.default_rng(0)
    uris = [kg1.entities[i] for i in rng.integers(0, kg1.num_entities, NUM_SINGLE_QUERIES)]

    def run() -> dict:
        # Throughput phases take the best of three rounds: each round is a
        # few tens of milliseconds, so a single host-level stall (CPU steal
        # on a shared box, a gen-2 GC pause) inside one round would otherwise
        # swamp the thing being measured.
        # -------- single queries (cache off → every query pays the gather).
        # Latency quantiles come from the service's own request histogram,
        # captured *before* the batched phase folds its (per-batch, not
        # per-query) observations into the same instrument.
        single_times = []
        for _ in range(3):
            start = time.perf_counter()
            for uri in uris:
                service.top_k_alignments([uri], k=10)
            single_times.append(time.perf_counter() - start)
        single_seconds = min(single_times)
        single_metrics = service.metrics()

        # -------- micro-batched queries
        batch_uris = [
            kg1.entities[i]
            for i in rng.integers(0, kg1.num_entities, NUM_BATCHED_QUERIES)
        ]
        batched_times = []
        for _ in range(3):
            start = time.perf_counter()
            tickets = [service.enqueue_top_k(uri, k=10) for uri in batch_uris]
            service.flush()
            batched_times.append(time.perf_counter() - start)
            assert all(t.ready for t in tickets)
        batched_seconds = min(batched_times)

        # -------- pair scoring
        pairs = [
            (kg1.entities[i], kg2.entities[j])
            for i, j in zip(
                rng.integers(0, kg1.num_entities, NUM_SCORE_PAIRS),
                rng.integers(0, kg2.num_entities, NUM_SCORE_PAIRS),
            )
        ]
        start = time.perf_counter()
        service.score_pairs(pairs)
        score_seconds = time.perf_counter() - start

        # -------- fold-in vs full similarity-state recompute.  The recompute
        # baseline is what serving a new entity costs *without* fold-in:
        # refresh the statistics snapshot, rebuild the similarity matrices
        # and re-freeze the serving arrays.
        victim = max(range(kg2.num_entities), key=kg2.entity_degree)
        fold_times = []
        for repeat in range(FOLD_REPEATS):
            triples = [
                (f"bench:new{repeat}", kg2.relations[r], kg2.entities[t])
                for r, t in kg2.out_edges(victim)[:8]
            ]
            delta = KGDelta.single_entity(f"bench:new{repeat}", triples)
            fold_times.append(service.apply_delta(delta)[0].seconds)
        engine = pipeline.model.similarity
        recompute_times = []
        for _ in range(3):
            engine.invalidate()
            start = time.perf_counter()
            pipeline.model.refresh_statistics()
            ServingSnapshot.from_pipeline(pipeline)
            recompute_times.append(time.perf_counter() - start)

        return {
            "single_seconds": single_seconds,
            "single_metrics": single_metrics,
            "batched_seconds": batched_seconds,
            "score_seconds": score_seconds,
            "fold_seconds": min(fold_times),
            "recompute_seconds": min(recompute_times),
        }

    result = benchmark.pedantic(lambda: _gc_paused_call(run), rounds=1, iterations=1)

    single_qps = NUM_SINGLE_QUERIES / result["single_seconds"]
    batched_qps = NUM_BATCHED_QUERIES / result["batched_seconds"]
    score_qps = NUM_SCORE_PAIRS / result["score_seconds"]
    metrics = result["single_metrics"]
    assert metrics["requests_total"] == 3 * NUM_SINGLE_QUERIES  # three rounds
    p50 = metrics["p50_latency_ms"]
    p99 = metrics["p99_latency_ms"]
    fold_ms = result["fold_seconds"] * 1e3
    recompute_ms = result["recompute_seconds"] * 1e3
    speedup = result["recompute_seconds"] / max(result["fold_seconds"], 1e-12)

    rows = [
        ["top-k single queries/sec", f"{single_qps:,.0f}"],
        ["top-k p50 latency", f"{p50:.3f} ms"],
        ["top-k p99 latency", f"{p99:.3f} ms"],
        ["top-k micro-batched queries/sec", f"{batched_qps:,.0f}"],
        ["score_pairs pairs/sec", f"{score_qps:,.0f}"],
        ["fold-in latency", f"{fold_ms:.3f} ms"],
        ["full similarity-state rebuild", f"{recompute_ms:.3f} ms"],
        ["fold-in speedup", f"{speedup:,.1f}x"],
        ["checkpoint save", f"{save_seconds:.3f} s"],
        ["checkpoint load + freeze", f"{load_seconds:.3f} s"],
    ]
    print_table(f"Serving throughput ({dataset})", ["Metric", "Value"], rows)
    record_bench(
        "serving",
        wall_time_seconds=result["single_seconds"]
        + result["batched_seconds"]
        + result["score_seconds"],
        headline={
            "single_queries_per_sec": round(single_qps, 1),
            "batched_queries_per_sec": round(batched_qps, 1),
            "score_pairs_per_sec": round(score_qps, 1),
            "p50_latency_ms": round(p50, 4),
            "p99_latency_ms": round(p99, 4),
            "fold_in_ms": round(fold_ms, 4),
            "full_recompute_ms": round(recompute_ms, 4),
            "fold_in_speedup": round(speedup, 1),
        },
        detail={
            "checkpoint_save_seconds": round(save_seconds, 4),
            "checkpoint_load_seconds": round(load_seconds, 4),
            "entities": [pipeline.kg1.num_entities, pipeline.kg2.num_entities],
        },
    )
    # Fold-in exists to avoid the full recompute; it must be at least an
    # order of magnitude cheaper (acceptance criterion of the subsystem).
    assert speedup >= 10.0, f"fold-in only {speedup:.1f}x cheaper than recompute"
    # micro-batching must beat the single-query path
    assert batched_qps > single_qps


def _closed_loop_submitter(frontend, uris, counts):
    """Submit ``uris`` in windows, collecting each window before the next."""
    done = 0
    for start in range(0, len(uris), SUBMIT_WINDOW):
        window = [
            frontend.submit_top_k(uri, k=10) for uri in uris[start : start + SUBMIT_WINDOW]
        ]
        for ticket in window:
            ticket.result(timeout=60)
        done += len(window)
    counts.append(done)


def _open_loop_point(service, kg1, workers, target_rate, multiplier, seconds):
    """One open-loop arrival-rate point: Poisson arrivals on a wall clock.

    Arrivals are pre-drawn per ``OPEN_LOOP_BIN_SECONDS`` bin (per-request
    sleeps cannot pace tens of thousands of arrivals per second from
    Python); the generator submits each bin's arrivals then sleeps to the
    next bin edge.  Past saturation the generator simply stops sleeping —
    the load stays open-loop: arrivals do not slow down because the queue
    is full, they get shed.
    """
    frontend = ServingFrontend(
        service,
        FrontendConfig(
            num_workers=workers,
            max_queue_depth=OPEN_LOOP_QUEUE_DEPTH,
            default_deadline_ms=OPEN_LOOP_DEADLINE_MS,
        ),
        resolve_env=False,
    )
    rng = np.random.default_rng(int(multiplier * 1000))
    num_bins = int(seconds / OPEN_LOOP_BIN_SECONDS)
    arrivals = rng.poisson(target_rate * OPEN_LOOP_BIN_SECONDS, num_bins)
    uri_ids = rng.integers(0, kg1.num_entities, int(arrivals.sum()))
    uris = [kg1.entities[i] for i in uri_ids]
    admitted, shed = [], 0
    position = 0
    with frontend:
        start = time.perf_counter()
        for bin_index, count in enumerate(arrivals):
            for _ in range(count):
                try:
                    admitted.append(frontend.submit_top_k(uris[position], k=10))
                except BackpressureError:
                    shed += 1
                position += 1
            pause = start + (bin_index + 1) * OPEN_LOOP_BIN_SECONDS - time.perf_counter()
            if pause > 0:
                time.sleep(pause)
        assert frontend.drain(timeout=120)
        elapsed = time.perf_counter() - start
    latencies_ms = (
        np.array([t.completed_at - t.submitted_at for t in admitted]) * 1e3
        if admitted
        else np.zeros(1)
    )
    return {
        "rate_multiplier": multiplier,
        "target_rate_per_sec": round(target_rate, 1),
        "offered": int(position),
        "admitted": len(admitted),
        "shed": int(shed),
        "errors": sum(1 for t in admitted if t.error is not None),
        "p50_ms": round(float(np.percentile(latencies_ms, 50)), 4),
        "p99_ms": round(float(np.percentile(latencies_ms, 99)), 4),
        "peak_queue_depth": frontend.stats()["peak_queue_depth"],
        "elapsed_seconds": round(elapsed, 4),
    }


def test_serving_frontend_under_load(benchmark):
    dataset = BENCH_DATASETS[0]
    pipeline = fitted_daakg(dataset, "transe")
    kg1, kg2 = pipeline.kg1, pipeline.kg2
    workers = min(4, os.cpu_count() or 1)
    rng = np.random.default_rng(1)

    def run() -> dict:
        service = AlignmentService.from_pipeline(pipeline, max_batch=64, cache_size=0)

        # -------- single-thread closed-loop baseline (direct calls)
        base_uris = [
            kg1.entities[i]
            for i in rng.integers(0, kg1.num_entities, NUM_BASELINE_QUERIES)
        ]
        start = time.perf_counter()
        for uri in base_uris:
            service.top_k_alignments([uri], k=10)
        single_seconds = time.perf_counter() - start

        # -------- dispatcher closed loop: concurrent submitters, shared batches
        disp_uris = [
            kg1.entities[i]
            for i in rng.integers(0, kg1.num_entities, NUM_DISPATCHED_QUERIES)
        ]
        frontend = ServingFrontend(
            service,
            FrontendConfig(num_workers=workers, max_queue_depth=4096, default_deadline_ms=50),
            resolve_env=False,
        )
        counts: list[int] = []
        with frontend:
            start = time.perf_counter()
            submitters = [
                threading.Thread(
                    target=_closed_loop_submitter,
                    args=(frontend, disp_uris[index::NUM_SUBMITTERS], counts),
                )
                for index in range(NUM_SUBMITTERS)
            ]
            for thread in submitters:
                thread.start()
            for thread in submitters:
                thread.join()
            dispatcher_seconds = time.perf_counter() - start
        assert sum(counts) == NUM_DISPATCHED_QUERIES
        dispatcher_qps = NUM_DISPATCHED_QUERIES / dispatcher_seconds

        # -------- open-loop capacity calibration.  Closed-loop throughput
        # overestimates what open-loop arrivals can be served at: closed-loop
        # submitters sleep while waiting, whereas an open-loop generator
        # burns CPU on its own wall-clock schedule.  A deliberately saturated
        # probe measures the *serviceable* rate with generation cost
        # included; the sweep multipliers are relative to that.
        probe = _open_loop_point(
            service, kg1, workers, dispatcher_qps * 1.5, 1.5, OPEN_LOOP_PROBE_SECONDS
        )
        open_capacity = probe["admitted"] / probe["elapsed_seconds"]

        # -------- open-loop Poisson sweep against the calibrated capacity.
        # Each point retries (bounded) if its health criterion is wrecked:
        # a multi-10ms host stall (CPU steal, noisy neighbour) during one
        # 0.8 s window sheds requests the *system under test* would have
        # served.  The criteria themselves are asserted once, after the
        # sweep — retries only filter out host interference, they cannot
        # turn a genuinely failing system into a passing one three times.
        def healthy(point) -> bool:
            multiplier = point["rate_multiplier"]
            if multiplier <= 0.5:
                return point["shed"] == 0 and point["p99_ms"] <= P99_BUDGET_MS
            if multiplier >= 2.0:
                return point["shed"] > 0
            return True

        sweep = []
        for multiplier in OPEN_LOOP_MULTIPLIERS:
            for attempt in range(3):
                point = _open_loop_point(
                    service, kg1, workers, open_capacity * multiplier, multiplier,
                    OPEN_LOOP_SECONDS,
                )
                point["attempts"] = attempt + 1
                if healthy(point):
                    break
            sweep.append(point)

        # -------- hot-swap + fold-in under a sustained closed-loop storm
        storm_service = AlignmentService.from_pipeline(
            pipeline, max_batch=64, cache_size=4096
        )
        storm_frontend = ServingFrontend(
            storm_service,
            FrontendConfig(num_workers=workers, max_queue_depth=4096, default_deadline_ms=25),
            resolve_env=False,
        )
        errors: list[Exception] = []
        latencies: list[float] = []
        stop = threading.Event()

        def storm(seed: int) -> None:
            storm_rng = np.random.default_rng(seed)
            local: list[float] = []
            while not stop.is_set():
                window = [
                    storm_frontend.submit_top_k(kg1.entities[i], k=10)
                    for i in storm_rng.integers(0, kg1.num_entities, 64)
                ]
                for ticket in window:
                    try:
                        ticket.result(timeout=30)
                        local.append(ticket.completed_at - ticket.submitted_at)
                    except Exception as exc:  # noqa: BLE001 - tallied below
                        errors.append(exc)
            latencies.extend(local)

        tokens = {storm_service.state_token}
        quarter = STORM_SECONDS / 4
        with storm_frontend:
            storm_threads = [
                threading.Thread(target=storm, args=(seed,)) for seed in range(3)
            ]
            for thread in storm_threads:
                thread.start()
            time.sleep(quarter)
            tokens.add(storm_service.hot_swap(pipeline))
            time.sleep(quarter)
            tokens.add(storm_service.hot_swap(pipeline))
            time.sleep(quarter)
            victim = max(range(kg2.num_entities), key=kg2.entity_degree)
            triples = [
                ("bench:storm", kg2.relations[r], kg2.entities[t])
                for r, t in kg2.out_edges(victim)[:8]
            ]
            storm_delta = KGDelta.single_entity("bench:storm", triples)
            tokens.add(storm_service.apply_delta(storm_delta)[0].token)
            time.sleep(quarter)
            stop.set()
            for thread in storm_threads:
                thread.join()
            assert storm_frontend.drain(timeout=60)
        cached_tokens = {key[0] for key in storm_service._cache}
        storm_lat_ms = np.array(latencies) * 1e3 if latencies else np.zeros(1)

        return {
            "single_seconds": single_seconds,
            "dispatcher_seconds": dispatcher_seconds,
            "dispatcher_qps": dispatcher_qps,
            "open_capacity": open_capacity,
            "probe": probe,
            "sweep": sweep,
            "storm_errors": len(errors),
            "storm_requests": len(latencies),
            "storm_p99_ms": float(np.percentile(storm_lat_ms, 99)),
            "storm_tokens": len(tokens),
            "storm_cache_leak": not (cached_tokens <= tokens),
        }

    result = benchmark.pedantic(lambda: _gc_paused_call(run), rounds=1, iterations=1)

    single_qps = NUM_BASELINE_QUERIES / result["single_seconds"]
    dispatcher_qps = result["dispatcher_qps"]
    dispatcher_speedup = dispatcher_qps / single_qps
    sweep = result["sweep"]
    by_multiplier = {point["rate_multiplier"]: point for point in sweep}
    half, double = by_multiplier[0.5], by_multiplier[2.0]
    shed_rate_2x = double["shed"] / max(double["offered"], 1)

    rows = [
        ["single-thread baseline queries/sec", f"{single_qps:,.0f}"],
        [f"dispatcher queries/sec ({workers} workers)", f"{dispatcher_qps:,.0f}"],
        ["dispatcher vs single-thread", f"{dispatcher_speedup:.2f}x"],
        ["open-loop serviceable rate", f"{result['open_capacity']:,.0f}/sec"],
    ] + [
        [
            f"open-loop {point['rate_multiplier']}x capacity",
            f"p50 {point['p50_ms']:.2f} ms, p99 {point['p99_ms']:.2f} ms, "
            f"shed {point['shed']}/{point['offered']}",
        ]
        for point in sweep
    ] + [
        ["hot-swap storm requests", f"{result['storm_requests']:,}"],
        ["hot-swap storm errors", f"{result['storm_errors']}"],
        ["hot-swap storm p99", f"{result['storm_p99_ms']:.2f} ms"],
    ]
    print_table(f"Serving frontend under load ({dataset})", ["Metric", "Value"], rows)

    wall = (
        result["single_seconds"]
        + result["dispatcher_seconds"]
        + result["probe"]["elapsed_seconds"]
        + sum(point["elapsed_seconds"] for point in sweep)
        + STORM_SECONDS
    )
    record_bench(
        "serving",
        wall_time_seconds=wall,
        headline={
            "dispatcher_queries_per_sec": round(dispatcher_qps, 1),
            "dispatcher_vs_single_speedup": round(dispatcher_speedup, 2),
            "dispatcher_meets_baseline": dispatcher_speedup >= 1.0,
            "openloop_capacity_per_sec": round(result["open_capacity"], 1),
            "openloop_zero_sheds_at_half_capacity": half["shed"] == 0,
            "openloop_p99_ms_at_half_capacity": half["p99_ms"],
            "openloop_p99_within_budget_at_half_capacity": half["p99_ms"] <= P99_BUDGET_MS,
            "openloop_sheds_at_2x_capacity": double["shed"] > 0,
            "openloop_queue_bounded_at_2x": double["peak_queue_depth"]
            <= OPEN_LOOP_QUEUE_DEPTH,
            "openloop_shed_fraction_at_2x": round(shed_rate_2x, 4),
            "hotswap_storm_zero_errors": result["storm_errors"] == 0,
            "hotswap_storm_p99_ms": round(result["storm_p99_ms"], 4),
        },
        detail={
            "frontend_workers": workers,
            "open_loop_sweep": sweep,
            "storm": {
                "requests": result["storm_requests"],
                "errors": result["storm_errors"],
                "state_tokens_seen": result["storm_tokens"],
            },
        },
    )
    # the dispatcher must never cost throughput relative to a lone caller —
    # and on a multi-core box it must win outright
    floor = 1.0 if (os.cpu_count() or 1) >= 4 else 0.95
    assert dispatcher_speedup >= floor, (
        f"dispatcher {dispatcher_qps:,.0f} qps < {floor:.2f}x of "
        f"single-thread {single_qps:,.0f} qps"
    )
    # at half capacity the system is healthy: nothing shed, bounded tail
    assert half["shed"] == 0, f"shed {half['shed']} requests at 0.5x capacity"
    assert half["errors"] == 0
    assert half["p99_ms"] <= P99_BUDGET_MS, (
        f"p99 {half['p99_ms']:.2f} ms blew the {P99_BUDGET_MS} ms budget at 0.5x"
    )
    # past capacity the queue must shed rather than grow without bound
    assert double["shed"] > 0, "2x-capacity overload produced no shedding"
    assert double["peak_queue_depth"] <= OPEN_LOOP_QUEUE_DEPTH
    # zero-downtime hot-swap: no request failed, no stale-token cache entry
    assert result["storm_errors"] == 0
    assert result["storm_tokens"] == 4  # initial + 2 swaps + 1 fold-in
    assert not result["storm_cache_leak"]
