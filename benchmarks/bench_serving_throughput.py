"""Serving benchmark: query throughput, latency percentiles and fold-in cost.

Freezes a fitted DAAKG pipeline into an :class:`AlignmentService` (through a
real checkpoint round-trip, so the measured path is the production one),
then measures:

* single-query top-k latency (p50 / p99) and queries/sec — quantiles are
  read from the service's own request histogram (``service.metrics()``)
  rather than an external stopwatch list, so the benchmark exercises the
  same telemetry surface operators see in production,
* micro-batched throughput at the service's ``max_batch``,
* ``score_pairs`` throughput,
* incremental fold-in latency versus a full similarity-matrix recompute —
  the whole point of fold-in is that appending one row/column is orders of
  magnitude cheaper than rebuilding the ``|E1| × |E2|`` state.

Emits ``BENCH_serving.json`` via the shared ``record_bench`` hook.
"""

import time

import numpy as np

from conftest import BENCH_DATASETS, fitted_daakg, print_table, record_bench
from repro.serving import AlignmentService
from repro.serving.service import ServingSnapshot

NUM_SINGLE_QUERIES = 400
NUM_BATCHED_QUERIES = 2000
NUM_SCORE_PAIRS = 2000
FOLD_REPEATS = 5


def test_serving_throughput(benchmark, tmp_path):
    dataset = BENCH_DATASETS[0]
    pipeline = fitted_daakg(dataset, "transe")
    checkpoint = tmp_path / "serving-ckpt"
    save_start = time.perf_counter()
    pipeline.save(checkpoint)
    save_seconds = time.perf_counter() - save_start

    load_start = time.perf_counter()
    service = AlignmentService.from_checkpoint(checkpoint, max_batch=64, cache_size=0)
    load_seconds = time.perf_counter() - load_start

    kg1, kg2 = pipeline.kg1, pipeline.kg2
    rng = np.random.default_rng(0)
    uris = [kg1.entities[i] for i in rng.integers(0, kg1.num_entities, NUM_SINGLE_QUERIES)]

    def run() -> dict:
        # -------- single queries (cache off → every query pays the gather).
        # Latency quantiles come from the service's own request histogram,
        # captured *before* the batched phase folds its (per-batch, not
        # per-query) observations into the same instrument.
        start = time.perf_counter()
        for uri in uris:
            service.top_k_alignments([uri], k=10)
        single_seconds = time.perf_counter() - start
        single_metrics = service.metrics()

        # -------- micro-batched queries
        batch_uris = [
            kg1.entities[i]
            for i in rng.integers(0, kg1.num_entities, NUM_BATCHED_QUERIES)
        ]
        start = time.perf_counter()
        tickets = [service.enqueue_top_k(uri, k=10) for uri in batch_uris]
        service.flush()
        batched_seconds = time.perf_counter() - start
        assert all(t.ready for t in tickets)

        # -------- pair scoring
        pairs = [
            (kg1.entities[i], kg2.entities[j])
            for i, j in zip(
                rng.integers(0, kg1.num_entities, NUM_SCORE_PAIRS),
                rng.integers(0, kg2.num_entities, NUM_SCORE_PAIRS),
            )
        ]
        start = time.perf_counter()
        service.score_pairs(pairs)
        score_seconds = time.perf_counter() - start

        # -------- fold-in vs full similarity-state recompute.  The recompute
        # baseline is what serving a new entity costs *without* fold-in:
        # refresh the statistics snapshot, rebuild the similarity matrices
        # and re-freeze the serving arrays.
        victim = max(range(kg2.num_entities), key=kg2.entity_degree)
        fold_times = []
        for repeat in range(FOLD_REPEATS):
            triples = [
                (f"bench:new{repeat}", kg2.relations[r], kg2.entities[t])
                for r, t in kg2.out_edges(victim)[:8]
            ]
            report = service.fold_in(f"bench:new{repeat}", triples)
            fold_times.append(report.seconds)
        engine = pipeline.model.similarity
        recompute_times = []
        for _ in range(3):
            engine.invalidate()
            start = time.perf_counter()
            pipeline.model.refresh_statistics()
            ServingSnapshot.from_pipeline(pipeline)
            recompute_times.append(time.perf_counter() - start)

        return {
            "single_seconds": single_seconds,
            "single_metrics": single_metrics,
            "batched_seconds": batched_seconds,
            "score_seconds": score_seconds,
            "fold_seconds": min(fold_times),
            "recompute_seconds": min(recompute_times),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    single_qps = NUM_SINGLE_QUERIES / result["single_seconds"]
    batched_qps = NUM_BATCHED_QUERIES / result["batched_seconds"]
    score_qps = NUM_SCORE_PAIRS / result["score_seconds"]
    metrics = result["single_metrics"]
    assert metrics["requests_total"] == NUM_SINGLE_QUERIES
    p50 = metrics["p50_latency_ms"]
    p99 = metrics["p99_latency_ms"]
    fold_ms = result["fold_seconds"] * 1e3
    recompute_ms = result["recompute_seconds"] * 1e3
    speedup = result["recompute_seconds"] / max(result["fold_seconds"], 1e-12)

    rows = [
        ["top-k single queries/sec", f"{single_qps:,.0f}"],
        ["top-k p50 latency", f"{p50:.3f} ms"],
        ["top-k p99 latency", f"{p99:.3f} ms"],
        ["top-k micro-batched queries/sec", f"{batched_qps:,.0f}"],
        ["score_pairs pairs/sec", f"{score_qps:,.0f}"],
        ["fold-in latency", f"{fold_ms:.3f} ms"],
        ["full similarity-state rebuild", f"{recompute_ms:.3f} ms"],
        ["fold-in speedup", f"{speedup:,.1f}x"],
        ["checkpoint save", f"{save_seconds:.3f} s"],
        ["checkpoint load + freeze", f"{load_seconds:.3f} s"],
    ]
    print_table(f"Serving throughput ({dataset})", ["Metric", "Value"], rows)
    record_bench(
        "serving",
        wall_time_seconds=result["single_seconds"]
        + result["batched_seconds"]
        + result["score_seconds"],
        headline={
            "single_queries_per_sec": round(single_qps, 1),
            "batched_queries_per_sec": round(batched_qps, 1),
            "score_pairs_per_sec": round(score_qps, 1),
            "p50_latency_ms": round(p50, 4),
            "p99_latency_ms": round(p99, 4),
            "fold_in_ms": round(fold_ms, 4),
            "full_recompute_ms": round(recompute_ms, 4),
            "fold_in_speedup": round(speedup, 1),
        },
        detail={
            "checkpoint_save_seconds": round(save_seconds, 4),
            "checkpoint_load_seconds": round(load_seconds, 4),
            "entities": [pipeline.kg1.num_entities, pipeline.kg2.num_entities],
        },
    )
    # Fold-in exists to avoid the full recompute; it must be at least an
    # order of magnitude cheaper (acceptance criterion of the subsystem).
    assert speedup >= 10.0, f"fold-in only {speedup:.1f}x cheaper than recompute"
    # micro-batching must beat the single-query path
    assert batched_qps > single_qps
