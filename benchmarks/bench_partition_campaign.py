"""Partition-parallel campaign: executor sweep, wall-clock speedup, parity.

The campaign runtime's claim is threefold:

* cutting the pair into ρ-bounded partitions turns one quadratic campaign
  into ``P`` much smaller ones, so total wall-clock drops even serially;
* the **process executor** breaks the GIL: the training loops are pure-
  numpy Python, so a thread pool cannot scale them (this benchmark is where
  1 thread beating 4 was measured), while worker processes buy real cores;
* results are **byte-identical** across every executor backend and worker
  count — the backend may only ever change wall-clock.

This benchmark pins all three with numbers on a community-structured
shared-topology world pair (the regime ρ-bounded partitioning exists for):
one monolithic campaign versus the partitioned campaign across an executor
sweep — serial, thread×4, process×2, process×4 — all on the sharded
similarity runtime.

Assertions (always):

* the best partitioned configuration is ≥ 1.5× faster than the monolithic
  run,
* merged entity H@1 within 0.02 of the monolithic H@1,
* the deterministic result payload (scores, per-partition records, merged
  top-k digest) is byte-identical across **every** sweep entry.

Assertions (multi-core runners only, ``os.cpu_count() >= 4`` — CI enforces
these; a single-core box cannot measure them honestly):

* process×4 is ≥ 1.5× faster than the monolithic run,
* process×4 beats the thread backend's wall-clock at the same width.

Writes ``BENCH_partition.json`` via the shared conftest harness.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import pytest

from conftest import BENCH_SCALE, print_table, record_bench
from repro import DAAKG, DAAKGConfig, PartitionConfig, PartitionedCampaign
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.datasets import make_large_world_pair
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.kg.elements import ElementKind
from repro.kg.pair import SplitRatios

MIN_ENTITIES = 2400
NUM_ENTITIES = max(MIN_ENTITIES, int(6000 * BENCH_SCALE))
NUM_PARTITIONS = 4
#: (executor, workers) sweep; every entry must produce identical bytes.
EXECUTOR_SWEEP = (("serial", 1), ("thread", 4), ("process", 2), ("process", 4))
TOP_K = 10
MULTI_CORE = (os.cpu_count() or 1) >= 4


def sweep_key(executor: str, workers: int) -> str:
    return f"{executor}_{workers}"


def world_pair():
    pair = make_large_world_pair(
        NUM_ENTITIES,
        mean_out_degree=6.0,
        seed=0,
        shared_topology=True,
        num_communities=NUM_PARTITIONS,
        inter_community_fraction=0.05,
    )
    pair.split_entity_matches(SplitRatios(train=0.3, valid=0.1, test=0.6), seed=0)
    return pair


def campaign_config() -> DAAKGConfig:
    return DAAKGConfig(
        base_model="transe",
        entity_dim=32,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=4),
        alignment=AlignmentTrainingConfig(
            rounds=3, epochs_per_round=12, num_negatives=8,
            embedding_batches_per_round=3, embedding_batch_size=512,
        ),
        pool=PoolConfig(top_n=20),
        similarity_backend="sharded",
        seed=0,
    )


def loop_config() -> ActiveLearningConfig:
    return ActiveLearningConfig(batch_size=30, num_batches=2, fine_tune_epochs=6)


def partition_knobs(executor: str, workers: int) -> PartitionConfig:
    return PartitionConfig(
        num_partitions=NUM_PARTITIONS,
        workers=workers,
        executor=executor,
        max_refine_passes=30,
        balance_slack=0.6,
    )


def deterministic_payload(campaign: PartitionedCampaign) -> dict:
    """Everything about a campaign run that must not depend on the executor.

    Wall-clock, backend and worker count are deliberately excluded; scores,
    record sequences and a digest of the merged entity top-k table are all
    included.
    """
    merged = campaign.merged_state()
    table = merged.top_k_table(ElementKind.ENTITY, TOP_K)
    digest = hashlib.sha256()
    for array in (
        table.left_indices, table.left_values, table.right_indices, table.right_values
    ):
        digest.update(array.tobytes())
    scores = campaign.evaluate()
    return {
        "scores": {kind: s.as_dict() for kind, s in scores.items()},
        "records": [
            [
                [r.batch_index, r.labels_used, r.matches_labelled, r.entity_scores.as_dict()]
                for r in campaign.loops[i].records
            ]
            for i in range(campaign.num_partitions)
        ],
        "merged_topk_sha256": digest.hexdigest(),
    }


@pytest.fixture(scope="module")
def campaign_results():
    results: dict = {}

    start = time.perf_counter()
    monolithic = DAAKG(world_pair(), campaign_config())
    monolithic.fit()
    monolithic.active_learning("uncertainty", loop_config()).run()
    results["monolithic"] = {
        "seconds": time.perf_counter() - start,
        "h1": monolithic.evaluate()["entity"].hits_at_1,
    }

    results["partitioned"] = {}
    for executor, workers in EXECUTOR_SWEEP:
        start = time.perf_counter()
        campaign = PartitionedCampaign(
            world_pair(),
            campaign_config(),
            strategy="uncertainty",
            active_config=loop_config(),
            partition=partition_knobs(executor, workers),
            resolve_env=False,  # the sweep must not be overridden from outside
        )
        run_result = campaign.run()
        assert run_result.executor == executor
        seconds = time.perf_counter() - start
        results["partitioned"][sweep_key(executor, workers)] = {
            "executor": executor,
            "workers": workers,
            "seconds": seconds,
            "payload": deterministic_payload(campaign),
            "cut_weight_fraction": campaign.partition.cut_weight_fraction,
            "piece_entities": [
                piece.pair.kg1.num_entities for piece in campaign.partition.pieces
            ],
        }
    return results


def test_bench_partition_campaign(campaign_results):
    mono = campaign_results["monolithic"]
    sweep = campaign_results["partitioned"]
    keys = [sweep_key(executor, workers) for executor, workers in EXECUTOR_SWEEP]
    speedups = {key: mono["seconds"] / sweep[key]["seconds"] for key in keys}
    reference = sweep[sweep_key("process", 4)]
    merged_h1 = reference["payload"]["scores"]["entity"]["H@1"]
    h1_delta = merged_h1 - mono["h1"]

    rows = [["monolithic", "-", 1, f"{mono['seconds']:.2f}s", "1.00x", f"{mono['h1']:.4f}"]]
    for key in keys:
        entry = sweep[key]
        h1 = entry["payload"]["scores"]["entity"]["H@1"]
        rows.append(
            [
                f"partitioned x{NUM_PARTITIONS}",
                entry["executor"],
                entry["workers"],
                f"{entry['seconds']:.2f}s",
                f"{speedups[key]:.2f}x",
                f"{h1:.4f}",
            ]
        )
    print_table(
        f"Partition-parallel campaign ({NUM_ENTITIES} entities/side, "
        f"{NUM_PARTITIONS} partitions, {os.cpu_count()} cores)",
        ["campaign", "executor", "workers", "wall", "speedup", "entity H@1"],
        rows,
    )

    payload_bytes = {
        key: json.dumps(sweep[key]["payload"], sort_keys=True).encode("utf-8")
        for key in keys
    }
    executors_identical = all(payload_bytes[key] == payload_bytes[keys[0]] for key in keys)

    record_bench(
        "partition",
        wall_time_seconds=mono["seconds"] + sum(sweep[key]["seconds"] for key in keys),
        headline={
            "speedup_serial_1_vs_monolithic": round(speedups["serial_1"], 2),
            "speedup_thread_4_vs_monolithic": round(speedups["thread_4"], 2),
            "speedup_process_4_vs_monolithic": round(speedups["process_4"], 2),
            "h1_merged": round(merged_h1, 4),
            "h1_monolithic": round(mono["h1"], 4),
            "h1_delta": round(h1_delta, 4),
            "executors_identical": executors_identical,
        },
        detail={
            "num_entities": NUM_ENTITIES,
            "num_partitions": NUM_PARTITIONS,
            "cpu_count": os.cpu_count(),
            "multi_core_assertions": MULTI_CORE,
            "cut_weight_fraction": round(reference["cut_weight_fraction"], 4),
            "piece_entities": reference["piece_entities"],
            "seconds": {
                "monolithic": round(mono["seconds"], 2),
                **{key: round(sweep[key]["seconds"], 2) for key in keys},
            },
            "merged_topk_sha256": reference["payload"]["merged_topk_sha256"],
        },
    )

    # some partitioned configuration must clearly beat the monolithic
    # wall-clock on any machine (serially on one core, via processes on many)
    best = max(speedups.values())
    assert best >= 1.5, (
        f"best partitioned configuration is only {best:.2f}x faster than the "
        "monolithic run (need >= 1.5x)"
    )
    # merging must not cost (or magically gain) accuracy
    assert abs(h1_delta) <= 0.02, (
        f"merged H@1 {merged_h1:.4f} deviates from monolithic {mono['h1']:.4f} "
        f"by {h1_delta:+.4f} (budget 0.02)"
    )
    # the executor backend and worker count must never change results
    assert executors_identical, (
        "campaign results differ across executor backends — "
        "the determinism contract is broken"
    )
    if MULTI_CORE:
        # with real cores, the process backend must deliver the paper claim
        # outright and beat the GIL-bound thread pool at the same width
        assert speedups["process_4"] >= 1.5, (
            f"process executor at 4 workers is only {speedups['process_4']:.2f}x "
            "faster than the monolithic run on a multi-core machine (need >= 1.5x)"
        )
        assert sweep["process_4"]["seconds"] < sweep["thread_4"]["seconds"], (
            f"process executor ({sweep['process_4']['seconds']:.2f}s) failed to "
            f"beat the thread backend ({sweep['thread_4']['seconds']:.2f}s) at "
            "4 workers on a multi-core machine"
        )
