"""Partition-parallel campaign: wall-clock speedup and merged accuracy.

The campaign runtime's claim is twofold:

* cutting the pair into ρ-bounded partitions turns one quadratic campaign
  into ``P`` much smaller ones, so total wall-clock drops even on a single
  core (and drops further when the worker pool gets real cores);
* the merged similarity state answers the same queries as a monolithic run
  at (nearly) the same accuracy, and its results are **identical for any
  worker count**.

This benchmark pins both with numbers on a community-structured shared-
topology world pair (the regime ρ-bounded partitioning exists for): one
monolithic campaign (fit + active loop on the full pair) versus the
partitioned campaign at workers 1 / 2 / 4, all on the sharded similarity
runtime.

Assertions:

* ≥ 1.5× campaign speedup at 4 partitions / 4 workers over the monolithic
  run,
* merged entity H@1 within 0.02 of the monolithic H@1,
* the deterministic result payload (scores, per-partition records, merged
  top-k digest) is byte-identical between workers 2 and 4.

The world never shrinks below ``MIN_ENTITIES``: below that the quadratic
similarity work no longer dominates and the speedup crossover disappears,
so a smoke-scaled run would measure thread overhead instead of the runtime.

Writes ``BENCH_partition.json`` via the shared conftest harness.
"""

from __future__ import annotations

import hashlib
import json
import time

import pytest

from conftest import BENCH_SCALE, print_table, record_bench
from repro import DAAKG, DAAKGConfig, PartitionConfig, PartitionedCampaign
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.datasets import make_large_world_pair
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.kg.elements import ElementKind
from repro.kg.pair import SplitRatios

MIN_ENTITIES = 2400
NUM_ENTITIES = max(MIN_ENTITIES, int(6000 * BENCH_SCALE))
NUM_PARTITIONS = 4
WORKER_SWEEP = (1, 2, 4)
TOP_K = 10


def world_pair():
    pair = make_large_world_pair(
        NUM_ENTITIES,
        mean_out_degree=6.0,
        seed=0,
        shared_topology=True,
        num_communities=NUM_PARTITIONS,
        inter_community_fraction=0.05,
    )
    pair.split_entity_matches(SplitRatios(train=0.3, valid=0.1, test=0.6), seed=0)
    return pair


def campaign_config() -> DAAKGConfig:
    return DAAKGConfig(
        base_model="transe",
        entity_dim=32,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=4),
        alignment=AlignmentTrainingConfig(
            rounds=3, epochs_per_round=12, num_negatives=8,
            embedding_batches_per_round=3, embedding_batch_size=512,
        ),
        pool=PoolConfig(top_n=20),
        similarity_backend="sharded",
        seed=0,
    )


def loop_config() -> ActiveLearningConfig:
    return ActiveLearningConfig(batch_size=30, num_batches=2, fine_tune_epochs=6)


def partition_knobs(workers: int) -> PartitionConfig:
    return PartitionConfig(
        num_partitions=NUM_PARTITIONS,
        workers=workers,
        max_refine_passes=30,
        balance_slack=0.6,
    )


def deterministic_payload(campaign: PartitionedCampaign) -> dict:
    """Everything about a campaign run that must not depend on worker count.

    Wall-clock and worker count are deliberately excluded; scores, record
    sequences and a digest of the merged entity top-k table are all included.
    """
    merged = campaign.merged_state()
    table = merged.top_k_table(ElementKind.ENTITY, TOP_K)
    digest = hashlib.sha256()
    for array in (
        table.left_indices, table.left_values, table.right_indices, table.right_values
    ):
        digest.update(array.tobytes())
    scores = campaign.evaluate()
    return {
        "scores": {kind: s.as_dict() for kind, s in scores.items()},
        "records": [
            [
                [r.batch_index, r.labels_used, r.matches_labelled, r.entity_scores.as_dict()]
                for r in campaign.loops[i].records
            ]
            for i in range(campaign.num_partitions)
        ],
        "merged_topk_sha256": digest.hexdigest(),
    }


@pytest.fixture(scope="module")
def campaign_results():
    results: dict = {}

    start = time.perf_counter()
    monolithic = DAAKG(world_pair(), campaign_config())
    monolithic.fit()
    monolithic.active_learning("uncertainty", loop_config()).run()
    results["monolithic"] = {
        "seconds": time.perf_counter() - start,
        "h1": monolithic.evaluate()["entity"].hits_at_1,
    }

    results["partitioned"] = {}
    for workers in WORKER_SWEEP:
        start = time.perf_counter()
        campaign = PartitionedCampaign(
            world_pair(),
            campaign_config(),
            strategy="uncertainty",
            active_config=loop_config(),
            partition=partition_knobs(workers),
            resolve_env=False,  # the sweep must not be overridden from outside
        )
        campaign.run()
        seconds = time.perf_counter() - start
        results["partitioned"][workers] = {
            "seconds": seconds,
            "payload": deterministic_payload(campaign),
            "cut_weight_fraction": campaign.partition.cut_weight_fraction,
            "piece_entities": [
                piece.pair.kg1.num_entities for piece in campaign.partition.pieces
            ],
        }
    return results


def test_bench_partition_campaign(campaign_results):
    mono = campaign_results["monolithic"]
    sweep = campaign_results["partitioned"]
    speedups = {w: mono["seconds"] / sweep[w]["seconds"] for w in WORKER_SWEEP}
    merged_h1 = sweep[WORKER_SWEEP[-1]]["payload"]["scores"]["entity"]["H@1"]
    h1_delta = merged_h1 - mono["h1"]

    rows = [["monolithic", 1, f"{mono['seconds']:.2f}s", "1.00x", f"{mono['h1']:.4f}"]]
    for workers in WORKER_SWEEP:
        entry = sweep[workers]
        h1 = entry["payload"]["scores"]["entity"]["H@1"]
        rows.append(
            [
                f"partitioned x{NUM_PARTITIONS}",
                workers,
                f"{entry['seconds']:.2f}s",
                f"{speedups[workers]:.2f}x",
                f"{h1:.4f}",
            ]
        )
    print_table(
        f"Partition-parallel campaign ({NUM_ENTITIES} entities/side, "
        f"{NUM_PARTITIONS} partitions)",
        ["campaign", "workers", "wall", "speedup", "entity H@1"],
        rows,
    )

    payload_bytes = {
        w: json.dumps(sweep[w]["payload"], sort_keys=True).encode("utf-8")
        for w in WORKER_SWEEP
    }

    record_bench(
        "partition",
        wall_time_seconds=mono["seconds"] + sum(sweep[w]["seconds"] for w in WORKER_SWEEP),
        headline={
            "speedup_workers_4_vs_monolithic": round(speedups[4], 2),
            "speedup_workers_1_vs_monolithic": round(speedups[1], 2),
            "h1_merged": round(merged_h1, 4),
            "h1_monolithic": round(mono["h1"], 4),
            "h1_delta": round(h1_delta, 4),
            "workers_2_vs_4_identical": payload_bytes[2] == payload_bytes[4],
        },
        detail={
            "num_entities": NUM_ENTITIES,
            "num_partitions": NUM_PARTITIONS,
            "cut_weight_fraction": round(sweep[4]["cut_weight_fraction"], 4),
            "piece_entities": sweep[4]["piece_entities"],
            "seconds": {
                "monolithic": round(mono["seconds"], 2),
                **{f"workers_{w}": round(sweep[w]["seconds"], 2) for w in WORKER_SWEEP},
            },
            "merged_topk_sha256": sweep[4]["payload"]["merged_topk_sha256"],
        },
    )

    # the partitioned campaign must clearly beat the monolithic wall-clock
    assert speedups[4] >= 1.5, (
        f"partitioned campaign at 4 workers is only {speedups[4]:.2f}x faster "
        "than the monolithic run (need >= 1.5x)"
    )
    # merging must not cost (or magically gain) accuracy
    assert abs(h1_delta) <= 0.02, (
        f"merged H@1 {merged_h1:.4f} deviates from monolithic {mono['h1']:.4f} "
        f"by {h1_delta:+.4f} (budget 0.02)"
    )
    # worker count must never change results, byte for byte
    assert payload_bytes[2] == payload_bytes[4], (
        "campaign results differ between workers=2 and workers=4 — "
        "the determinism contract is broken"
    )
    assert payload_bytes[1] == payload_bytes[2]
