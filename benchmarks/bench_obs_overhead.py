"""Observability overhead benchmark: instrumentation must be nearly free.

``repro.obs`` instruments the hot paths of the whole pipeline (trainer
steps, similarity cache, ANN index, executor pieces, serving requests), so
its cost is measured and gated here:

* **enabled** — two full DAAKG fits interleaved (obs off / obs on, several
  repeats each, min-of-N to shed scheduler noise) must stay within a 3%
  overhead budget.  The ratio itself is machine-noisy, so the *gating*
  headline is the boolean ``overhead_within_budget`` (flips fail the
  regression wall); the raw ratio is recorded for trend-watching.
* **disabled** — the no-op fast path is validated structurally (every
  accessor returns the module-level singleton, so there is zero allocation
  per call) and its per-call cost is recorded in nanoseconds.  ``_ns``
  metrics are informational: sub-microsecond timings gate nowhere.

Emits ``BENCH_obs.json`` via the shared ``record_bench`` hook.
"""

import time
import timeit

from conftest import BENCH_DATASETS, bench_pair, print_table, quick_config, record_bench

import repro.obs as obs
from repro import DAAKG

REPEATS = 3
OVERHEAD_BUDGET = 1.03
NOOP_CALLS = 100_000


def _fit_seconds(dataset: str, enabled: bool) -> float:
    """One full pipeline fit with obs forced on/off; returns wall seconds."""
    was_enabled = obs.enabled()
    try:
        if enabled:
            obs.enable()
            obs.reset()  # fresh registry: merge growth must not skew timings
        else:
            obs.disable()
        pipeline = DAAKG(bench_pair(dataset), quick_config("transe"))
        start = time.perf_counter()
        pipeline.fit()
        return time.perf_counter() - start
    finally:
        obs.reset()
        if was_enabled:
            obs.enable()
        else:
            obs.disable()


def test_obs_overhead(benchmark):
    dataset = BENCH_DATASETS[0]

    def run() -> dict:
        # Interleave off/on repeats so drift (thermal, cache residency)
        # hits both arms equally; min-of-N is the standard noise floor.
        off_times, on_times = [], []
        for _ in range(REPEATS):
            off_times.append(_fit_seconds(dataset, enabled=False))
            on_times.append(_fit_seconds(dataset, enabled=True))

        # Disabled fast path: accessors must return the shared no-op
        # singletons (zero allocation), and each call should cost tens of
        # nanoseconds — one enabled-flag check plus an attribute return.
        obs.disable()
        noop_identity = (
            obs.counter("bench.x", kind="a") is obs.counter("bench.y")
            and obs.histogram("bench.h") is obs.histogram("bench.h2")
            and obs.span("bench.s") is obs.span("bench.s2")
        )
        noop_seconds = timeit.timeit(
            "counter('bench.noop').inc()",
            globals={"counter": obs.counter},
            number=NOOP_CALLS,
        )
        return {
            "off_seconds": min(off_times),
            "on_seconds": min(on_times),
            "off_all": off_times,
            "on_all": on_times,
            "noop_identity": noop_identity,
            "noop_call_ns": noop_seconds / NOOP_CALLS * 1e9,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    ratio = result["on_seconds"] / max(result["off_seconds"], 1e-12)
    within_budget = ratio < OVERHEAD_BUDGET

    rows = [
        ["fit, obs disabled (min of %d)" % REPEATS, f"{result['off_seconds']:.3f} s"],
        ["fit, obs enabled (min of %d)" % REPEATS, f"{result['on_seconds']:.3f} s"],
        ["enabled overhead", f"{(ratio - 1) * 100:+.2f}%"],
        ["within %.0f%% budget" % ((OVERHEAD_BUDGET - 1) * 100), str(within_budget)],
        ["no-op accessor returns singleton", str(result["noop_identity"])],
        ["no-op counter call", f"{result['noop_call_ns']:.1f} ns"],
    ]
    print_table(f"Observability overhead ({dataset})", ["Metric", "Value"], rows)

    record_bench(
        "obs",
        wall_time_seconds=sum(result["off_all"]) + sum(result["on_all"]),
        headline={
            # boolean invariants gate (true -> false flips fail the wall);
            # the raw ratio and ns cost are informational trend signals
            "overhead_within_budget": within_budget,
            "noop_zero_allocation": result["noop_identity"],
            "enabled_overhead_ratio": round(ratio, 4),
            "noop_call_ns": round(result["noop_call_ns"], 1),
        },
        detail={
            "fit_seconds_disabled": [round(t, 4) for t in result["off_all"]],
            "fit_seconds_enabled": [round(t, 4) for t in result["on_all"]],
            "repeats": REPEATS,
            "budget_ratio": OVERHEAD_BUDGET,
        },
    )

    assert result["noop_identity"], "disabled obs accessors must return no-op singletons"
    assert within_budget, (
        f"obs instrumentation costs {(ratio - 1) * 100:.2f}% on a full fit "
        f"(budget {(OVERHEAD_BUDGET - 1) * 100:.0f}%)"
    )
