"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that legacy editable installs (``pip install -e . --no-use-pep517``) work
on machines without the ``wheel`` package or network access to build
dependencies.
"""

from setuptools import setup

setup()
