"""Tests for inference power measurement and batch active learning."""

import numpy as np
import pytest

from repro.active import (
    ActiveLearningConfig,
    ElementPairPool,
    GreedySelectionConfig,
    Oracle,
    PartitionSelectionConfig,
    PoolConfig,
    RandomStrategy,
    build_pool,
    create_strategy,
    greedy_select,
    partition_pool,
    partition_select,
    STRATEGY_REGISTRY,
)
from repro.active.selection import expected_overall_power
from repro.inference import (
    ElementPair,
    InferencePowerConfig,
    InferencePowerEstimator,
    build_alignment_graph,
)
from repro.inference.pairs import class_pair, entity_pair, relation_pair
from repro.inference.power import inference_accuracy
from repro.kg.elements import ElementKind


@pytest.fixture(scope="module")
def inference_setup(fitted_pipeline):
    pipeline = fitted_pipeline
    pool = build_pool(pipeline.model, PoolConfig(top_n=15))
    graph, estimator = pipeline.build_inference_estimator(pool)
    return pipeline, pool, graph, estimator


class TestElementPair:
    def test_hashable_and_ordered(self):
        a, b = entity_pair(1, 2), entity_pair(1, 3)
        assert a < b
        assert len({a, b, entity_pair(1, 2)}) == 2

    def test_kind_constructors(self):
        assert relation_pair(0, 1).kind is ElementKind.RELATION
        assert class_pair(0, 1).kind is ElementKind.CLASS


class TestAlignmentGraph:
    def test_build_graph_from_tiny_pair(self, tiny_pair):
        entity_pool = {tuple(row) for row in tiny_pair.entity_match_ids().tolist()}
        graph = build_alignment_graph(tiny_pair.kg1, tiny_pair.kg2, entity_pool)
        assert len(graph.entity_pairs) == len(entity_pool)
        assert graph.num_edges() > 0
        # every edge endpoint is in the pool
        for edge in graph.edges:
            assert (edge.source.left, edge.source.right) in entity_pool
            assert (edge.target.left, edge.target.right) in entity_pool

    def test_class_membership_links(self, tiny_pair):
        entity_pool = {tuple(row) for row in tiny_pair.entity_match_ids().tolist()}
        graph = build_alignment_graph(tiny_pair.kg1, tiny_pair.kg2, entity_pool)
        assert len(graph.class_pair_members) > 0

    def test_neighbors_symmetric_closure(self, tiny_pair):
        entity_pool = {tuple(row) for row in tiny_pair.entity_match_ids().tolist()}
        graph = build_alignment_graph(tiny_pair.kg1, tiny_pair.kg2, entity_pool)
        for edge in graph.edges[:10]:
            assert edge.target in graph.neighbors(edge.source)

    def test_empty_pool_gives_empty_graph(self, tiny_pair):
        graph = build_alignment_graph(tiny_pair.kg1, tiny_pair.kg2, set())
        assert graph.num_edges() == 0


class TestInferencePower:
    def test_edge_power_in_unit_interval(self, inference_setup):
        _, _, graph, estimator = inference_setup
        assert graph.num_edges() > 0
        for edge in graph.edges[:20]:
            power = estimator.edge_power(edge)
            assert 0.0 < power <= 1.0

    def test_zeroing_relation_difference_never_decreases_power(self, inference_setup):
        _, _, graph, estimator = inference_setup
        for edge in graph.edges[:20]:
            assert estimator.edge_power(edge, True) >= estimator.edge_power(edge) - 1e-12

    def test_path_power_reaches_neighbors(self, inference_setup):
        _, _, graph, estimator = inference_setup
        source = next(pair for pair in graph.entity_pairs if graph.out_edges.get(pair))
        powers = estimator.entity_path_power(source)
        assert powers
        assert all(0.0 < value <= 1.0 for value in powers.values())

    def test_reachable_power_entity_includes_schema_pairs(self, inference_setup):
        _, _, graph, estimator = inference_setup
        source = next(pair for pair in graph.entity_pairs if graph.out_edges.get(pair))
        reach = estimator.reachable_power(source)
        kinds = {pair.kind for pair in reach}
        assert ElementKind.ENTITY in kinds

    def test_relation_pair_power(self, inference_setup):
        _, _, graph, estimator = inference_setup
        relation_pairs_with_edges = [p for p in graph.relation_pairs if graph.edges_by_relation_pair.get(p)]
        assert relation_pairs_with_edges
        powers = estimator.relation_to_entity_power(relation_pairs_with_edges[0])
        assert all(value <= 1.0 for value in powers.values())

    def test_class_pair_has_no_outgoing_power(self, inference_setup):
        _, _, graph, estimator = inference_setup
        assert estimator.reachable_power(graph.class_pairs[0]) == {}

    def test_overall_power_is_monotone_in_labels(self, inference_setup):
        pipeline, _, graph, estimator = inference_setup
        labelled = [
            ElementPair(ElementKind.ENTITY, left, right)
            for left, right in pipeline.trainer.labels.matches[ElementKind.ENTITY][:10]
        ]
        assert estimator.overall_power(labelled[:2]) <= estimator.overall_power(labelled) + 1e-9

    def test_inference_accuracy_bounds(self, inference_setup):
        pipeline, _, _, estimator = inference_setup
        labelled = [
            ElementPair(ElementKind.ENTITY, left, right)
            for left, right in pipeline.trainer.labels.matches[ElementKind.ENTITY]
        ]
        gold = {
            ElementKind.ENTITY: {tuple(r) for r in pipeline.pair.entity_match_ids().tolist()},
            ElementKind.RELATION: {tuple(r) for r in pipeline.pair.relation_match_ids().tolist()},
            ElementKind.CLASS: {tuple(r) for r in pipeline.pair.class_match_ids().tolist()},
        }
        accuracy = inference_accuracy(estimator, labelled, gold)
        assert 0.0 <= accuracy <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InferencePowerConfig(max_hops=0)
        with pytest.raises(ValueError):
            InferencePowerConfig(power_threshold=2.0)


class TestPool:
    def test_pool_contains_all_schema_pairs(self, inference_setup):
        pipeline, pool, _, _ = inference_setup
        assert len(pool.relation_pairs) == pipeline.kg1.num_relations * pipeline.kg2.num_relations
        assert len(pool.class_pairs) == pipeline.kg1.num_classes * pipeline.kg2.num_classes

    def test_pool_recall_monotone_in_n(self, fitted_pipeline):
        gold = {
            (fitted_pipeline.kg1.entity_id(a), fitted_pipeline.kg2.entity_id(b))
            for a, b in fitted_pipeline.pair.entity_alignment.pairs
        }
        small = build_pool(fitted_pipeline.model, PoolConfig(top_n=5)).recall_of_matches(gold)
        large = build_pool(fitted_pipeline.model, PoolConfig(top_n=40)).recall_of_matches(gold)
        assert large >= small

    def test_pool_membership_and_len(self, inference_setup):
        _, pool, _, _ = inference_setup
        assert len(pool) == len(pool.all_pairs)
        assert pool.entity_pairs[0] in pool

    def test_pool_config_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(top_n=0)


class TestOracle:
    def test_oracle_answers_from_gold(self, tiny_pair):
        oracle = Oracle(tiny_pair)
        gold = tiny_pair.entity_match_ids()[0]
        assert oracle.label(entity_pair(int(gold[0]), int(gold[1])))
        assert not oracle.label(entity_pair(int(gold[0]), (int(gold[1]) + 1) % tiny_pair.kg2.num_entities))
        assert oracle.questions_asked == 2

    def test_label_batch_preserves_order(self, tiny_pair):
        oracle = Oracle(tiny_pair)
        pairs = [entity_pair(0, 0), entity_pair(0, 1)]
        answers = oracle.label_batch(pairs)
        assert [pair for pair, _ in answers] == pairs


class TestSelection:
    def test_greedy_select_batch_size_and_uniqueness(self):
        candidates = [entity_pair(i, i) for i in range(20)]
        probabilities = {pair: 0.5 for pair in candidates}
        def reach(q):
            return {entity_pair(q.left + 100, q.right + 100): 0.9}
        batch = greedy_select(candidates, probabilities, reach,
                              GreedySelectionConfig(batch_size=5), rng=0)
        assert len(batch) == 5
        assert len(set(batch)) == 5

    def test_greedy_prefers_high_probability_high_power(self):
        strong = entity_pair(0, 0)
        weak = entity_pair(1, 1)
        probabilities = {strong: 0.9, weak: 0.1}
        reach = {
            strong: {entity_pair(10, 10): 0.95, entity_pair(11, 11): 0.95},
            weak: {entity_pair(12, 12): 0.85},
        }
        batch = greedy_select([weak, strong], probabilities, lambda q: reach[q],
                              GreedySelectionConfig(batch_size=1), rng=0)
        assert batch == [strong]

    def test_greedy_avoids_redundant_coverage(self):
        a, b, c = entity_pair(0, 0), entity_pair(1, 1), entity_pair(2, 2)
        shared_target = entity_pair(10, 10)
        other_target = entity_pair(20, 20)
        probabilities = {a: 0.9, b: 0.9, c: 0.9}
        reach = {a: {shared_target: 0.95}, b: {shared_target: 0.95}, c: {other_target: 0.9}}
        batch = greedy_select([a, b, c], probabilities, lambda q: reach[q],
                              GreedySelectionConfig(batch_size=2, num_samples=32), rng=0)
        assert c in batch

    def test_expected_overall_power_nonnegative(self):
        pairs = [entity_pair(0, 0)]
        value = expected_overall_power(pairs, {pairs[0]: 0.8},
                                       lambda q: {entity_pair(5, 5): 0.9}, power_threshold=0.5)
        assert value >= 0.0

    def test_empty_candidates(self):
        assert greedy_select([], {}, lambda q: {}, GreedySelectionConfig(batch_size=3)) == []

    def test_selection_config_validation(self):
        with pytest.raises(ValueError):
            GreedySelectionConfig(batch_size=0)


class TestPartitioning:
    def test_partition_pool_assigns_every_entity_pair(self, inference_setup):
        _, _, graph, estimator = inference_setup
        partition_of = partition_pool(graph, estimator, PartitionSelectionConfig(rho=0.9))
        assert set(partition_of) == set(graph.entity_pairs)

    def test_partition_select_returns_batch(self, inference_setup):
        pipeline, pool, graph, estimator = inference_setup
        candidates = pool.all_pairs[:200]
        probabilities = {pair: 0.5 for pair in candidates}
        batch = partition_select(
            candidates, probabilities, graph, estimator,
            selection_config=GreedySelectionConfig(batch_size=5, candidate_limit=100),
            partition_config=PartitionSelectionConfig(rho=0.9),
            rng=0,
        )
        assert 0 < len(batch) <= 5

    def test_partition_config_validation(self):
        with pytest.raises(ValueError):
            PartitionSelectionConfig(rho=0.0)


class TestStrategies:
    def test_registry_contains_paper_strategies(self):
        assert set(STRATEGY_REGISTRY) == {
            "random", "degree", "pagerank", "uncertainty", "activeea", "daakg"
        }

    def test_create_strategy_unknown(self):
        with pytest.raises(KeyError):
            create_strategy("nope")

    def test_daakg_strategy_algorithm_validation(self):
        with pytest.raises(ValueError):
            create_strategy("daakg", algorithm="bogus")

    @pytest.mark.parametrize("name", ["random", "degree", "pagerank", "uncertainty", "activeea"])
    def test_simple_strategies_return_unique_unlabelled_pairs(self, name, fitted_pipeline):
        from repro.active.strategies import SelectionState

        pool = build_pool(fitted_pipeline.model, PoolConfig(top_n=10))
        unlabelled = pool.all_pairs
        probabilities = {pair: 0.5 for pair in unlabelled}
        state = SelectionState(
            pool=pool, unlabelled=unlabelled, probabilities=probabilities,
            model=fitted_pipeline.model, rng=np.random.default_rng(0),
        )
        batch = create_strategy(name).select(state, 7)
        assert len(batch) == 7
        assert len(set(batch)) == 7
        assert all(pair in unlabelled for pair in batch)


class TestActiveLoop:
    def test_loop_runs_and_improves_labels(self, fitted_pipeline):
        loop = fitted_pipeline.active_learning(
            strategy=RandomStrategy(),
            config=ActiveLearningConfig(
                batch_size=10, num_batches=2, fine_tune_epochs=2,
                pool=PoolConfig(top_n=10),
                inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
            ),
        )
        records = loop.run()
        assert len(records) == 2
        assert records[1].labels_used > records[0].labels_used
        assert records[0].labels_used == 10
        for record in records:
            assert 0.0 <= record.entity_scores.hits_at_1 <= 1.0

    def test_loop_config_validation(self):
        with pytest.raises(ValueError):
            ActiveLearningConfig(batch_size=0)
