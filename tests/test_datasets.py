"""Tests for the synthetic benchmark dataset generators."""

import pytest

from repro.datasets import (
    BENCHMARK_CONFIGS,
    ViewConfig,
    WorldConfig,
    available_benchmarks,
    derive_aligned_pair,
    derive_view,
    generate_world,
    make_benchmark,
)


@pytest.fixture(scope="module")
def small_world():
    return generate_world(WorldConfig(num_entities=120, num_classes=8, num_relations=12, seed=1))


class TestWorld:
    def test_world_sizes(self, small_world):
        kg = small_world.kg
        assert kg.num_entities == 120
        assert kg.num_classes == 8
        assert kg.num_relations == 12
        assert kg.num_triples > 0

    def test_every_entity_has_a_class(self, small_world):
        kg = small_world.kg
        assert all(kg.classes_of(e) for e in range(kg.num_entities))

    def test_every_class_has_a_member(self, small_world):
        kg = small_world.kg
        assert all(kg.entities_of_class(c) for c in range(kg.num_classes))

    def test_functional_relations_have_unique_tails_per_head(self, small_world):
        kg = small_world.kg
        for relation in small_world.functional_relations:
            rows = kg.triples_of_relation(kg.relation_id(relation))
            heads = rows[:, 0]
            assert len(heads) == len(set(heads.tolist()))

    def test_generation_is_deterministic(self):
        config = WorldConfig(num_entities=60, num_classes=5, num_relations=8, seed=3)
        a = generate_world(config).kg
        b = generate_world(config).kg
        assert [t.as_tuple() for t in a.triples] == [t.as_tuple() for t in b.triples]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(num_entities=0)
        with pytest.raises(ValueError):
            WorldConfig(functional_relation_fraction=2.0)


class TestViews:
    def test_view_respects_keep_fractions(self, small_world):
        view, ent_map, rel_map, cls_map = derive_view(
            small_world, ViewConfig(prefix="v", relation_keep_fraction=0.5), seed=0
        )
        assert view.num_relations <= max(1, int(0.5 * small_world.kg.num_relations)) + 1
        assert all(name.startswith("v:") for name in view.entities)

    def test_view_obfuscation_hides_world_names(self, small_world):
        view, ent_map, *_ = derive_view(
            small_world, ViewConfig(prefix="v", obfuscate_names=True), seed=0
        )
        assert all("ent_" not in name for name in view.entities)

    def test_view_config_validation(self):
        with pytest.raises(ValueError):
            ViewConfig(prefix="v", triple_keep_fraction=0.0)

    def test_derive_aligned_pair_gold_matches_are_valid(self, small_world):
        pair = derive_aligned_pair(
            small_world,
            "test",
            ViewConfig(prefix="a"),
            ViewConfig(prefix="b", entity_keep_fraction=0.7),
            seed=0,
        )
        # every gold match references elements present in the KGs (validated on construction)
        assert len(pair.entity_alignment) > 0
        assert len(pair.relation_alignment) > 0
        # KG2 keeps roughly 70% of the entities
        assert pair.kg2.num_entities < pair.kg1.num_entities

    def test_gold_matches_share_world_identity(self, small_world):
        pair = derive_aligned_pair(
            small_world, "test", ViewConfig(prefix="a"), ViewConfig(prefix="b"), seed=1
        )
        for left, right in pair.entity_alignment.pairs[:20]:
            assert left.split(":", 1)[1] == right.split(":", 1)[1]


class TestBenchmarks:
    def test_registry_contains_paper_datasets(self):
        assert set(available_benchmarks()) == {"D-W", "D-Y", "EN-DE", "EN-FR"}

    def test_make_benchmark_small_scale(self):
        pair = make_benchmark("D-W", scale=0.1, seed=0)
        assert pair.kg1.num_entities < 200
        assert len(pair.entity_alignment) > 0
        assert len(pair.train_entity_pairs) > 0

    def test_make_benchmark_unknown_name(self):
        with pytest.raises(KeyError):
            make_benchmark("nope")

    def test_make_benchmark_is_case_insensitive(self):
        pair = make_benchmark("d-y", scale=0.1, seed=0)
        assert pair.name == "D-Y"

    def test_dy_has_smaller_class_vocabulary_than_dw(self):
        assert (
            BENCHMARK_CONFIGS["D-Y"].world.num_classes < BENCHMARK_CONFIGS["D-W"].world.num_classes
        )

    def test_kg2_is_dangling_reduced(self):
        pair = make_benchmark("D-W", scale=0.2, seed=0)
        assert pair.kg2.num_entities < pair.kg1.num_entities
        assert len(pair.dangling_entities_kg1()) > 0

    def test_scaled_config(self):
        config = BENCHMARK_CONFIGS["D-W"].scaled(0.5)
        assert config.world.num_entities == 500
        with pytest.raises(ValueError):
            BENCHMARK_CONFIGS["D-W"].scaled(0)

    def test_same_seed_gives_same_dataset(self):
        a = make_benchmark("EN-DE", scale=0.1, seed=5)
        b = make_benchmark("EN-DE", scale=0.1, seed=5)
        assert a.summary() == b.summary()
        assert a.train_entity_pairs == b.train_entity_pairs

    def test_different_seeds_give_different_splits(self):
        a = make_benchmark("EN-DE", scale=0.1, seed=5)
        b = make_benchmark("EN-DE", scale=0.1, seed=6)
        assert a.train_entity_pairs != b.train_entity_pairs

    def test_cross_vocabulary_datasets_obfuscate_names(self):
        pair = make_benchmark("D-W", scale=0.1, seed=0)
        lefts = {a.split(":", 1)[1] for a, _ in pair.entity_alignment.pairs}
        rights = {b.split(":", 1)[1] for _, b in pair.entity_alignment.pairs}
        assert not lefts & rights

    def test_monolingual_dataset_keeps_shared_names(self):
        pair = make_benchmark("D-Y", scale=0.1, seed=0)
        left, right = pair.entity_alignment.pairs[0]
        assert left.split(":", 1)[1] == right.split(":", 1)[1]
