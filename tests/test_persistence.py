"""Checkpoint format, round-trip fidelity and campaign resume parity."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import DAAKG, DAAKGConfig
from repro.active.loop import ActiveLearningConfig, ActiveLearningLoop
from repro.active.pool import PoolConfig
from repro.core.config import config_from_dict, config_to_dict
from repro.inference.power import InferencePowerConfig
from repro.kg.elements import ElementKind
from repro.persistence import (
    CheckpointError,
    load_checkpoint,
    pair_from_arrays,
    pair_to_arrays,
    restore_loop,
    save_checkpoint,
)

LOOP_CONFIG = ActiveLearningConfig(
    batch_size=20, num_batches=3, fine_tune_epochs=5, pool=PoolConfig(top_n=20),
    inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
)


@pytest.fixture(scope="module")
def checkpoint_dir(fitted_pipeline, tmp_path_factory):
    """The fitted session pipeline, checkpointed once for the whole module."""
    path = tmp_path_factory.mktemp("ckpt") / "fitted"
    fitted_pipeline.save(path)
    return path


# ----------------------------------------------------------------- dataset codec
def test_pair_codec_round_trip(tiny_pair):
    arrays: dict[str, np.ndarray] = {}
    pair_to_arrays(tiny_pair, "dataset", arrays)
    restored = pair_from_arrays("dataset", arrays)
    assert restored.name == tiny_pair.name
    assert restored.kg1.entities == tiny_pair.kg1.entities
    assert restored.kg2.relations == tiny_pair.kg2.relations
    assert restored.kg1.triples == tiny_pair.kg1.triples
    assert restored.kg2.type_triples == tiny_pair.kg2.type_triples
    assert restored.entity_alignment.pairs == tiny_pair.entity_alignment.pairs
    assert restored.class_alignment.pairs == tiny_pair.class_alignment.pairs
    assert restored.train_entity_pairs == tiny_pair.train_entity_pairs
    assert restored.test_entity_pairs == tiny_pair.test_entity_pairs


# --------------------------------------------------------------- format / errors
def test_checkpoint_files_and_manifest(checkpoint_dir, fitted_pipeline):
    manifest = json.loads((checkpoint_dir / "manifest.json").read_text())
    assert manifest["format_version"] == 1
    assert manifest["fitted"] is True
    assert manifest["config"] == fitted_pipeline.config.to_dict()
    assert manifest["arrays"]["sha256"]
    assert (checkpoint_dir / "arrays.npz").is_file()


def test_load_missing_checkpoint_fails(tmp_path):
    with pytest.raises(CheckpointError, match="manifest"):
        load_checkpoint(tmp_path / "nope")


def test_load_corrupt_arrays_fails(checkpoint_dir, tmp_path):
    import shutil

    broken = tmp_path / "broken"
    shutil.copytree(checkpoint_dir, broken)
    with open(broken / "arrays.npz", "ab") as handle:
        handle.write(b"garbage")
    with pytest.raises(CheckpointError, match="hash mismatch"):
        load_checkpoint(broken)


def test_unsupported_format_version_fails(checkpoint_dir, tmp_path):
    import shutil

    future = tmp_path / "future"
    shutil.copytree(checkpoint_dir, future)
    manifest = json.loads((future / "manifest.json").read_text())
    manifest["format_version"] = 999
    (future / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="format version"):
        load_checkpoint(future)


# ------------------------------------------------------------------- round trip
def test_save_load_evaluate_bit_exact(checkpoint_dir, fitted_pipeline):
    restored = DAAKG.load(checkpoint_dir)
    original_scores = fitted_pipeline.evaluate()
    restored_scores = restored.evaluate()
    for kind in original_scores:
        assert original_scores[kind].as_dict() == restored_scores[kind].as_dict()


def test_restored_state_matches(checkpoint_dir, fitted_pipeline):
    restored = DAAKG.load(checkpoint_dir)
    assert restored.is_fitted
    assert restored.config == fitted_pipeline.config
    original_state = fitted_pipeline.model.state_dict()
    restored_state = restored.model.state_dict()
    assert set(original_state) == set(restored_state)
    for key in original_state:
        np.testing.assert_array_equal(original_state[key], restored_state[key])
    # Adam progress
    assert restored.trainer.optimizer._t == fitted_pipeline.trainer.optimizer._t
    # labels and mined matches
    for kind in ElementKind:
        assert restored.trainer.labels.matches[kind] == fitted_pipeline.trainer.labels.matches[kind]
        assert restored.trainer._semi[kind] == fitted_pipeline.trainer._semi[kind]
    # the shared RNG stream resumes at the same position (equal states imply
    # equal future draws, without perturbing the session fixture's stream)
    from repro.utils.rng import get_rng_state

    assert get_rng_state(restored.rng) == get_rng_state(fitted_pipeline.rng)
    assert get_rng_state(restored.embedding_model_1.rng) == get_rng_state(
        fitted_pipeline.embedding_model_1.rng
    )


def test_restored_rng_is_mutation_safe(checkpoint_dir):
    # two independent loads must not share generator objects or streams
    a = DAAKG.load(checkpoint_dir)
    b = DAAKG.load(checkpoint_dir)
    a.rng.random(10)
    first = DAAKG.load(checkpoint_dir)
    assert b.rng.random(2).tolist() == first.rng.random(2).tolist()


# ---------------------------------------------------------------- resume parity
def _comparable(record) -> dict:
    data = dataclasses.asdict(record)
    data.pop("seconds")
    return data


@pytest.mark.parametrize("strategy", ["uncertainty", "daakg"])
def test_resumed_campaign_matches_uninterrupted(checkpoint_dir, tmp_path, strategy):
    uninterrupted = DAAKG.load(checkpoint_dir).active_learning(strategy, LOOP_CONFIG)
    expected = uninterrupted.run()

    interrupted = DAAKG.load(checkpoint_dir).active_learning(strategy, LOOP_CONFIG)
    campaign = tmp_path / "campaign"
    interrupted.autosave_path = str(campaign)
    interrupted.run(max_batches=1)
    del interrupted  # the "kill": only the autosave survives

    resumed = ActiveLearningLoop.resume(campaign)
    assert resumed._next_batch == 1
    assert resumed.autosave_path == str(campaign)
    records = resumed.run()

    assert len(records) == len(expected) == LOOP_CONFIG.num_batches
    for ours, theirs in zip(records, expected):
        assert _comparable(ours) == _comparable(theirs)


def test_resume_preserves_custom_strategy_configuration(checkpoint_dir, tmp_path):
    from repro.active.selection import GreedySelectionConfig
    from repro.active.strategies import DAAKGStrategy

    strategy = DAAKGStrategy(
        algorithm="greedy",
        selection_config=GreedySelectionConfig(num_samples=2, candidate_limit=50),
    )
    loop = DAAKG.load(checkpoint_dir).active_learning(strategy, LOOP_CONFIG)
    loop.autosave_path = str(tmp_path / "campaign")
    loop.run(max_batches=1)
    resumed = ActiveLearningLoop.resume(tmp_path / "campaign")
    assert isinstance(resumed.strategy, DAAKGStrategy)
    assert resumed.strategy.algorithm == "greedy"
    assert resumed.strategy.selection_config == strategy.selection_config
    assert resumed.strategy.partition_config == strategy.partition_config


def test_resume_requires_campaign_state(checkpoint_dir):
    with pytest.raises(CheckpointError, match="campaign"):
        restore_loop(load_checkpoint(checkpoint_dir))


def test_loop_save_requires_pipeline_backref(fitted_pipeline, tmp_path):
    loop = fitted_pipeline.active_learning("uncertainty", LOOP_CONFIG)
    loop.daakg = None
    with pytest.raises(RuntimeError, match="DAAKG"):
        loop.save(str(tmp_path / "x"))


# --------------------------------------------------------------- config round trip
def test_daakg_config_json_round_trip(fast_config):
    restored = DAAKGConfig.from_json(fast_config.to_json())
    assert restored == fast_config
    assert restored.pretrain == fast_config.pretrain
    assert restored.alignment == fast_config.alignment


def test_config_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown"):
        DAAKGConfig.from_dict({"no_such_knob": 1})


def test_config_from_dict_defaults_missing_fields():
    config = DAAKGConfig.from_dict({"base_model": "transe"})
    assert config.base_model == "transe"
    assert config.entity_dim == DAAKGConfig().entity_dim


def test_nested_loop_config_round_trip():
    restored = config_from_dict(ActiveLearningConfig, config_to_dict(LOOP_CONFIG))
    assert restored == LOOP_CONFIG
    assert isinstance(restored.pool, PoolConfig)
