"""Tests for the autograd engine: every op is checked against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, functional as F, no_grad, tensor


def finite_difference_check(fn, *shapes, seed=0, tol=1e-4):
    """Compare analytic gradients of ``fn`` (scalar output) with central differences."""
    rng = np.random.default_rng(seed)
    inputs = [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]
    out = fn(*inputs)
    out.backward()
    eps = 1e-6
    for x in inputs:
        numeric = np.zeros_like(x.data)
        it = np.nditer(x.data, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            original = x.data[idx]
            x.data[idx] = original + eps
            plus = fn(*inputs).item()
            x.data[idx] = original - eps
            minus = fn(*inputs).item()
            x.data[idx] = original
            numeric[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        assert np.max(np.abs(numeric - x.grad)) < tol


GRADIENT_CASES = {
    "add": (lambda a, b: (a + b).sum(), ((3, 4), (3, 4))),
    "broadcast_add": (lambda a, b: (a + b).sum(), ((3, 4), (4,))),
    "sub": (lambda a, b: (a - b * 2.0).sum(), ((2, 3), (2, 3))),
    "mul": (lambda a, b: (a * b).sum(), ((3, 3), (3, 3))),
    "div": (lambda a, b: (a / (b * b + 1.0)).sum(), ((2, 2), (2, 2))),
    "pow": (lambda a: (a**3).sum(), ((4,),)),
    "matmul": (lambda a, b: (a @ b).sum(), ((3, 4), (4, 2))),
    "matvec": (lambda a, b: (a @ b).sum(), ((3, 4), (4,))),
    "vecmat": (lambda a, b: (a @ b).sum(), ((4,), (4, 2))),
    "sum_axis": (lambda a: (a.sum(axis=1) ** 2).sum(), ((3, 4),)),
    "mean": (lambda a: a.mean(), ((5, 2),)),
    "norm": (lambda a: a.norm(axis=1).sum(), ((4, 3),)),
    "max_axis": (lambda a: a.max(axis=1).sum(), ((4, 3),)),
    "exp": (lambda a: a.exp().sum(), ((3, 3),)),
    "log": (lambda a: (a * a + 1.0).log().sum(), ((3, 3),)),
    "tanh": (lambda a: a.tanh().sum(), ((3, 3),)),
    "sigmoid": (lambda a: a.sigmoid().sum(), ((3, 3),)),
    "relu": (lambda a: (a.relu() * a).sum(), ((4, 4),)),
    "abs": (lambda a: (a.abs() + 0.1).sum(), ((3, 3),)),
    "clamp_min": (lambda a: a.clamp_min(0.2).sum(), ((4, 2),)),
    "reshape": (lambda a: (a.reshape(6) ** 2).sum(), ((2, 3),)),
    "transpose": (lambda a, b: (a.T @ b).sum(), ((3, 2), (3, 2))),
    "getitem": (lambda a: (a[:, 0] * a[:, 1]).sum(), ((4, 3),)),
    "gather_rows": (lambda a: a.gather_rows(np.array([0, 2, 2, 1])).sum(), ((3, 4),)),
    "scatter_rows": (lambda a: F.scatter_rows(a, np.array([0, 1, 0]), 2).norm(), ((3, 4),)),
    "stack_rows": (lambda a, b: (F.stack_rows([a, b]) ** 2).sum(), ((3,), (3,))),
    "concatenate": (lambda a, b: (F.concatenate([a, b], axis=1) ** 2).sum(), ((2, 3), (2, 2))),
    "maximum": (lambda a, b: F.maximum(a, b * 0.5).sum(), ((4, 2), (4, 2))),
    "cosine_rows": (lambda a, b: F.cosine_similarity_rows(a, b).sum(), ((4, 3), (4, 3))),
    "cosine_vec": (lambda a, b: F.cosine_similarity_vec(a, b), ((5,), (5,))),
    "softmax": (lambda a: (F.softmax(a, axis=1)[:, 0]).sum(), ((3, 4),)),
    "log_softmax": (lambda a: F.log_softmax(a, axis=1)[:, 1].mean(), ((3, 4),)),
    "l2_normalize_rows": (lambda a: (F.l2_normalize_rows(a)[:, 0]).sum(), ((3, 4),)),
    "margin_loss": (
        lambda a, b: F.margin_ranking_loss(a.norm(axis=1), b.norm(axis=1), 0.5),
        ((4, 3), (4, 3)),
    ),
    "pairwise_softmax_loss": (
        lambda a, b: F.pairwise_softmax_loss((a * a).sum(axis=1), (b * b).sum(axis=1)),
        ((4, 3), (4, 3)),
    ),
    "soft_label_loss": (
        lambda a: F.soft_label_loss((a * a).sum(axis=1), np.array([0.5, 0.9, 0.1])),
        ((3, 2),),
    ),
}


@pytest.mark.parametrize("name", sorted(GRADIENT_CASES))
def test_gradient_matches_finite_differences(name):
    fn, shapes = GRADIENT_CASES[name]
    finite_difference_check(fn, *shapes)


class TestTupleAxisReductions:
    """Regression tests for tuple axes: ``mean(axis=(0, 1))`` used to raise
    ``TypeError`` because the divisor read ``shape[axis]`` with a tuple."""

    def test_mean_tuple_axis_gradient(self):
        finite_difference_check(lambda a: a.mean(axis=(0, 1)), (3, 4))

    def test_mean_tuple_axis_gradient_3d(self):
        finite_difference_check(lambda a: (a.mean(axis=(0, 2)) ** 2).sum(), (2, 3, 4))

    def test_mean_tuple_axis_values_match_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(2, 3, 4))
        out = Tensor(data).mean(axis=(0, 1))
        assert np.allclose(out.numpy(), data.mean(axis=(0, 1)))
        out = Tensor(data).mean(axis=(1, 2), keepdims=True)
        assert np.allclose(out.numpy(), data.mean(axis=(1, 2), keepdims=True))

    def test_mean_negative_tuple_axis(self):
        data = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = Tensor(data).mean(axis=(-2, -1))
        assert np.allclose(out.numpy(), data.mean(axis=(-2, -1)))

    def test_sum_tuple_axis_parity(self):
        finite_difference_check(lambda a: (a.sum(axis=(0, 1)) * 2.0), (3, 4))
        data = np.arange(12, dtype=float).reshape(3, 4)
        assert np.allclose(Tensor(data).sum(axis=(0, 1)).numpy(), data.sum(axis=(0, 1)))

    def test_max_tuple_axis_parity(self):
        finite_difference_check(lambda a: a.max(axis=(0, 1)), (3, 4), seed=3)
        data = np.arange(24, dtype=float).reshape(2, 3, 4)
        assert np.allclose(Tensor(data).max(axis=(0, 2)).numpy(), data.max(axis=(0, 2)))

    def test_gather_rows_negative_and_duplicate_indices(self):
        # -1 aliases the last row: the scatter-add backward must accumulate
        # both contributions, matching np.add.at semantics
        t = Tensor(np.arange(8.0).reshape(4, 2), requires_grad=True)
        out = t.gather_rows(np.array([-1, 3, 0]))
        out.sum().backward()
        expected = np.zeros((4, 2))
        expected[3] = 2.0
        expected[0] = 1.0
        assert np.allclose(t.grad, expected)

    def test_getitem_integer_array_gradient(self):
        # fancy indexing with duplicates must accumulate like np.add.at
        finite_difference_check(lambda a: (a[np.array([0, 2, 2, -1])] ** 2).sum(), (4, 3))
        finite_difference_check(lambda a: (a[[1, 1, 0]] * 2.0).sum(), (3,))

    def test_getitem_integer_array_matches_add_at_bitwise(self):
        # the grouped fast path must be bit-identical to the generic backward
        rng = np.random.default_rng(0)
        data = rng.normal(size=(6, 3))
        index = np.array([5, 0, 2, 2, -1, 0, 5, 2])
        upstream = rng.normal(size=(index.size, 3))
        fast = Tensor(data, requires_grad=True)
        out = fast[index]
        out.backward(upstream)
        reference = np.zeros_like(data)
        np.add.at(reference, index, upstream)
        np.testing.assert_array_equal(fast.grad, reference)

    def test_getitem_tuple_and_mask_still_supported(self):
        finite_difference_check(lambda a: (a[:, 1] ** 2).sum(), (4, 3))
        t = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        mask = np.array([True, False, True])
        t[mask].sum().backward()
        assert np.allclose(t.grad, np.array([[1.0, 1.0], [0.0, 0.0], [1.0, 1.0]]))


class TestTensorBasics:
    def test_tensor_constructor(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        assert t.requires_grad and t.shape == (2,)

    def test_detach_cuts_graph(self):
        t = tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad

    def test_item_requires_scalar(self):
        assert tensor(3.5).item() == pytest.approx(3.5)

    def test_backward_on_non_scalar_requires_grad_argument(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            tensor([1.0]).backward()

    def test_no_grad_disables_graph(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            out = (t * 3).sum()
        assert not out.requires_grad

    def test_grad_accumulates_over_multiple_backward_paths(self):
        t = tensor([2.0], requires_grad=True)
        out = (t * 3) + (t * 4)
        out.sum().backward()
        assert t.grad[0] == pytest.approx(7.0)

    def test_zero_grad(self):
        t = tensor([2.0], requires_grad=True)
        (t * t).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            tensor([1.0]) ** tensor([2.0])

    def test_rsub_and_rdiv(self):
        t = tensor([2.0], requires_grad=True)
        out = (4.0 - t) + (8.0 / t)
        out.sum().backward()
        assert out.data[0] == pytest.approx(6.0)
        assert t.grad[0] == pytest.approx(-1.0 - 8.0 / 4.0)

    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_addition_is_commutative(self, values):
        a = tensor(values)
        b = tensor(list(reversed(values)))
        assert np.allclose((a + b).data, (b + a).data)

    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_softmax_output_rows_sum_to_one(self, values):
        x = tensor([values, values])
        p = F.softmax(x, axis=1)
        assert np.allclose(p.data.sum(axis=1), 1.0)

    @given(st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_scatter_then_sum_preserves_mass(self, n, d):
        rng = np.random.default_rng(0)
        source = tensor(rng.normal(size=(n, d)))
        indices = rng.integers(0, 3, size=n)
        scattered = F.scatter_rows(source, indices, 3)
        assert np.allclose(scattered.data.sum(axis=0), source.data.sum(axis=0))


class TestFocalLoss:
    def test_focal_loss_downweights_easy_examples(self):
        easy_pos = tensor([5.0, 5.0])
        easy_neg = tensor([-5.0, -5.0])
        hard_pos = tensor([0.0, 0.0])
        hard_neg = tensor([0.0, 0.0])
        easy = F.focal_pairwise_softmax_loss(easy_pos, easy_neg, gamma=2.0).item()
        hard = F.focal_pairwise_softmax_loss(hard_pos, hard_neg, gamma=2.0).item()
        assert hard > easy

    def test_focal_loss_gamma_zero_matches_plain_softmax_loss(self):
        pos = tensor([1.0, 0.3])
        neg = tensor([0.2, 0.8])
        focal = F.focal_pairwise_softmax_loss(pos, neg, gamma=0.0).item()
        plain = F.pairwise_softmax_loss(pos, neg).item()
        assert focal == pytest.approx(plain, rel=1e-6)
