"""Tests for the SimilarityEngine: caching, invalidation, top-k and mining.

The engine's contract (see ``repro/alignment/similarity.py``): a matrix is
computed at most once per ``(parameter_version, state_version)`` token, every
optimiser step invalidates it, ``top_k`` agrees with a full ``argsort``, and
the vectorized hard-negative miner never returns a positive counterpart.
"""

import numpy as np
import pytest

from repro.alignment import (
    AlignmentTrainingConfig,
    JointAlignmentModel,
    JointAlignmentTrainer,
    SimilarityEngine,
    blocked_cosine_similarity,
)
from repro.alignment.trainer import LabelStore
from repro.active.pool import ElementPairPool, PoolConfig, build_pool
from repro.embedding import TransE
from repro.inference.pairs import entity_pair, relation_pair
from repro.kg.elements import ElementKind
from repro.kg.pair import AlignedKGPair
from repro.nn.optim import SGD, bump_parameter_version
from repro.utils.math import cosine_similarity_matrix, top_k_rows


@pytest.fixture()
def fresh_model(tiny_pair):
    kg1 = tiny_pair.kg1.with_inverse_relations()
    kg2 = tiny_pair.kg2.with_inverse_relations()
    pair = AlignedKGPair(
        tiny_pair.name, kg1, kg2, tiny_pair.entity_alignment, tiny_pair.relation_alignment,
        tiny_pair.class_alignment, tiny_pair.train_entity_pairs, tiny_pair.valid_entity_pairs,
        tiny_pair.test_entity_pairs,
    )
    m1, m2 = TransE(kg1, dim=8, rng=0), TransE(kg2, dim=8, rng=1)
    return JointAlignmentModel(pair, m1, m2, rng=0)


class TestBlockedCosine:
    def test_matches_reference_implementation(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(23, 5)), rng.normal(size=(17, 5))
        expected = cosine_similarity_matrix(a, b)
        assert np.allclose(blocked_cosine_similarity(a, b, block_size=4096), expected)
        # forcing several blocks must not change the result
        assert np.allclose(blocked_cosine_similarity(a, b, block_size=7), expected)
        assert np.allclose(blocked_cosine_similarity(a, b, block_size=1), expected)


class TestTopKRows:
    @pytest.mark.parametrize("k", [1, 3, 7, 50])
    def test_agrees_with_full_argsort(self, k):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(12, 7))
        top = top_k_rows(matrix, k)
        full = np.argsort(-matrix, axis=1)[:, : min(k, 7)]
        # compare the selected values (ties may order indices differently)
        rows = np.arange(matrix.shape[0])[:, None]
        assert np.allclose(matrix[rows, top], matrix[rows, full])

    def test_zero_k_and_empty(self):
        assert top_k_rows(np.empty((3, 0)), 5).shape == (3, 0)
        assert top_k_rows(np.ones((2, 4)), 0).shape == (2, 0)


class TestEngineCaching:
    def test_repeated_calls_hit_cache(self, fresh_model):
        engine = fresh_model.similarity
        first = engine.matrix(ElementKind.ENTITY)
        computes = dict(engine.compute_counts)
        second = engine.matrix(ElementKind.ENTITY)
        assert second is first  # identical object, no recomputation
        assert engine.compute_counts == computes
        assert engine.hit_counts[ElementKind.ENTITY] >= 1

    def test_optimizer_step_invalidates(self, fresh_model):
        engine = fresh_model.similarity
        before = engine.matrix(ElementKind.ENTITY)
        optimizer = SGD(fresh_model.parameters(), lr=0.1)
        # give every parameter a gradient so step really changes them
        for p in optimizer.parameters:
            p.grad = np.ones_like(p.data)
        optimizer.step()
        after = engine.matrix(ElementKind.ENTITY)
        assert after is not before
        assert not np.allclose(after, before)

    def test_bump_without_change_recomputes_equal_matrix(self, fresh_model):
        engine = fresh_model.similarity
        before = engine.matrix(ElementKind.RELATION)
        bump_parameter_version()
        after = engine.matrix(ElementKind.RELATION)
        assert after is not before
        assert np.allclose(after, before)

    def test_set_landmarks_invalidates_entity_matrix(self, fresh_model):
        engine = fresh_model.similarity
        fresh_model.set_landmarks(np.empty((0, 2)))
        before = engine.matrix(ElementKind.ENTITY)
        fresh_model.set_landmarks(np.array([[0, 0]]))
        after = engine.matrix(ElementKind.ENTITY)
        assert after is not before

    def test_all_kinds_round_trip(self, fresh_model):
        engine = fresh_model.similarity
        for kind in ElementKind:
            matrix = engine.matrix(kind)
            assert matrix is engine.matrix(kind)
            assert matrix is fresh_model.similarity_matrix(kind)

    def test_top_k_is_cached_and_agrees_with_argsort(self, fresh_model):
        engine = fresh_model.similarity
        for_left, for_right = engine.top_k(ElementKind.ENTITY, 3)
        again_left, again_right = engine.top_k(ElementKind.ENTITY, 3)
        assert again_left is for_left and again_right is for_right  # cache hit
        matrix = engine.matrix(ElementKind.ENTITY)
        rows = np.arange(matrix.shape[0])[:, None]
        full = np.argsort(-matrix, axis=1)[:, :3]
        assert np.allclose(matrix[rows, for_left], matrix[rows, full])
        rows_t = np.arange(matrix.shape[1])[:, None]
        full_t = np.argsort(-matrix.T, axis=1)[:, :3]
        assert np.allclose(matrix.T[rows_t, for_right], matrix.T[rows_t, full_t])

    def test_refresh_statistics_seeds_entity_cache(self, fresh_model):
        engine = fresh_model.similarity
        if engine.backend_name != "dense":
            pytest.skip("cache seeding is a dense-backend optimisation; the "
                        "sharded backend streams the weights and never "
                        "materialises the matrix refresh_statistics would seed")
        fresh_model.refresh_statistics()
        computes = engine.compute_counts[ElementKind.ENTITY]
        # the matrix computed inside refresh_statistics is reused as-is
        engine.matrix(ElementKind.ENTITY)
        fresh_model.entity_similarity_matrix()
        assert engine.compute_counts[ElementKind.ENTITY] == computes

    def test_no_recomputation_within_training_round(self, fresh_model):
        """The acceptance criterion: one optimiser step never recomputes a
        similarity matrix it already saw — the engine serves the cached one."""
        trainer = JointAlignmentTrainer(
            fresh_model,
            AlignmentTrainingConfig(rounds=1, epochs_per_round=3, num_negatives=2),
            seed=0,
        )
        trainer.add_matches(
            ElementKind.ENTITY,
            fresh_model.pair.entity_match_ids(fresh_model.pair.train_entity_pairs),
        )
        engine = trainer.engine
        trainer._refresh_round_state()
        # settle: the trailing set_landmarks may invalidate the entity matrix
        # (semi-mined landmarks changed the structural channel) exactly once
        for kind in ElementKind:
            engine.matrix(kind)
        computes_after_refresh = dict(engine.compute_counts)
        # between refreshes, reading every matrix many times costs nothing
        for _ in range(4):
            for kind in ElementKind:
                engine.matrix(kind)
        assert engine.compute_counts == computes_after_refresh
        # an optimiser step itself never triggers a similarity recomputation
        trainer._step()
        assert engine.compute_counts == computes_after_refresh
        # refresh_statistics seeds the entity cache: one round of refresh plus
        # mining costs at most one entity-matrix computation in total
        entity_computes = engine.compute_counts[ElementKind.ENTITY]
        trainer._refresh_round_state()
        engine.matrix(ElementKind.ENTITY)
        assert engine.compute_counts[ElementKind.ENTITY] <= entity_computes + 1

    def test_invalidate_clears_caches(self, fresh_model):
        engine = fresh_model.similarity
        engine.matrix(ElementKind.ENTITY)
        engine.top_k(ElementKind.ENTITY, 2)
        engine.invalidate()
        assert engine._matrices == {} and engine._top_k == {}

    def test_block_size_validation(self, fresh_model):
        with pytest.raises(ValueError):
            SimilarityEngine(fresh_model, block_size=0)


class TestVectorizedHardNegatives:
    def _trainer(self, fresh_model, seed=0):
        trainer = JointAlignmentTrainer(
            fresh_model,
            AlignmentTrainingConfig(rounds=1, epochs_per_round=1, num_negatives=4),
            seed=seed,
        )
        trainer._refresh_hard_candidates()
        return trainer

    def test_shape_and_interleaving(self, fresh_model):
        trainer = self._trainer(fresh_model)
        matches = np.array([[0, 0], [1, 1], [2, 2]])
        negatives = trainer._hard_negatives(matches, 4)
        assert negatives.shape == (12, 2)
        # row i*4+j corrupts match i: one side always equals the positive side
        for i, (left, right) in enumerate(matches):
            block = negatives[i * 4 : (i + 1) * 4]
            assert np.all((block[:, 0] == left) | (block[:, 1] == right))

    def test_never_returns_the_positive_pair(self, fresh_model):
        matches = np.array([[0, 0], [1, 1], [2, 2], [3, 3]])
        positives = {tuple(m) for m in matches}
        for seed in range(20):
            trainer = self._trainer(fresh_model, seed=seed)
            negatives = trainer._hard_negatives(matches, 8)
            produced = {tuple(row) for row in negatives.tolist()}
            assert not produced & positives

    def test_same_rng_same_negatives(self, fresh_model):
        matches = np.array([[0, 0], [1, 1]])
        a = self._trainer(fresh_model, seed=7)._hard_negatives(matches, 6)
        b = self._trainer(fresh_model, seed=7)._hard_negatives(matches, 6)
        assert np.array_equal(a, b)

    def test_candidates_come_from_hard_pool(self, fresh_model):
        trainer = self._trainer(fresh_model)
        top_for_left, top_for_right = trainer._hard_candidates
        matches = np.array([[0, 0], [1, 1], [2, 2]])
        negatives = trainer._hard_negatives(matches, 10)
        # every corrupted value must be a mined candidate of its anchor (or the
        # deterministic fallback, which cannot occur here because pool > 1)
        for i, (left, right) in enumerate(matches):
            block = negatives[i * 10 : (i + 1) * 10]
            for nl, nr in block:
                if nl == left:
                    assert nr in top_for_left[left]
                else:
                    assert nl in top_for_right[right]

    def test_no_candidates_returns_empty(self, fresh_model):
        trainer = JointAlignmentTrainer(fresh_model, AlignmentTrainingConfig(), seed=0)
        trainer._hard_candidates = None
        assert trainer._hard_negatives(np.array([[0, 0]]), 3).shape == (0, 2)

    def test_asymmetric_kgs_draw_within_each_table(self, fresh_model):
        """Regression: slots must respect each top-k table's own width.

        When one KG is smaller than the configured pool the two candidate
        tables have different column counts; drawing every slot over the wider
        table used to raise IndexError on the narrower one."""
        trainer = JointAlignmentTrainer(
            fresh_model,
            AlignmentTrainingConfig(rounds=1, epochs_per_round=1, hard_negative_pool=50),
            seed=0,
        )
        trainer._refresh_hard_candidates()
        top_for_left, top_for_right = trainer._hard_candidates
        # simulate the asymmetric case by narrowing one table
        trainer._hard_candidates = (top_for_left, top_for_right[:, :2])
        matches = np.array([[0, 0], [1, 1], [2, 2]])
        negatives = trainer._hard_negatives(matches, 20)  # must not raise
        assert negatives.shape == (60, 2)
        assert not {tuple(m) for m in matches} & {tuple(r) for r in negatives.tolist()}


class TestLabelStore:
    def test_add_is_deduplicated_and_ordered(self):
        store = LabelStore()
        store.add(ElementKind.ENTITY, (0, 0), True)
        store.add(ElementKind.ENTITY, (1, 1), True)
        store.add(ElementKind.ENTITY, (0, 0), True)
        assert store.matches[ElementKind.ENTITY] == [(0, 0), (1, 1)]
        assert store.labelled_pairs(ElementKind.ENTITY) == {(0, 0), (1, 1)}

    def test_match_and_non_match_sets_are_independent(self):
        store = LabelStore()
        store.add(ElementKind.RELATION, (0, 0), True)
        store.add(ElementKind.RELATION, (0, 0), False)
        assert store.matches[ElementKind.RELATION] == [(0, 0)]
        assert store.non_matches[ElementKind.RELATION] == [(0, 0)]
        assert store.num_labels() == 2


class TestImmutablePool:
    def test_lists_are_normalised_to_tuples(self):
        pool = ElementPairPool([entity_pair(0, 0)], [relation_pair(0, 1)], [])
        assert isinstance(pool.entity_pairs, tuple)
        assert isinstance(pool.relation_pairs, tuple)
        assert entity_pair(0, 0) in pool
        assert relation_pair(0, 1) in pool
        assert relation_pair(1, 0) not in pool
        assert len(pool) == 2

    def test_pool_is_frozen(self):
        pool = ElementPairPool((entity_pair(0, 0),), (), ())
        with pytest.raises(AttributeError):
            pool.entity_pairs = ()

    def test_recall_of_matches(self):
        pool = ElementPairPool((entity_pair(0, 0), entity_pair(1, 2)), (), ())
        assert pool.recall_of_matches({(0, 0), (5, 5)}) == 0.5
        assert pool.recall_of_matches(set()) == 0.0

    def test_build_pool_mutual_top_n(self, fresh_model):
        pool = build_pool(fresh_model, PoolConfig(top_n=2))
        assert len(pool.entity_pairs) > 0
        # membership checks agree with the tuple contents
        for pair in pool.entity_pairs:
            assert pair in pool
