"""Tests for the versioned forward-computation session.

The contract under test (``KGEmbeddingModel.outputs``):

* within one optimisation step every consumer shares a single full forward
  per model (the acceptance criterion: 1 GNN forward per
  ``JointAlignmentTrainer._step``, down from 10+ in legacy mode);
* any parameter mutation — optimiser step, ``renormalize``,
  ``load_state_dict`` — invalidates the cached forward;
* caching never changes training: loss histories are bit-identical to the
  uncached/legacy path wherever the computation graphs coincide, and extra
  cache reads interleaved with training leave histories untouched.
"""

import numpy as np
import pytest

from repro.alignment.model import JointAlignmentModel
from repro.alignment.trainer import AlignmentTrainingConfig, JointAlignmentTrainer
from repro.embedding.compgcn import CompGCN
from repro.embedding.rotate import RotatE
from repro.embedding.transe import TransE
from repro.embedding.trainer import EmbeddingTrainingConfig, KGEmbeddingTrainer
from repro.kg.elements import ElementKind
from repro.nn.optim import Adam, parameter_version


MODEL_CLASSES = {"transe": TransE, "rotate": RotatE, "compgcn": CompGCN}


def _make_trainer(pair, base_model: str, session: bool, epochs: int = 4, rounds: int = 1):
    """A joint trainer over ``pair`` built deterministically from fixed seeds."""
    cls = MODEL_CLASSES[base_model]
    m1, m2 = cls(pair.kg1, dim=8, rng=11), cls(pair.kg2, dim=8, rng=12)
    m1.forward_session = session
    m2.forward_session = session
    model = JointAlignmentModel(pair, m1, m2, use_structural_channel=False, rng=13)
    trainer = JointAlignmentTrainer(
        model,
        AlignmentTrainingConfig(
            rounds=rounds,
            epochs_per_round=epochs,
            num_negatives=3,
            embedding_batches_per_round=2,
            embedding_batch_size=8,
        ),
        seed=14,
    )
    trainer.add_matches(ElementKind.ENTITY, pair.entity_match_ids(pair.train_entity_pairs))
    trainer.add_matches(ElementKind.RELATION, [(0, 0)])
    return trainer


class TestForwardCounts:
    def test_one_gnn_forward_per_alignment_step(self, tiny_pair):
        """The acceptance criterion: each ``_step`` runs one forward per model."""
        trainer = _make_trainer(tiny_pair, "compgcn", session=True)
        trainer._refresh_round_state()
        m1, m2 = trainer.model.model1, trainer.model.model2
        for _ in range(3):
            before = (m1.forward_count, m2.forward_count)
            assert trainer._step() is not None
            assert m1.forward_count - before[0] == 1
            assert m2.forward_count - before[1] == 1

    def test_legacy_mode_runs_many_forwards_per_step(self, tiny_pair):
        """Without the session the same step issues 10+ forwards (the old cost)."""
        trainer = _make_trainer(tiny_pair, "compgcn", session=False)
        trainer._refresh_round_state()
        m1 = trainer.model.model1
        before = m1.forward_count
        trainer._step()
        assert m1.forward_count - before >= 10

    def test_embedding_trainer_shares_forward_within_batch(self, tiny_kg):
        model = CompGCN(tiny_kg, dim=8, rng=3)
        trainer = KGEmbeddingTrainer(
            tiny_kg, model, config=EmbeddingTrainingConfig(epochs=2, batch_size=4)
        )
        before = model.forward_count
        trainer.train()
        batches_per_epoch = -(-tiny_kg.triple_array.shape[0] // 4)
        # one forward per batch (positives + negatives share it), instead of two
        assert model.forward_count - before == 2 * batches_per_epoch

    def test_refresh_statistics_uses_one_forward_per_model(self, tiny_pair):
        from repro.nn.optim import bump_parameter_version

        trainer = _make_trainer(tiny_pair, "compgcn", session=True)
        m1 = trainer.model.model1
        bump_parameter_version()  # invalidate the forward cached at construction
        before = m1.forward_count
        trainer.model.refresh_statistics()
        # entity_matrix computes, relation_matrix and the engine seed reuse it
        assert m1.forward_count - before == 1


class TestInvalidation:
    @pytest.mark.parametrize("base_model", ["transe", "rotate", "compgcn"])
    def test_same_version_serves_same_outputs(self, tiny_kg, base_model):
        model = MODEL_CLASSES[base_model](tiny_kg, dim=8, rng=0)
        first = model.outputs()
        assert model.outputs() is first

    def test_optimizer_step_invalidates(self, tiny_kg):
        model = CompGCN(tiny_kg, dim=8, rng=0)
        optimizer = Adam(model.parameters(), lr=0.05)
        first = model.outputs()
        loss = model.triple_scores(tiny_kg.triple_array[:3]).sum()
        loss.backward()
        optimizer.step()
        second = model.outputs()
        assert second is not first
        assert not np.array_equal(second.entities.numpy(), first.entities.numpy())

    def test_renormalize_invalidates(self, tiny_kg):
        model = TransE(tiny_kg, dim=8, rng=0)
        first = model.outputs()
        version = parameter_version()
        model.entity_embeddings.weight.data *= 3.0
        model.renormalize()
        assert parameter_version() > version
        assert model.outputs() is not first

    def test_load_state_dict_invalidates(self, tiny_kg):
        model = CompGCN(tiny_kg, dim=8, rng=0)
        donor = CompGCN(tiny_kg, dim=8, rng=1)
        first = model.outputs()
        model.load_state_dict(donor.state_dict())
        second = model.outputs()
        assert second is not first
        assert np.array_equal(second.entities.numpy(), donor.outputs().entities.numpy())

    def test_no_grad_entry_upgraded_for_training(self, tiny_kg):
        from repro.autograd.tensor import no_grad

        model = CompGCN(tiny_kg, dim=8, rng=0)
        with no_grad():
            frozen = model.outputs()
        assert not frozen.differentiable
        live = model.outputs()
        assert live is not frozen
        assert live.differentiable
        # values agree bit-for-bit and the frozen entry is replaced
        assert np.array_equal(live.entities.numpy(), frozen.entities.numpy())
        assert model.outputs() is live

    def test_second_backward_at_same_version_does_not_double_count(self, tiny_kg):
        batch = tiny_kg.triple_array[:4]
        grads = []
        for session in (True, False):
            model = CompGCN(tiny_kg, dim=8, rng=7)
            model.forward_session = session
            model.triple_scores(batch).sum().backward()
            model.triple_scores(batch[::-1]).sum().backward()
            grads.append([p.grad.copy() for p in model.parameters()])
        for cached, legacy in zip(*grads):
            np.testing.assert_array_equal(cached, legacy)

    def test_two_losses_built_then_backwarded_do_not_double_count(self, tiny_kg):
        """Both graphs share the retained forward; the first backward must not
        leave interior grads behind for the second to re-propagate."""
        batch = tiny_kg.triple_array[:4]
        grads = []
        for session in (True, False):
            model = CompGCN(tiny_kg, dim=8, rng=7)
            model.forward_session = session
            loss_a = model.triple_scores(batch).sum()
            loss_b = model.triple_scores(batch[::-1]).sum()
            loss_a.backward()
            loss_b.backward()
            grads.append([p.grad.copy() for p in model.parameters()])
        for cached, legacy in zip(*grads):
            np.testing.assert_array_equal(cached, legacy)


class TestTrainingParity:
    def test_transe_loss_history_bit_exact_vs_legacy(self, tiny_pair):
        """For TransE the session graph equals the per-call graph node for node."""
        cached = _make_trainer(tiny_pair, "transe", session=True, epochs=6, rounds=2)
        legacy = _make_trainer(tiny_pair, "transe", session=False, epochs=6, rounds=2)
        assert cached.train() == legacy.train()

    def test_compgcn_single_step_loss_bit_exact_vs_legacy(self, tiny_pair):
        """Forward values are version-pure, so the first step's loss is identical."""
        cached = _make_trainer(tiny_pair, "compgcn", session=True)
        legacy = _make_trainer(tiny_pair, "compgcn", session=False)
        cached._refresh_round_state()
        legacy._refresh_round_state()
        assert cached._step() == legacy._step()

    def test_compgcn_history_unchanged_by_interleaved_cache_reads(self, tiny_pair):
        """Serving cached forwards to other consumers must not perturb training."""
        plain = _make_trainer(tiny_pair, "compgcn", session=True, epochs=3, rounds=2)
        read = _make_trainer(tiny_pair, "compgcn", session=True, epochs=3, rounds=2)
        history_plain = plain.train()
        history_read = []
        for _ in range(2):
            read._refresh_round_state()
            for _ in range(3):
                read.model.model1.entity_matrix()
                read.model.similarity.matrix(ElementKind.ENTITY)
                history_read.append(read._step())
                read.model.model2.relation_matrix()
        assert history_plain == history_read

    def test_compgcn_history_close_to_legacy(self, tiny_pair):
        """Sharing one backward re-orders gradient accumulation, so legacy parity
        for GNNs is exact in value only up to float associativity."""
        cached = _make_trainer(tiny_pair, "compgcn", session=True, epochs=5)
        legacy = _make_trainer(tiny_pair, "compgcn", session=False, epochs=5)
        np.testing.assert_allclose(cached.train(), legacy.train(), rtol=1e-7, atol=1e-9)

    def _pretraining_histories(self, kg, base_model):
        histories = []
        for session in (True, False):
            model = MODEL_CLASSES[base_model](kg, dim=8, rng=5)
            model.forward_session = session
            trainer = KGEmbeddingTrainer(
                kg, model, config=EmbeddingTrainingConfig(epochs=4, batch_size=4), seed=6
            )
            history = trainer.train()
            histories.append((history.er_loss, history.ec_loss))
        return histories

    def test_pretraining_history_bit_exact_vs_legacy_transe(self, tiny_kg):
        cached, legacy = self._pretraining_histories(tiny_kg, "transe")
        assert cached == legacy

    @pytest.mark.parametrize("base_model", ["rotate", "compgcn"])
    def test_pretraining_history_close_vs_legacy(self, tiny_kg, base_model):
        """Positives and negatives share one forward graph per batch, so the
        accumulated gradient is mathematically identical but float-reordered."""
        cached, legacy = self._pretraining_histories(tiny_kg, base_model)
        np.testing.assert_allclose(cached[0], legacy[0], rtol=1e-7, atol=1e-9)
