"""Integration tests for the DAAKG facade and the baseline methods."""

import numpy as np
import pytest

from repro import DAAKG, DAAKGConfig, ElementKind
from repro.baselines import (
    BASELINE_REGISTRY,
    LexicalMatcher,
    MTransE,
    PARIS,
    ParisConfig,
    create_baseline,
)
from repro.baselines.lexical import character_ngrams, ngram_jaccard
from repro.core.daakg import _classes_as_entities


class TestDAAKGConfig:
    def test_default_config_valid(self):
        config = DAAKGConfig()
        assert config.base_model == "compgcn"

    def test_invalid_base_model(self):
        with pytest.raises(ValueError):
            DAAKGConfig(base_model="bert")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            DAAKGConfig(entity_dim=0)

    @pytest.mark.parametrize(
        "name,attribute",
        [
            ("class_embeddings", "use_class_embeddings"),
            ("mean_embeddings", "use_mean_embeddings"),
            ("semi_supervision", "use_semi_supervision"),
        ],
    )
    def test_with_ablation_switches_one_component(self, name, attribute):
        config = DAAKGConfig().with_ablation(name)
        assert getattr(config, attribute) is False

    def test_with_ablation_full_is_identity(self):
        config = DAAKGConfig()
        assert config.with_ablation("full") is config

    def test_with_ablation_unknown(self):
        with pytest.raises(ValueError):
            DAAKGConfig().with_ablation("nope")


class TestClassesAsEntities:
    def test_augmentation_adds_pseudo_entities(self, tiny_pair):
        kg, class_map = _classes_as_entities(tiny_pair.kg1)
        assert kg.num_entities == tiny_pair.kg1.num_entities + tiny_pair.kg1.num_classes
        assert "__type__" in kg.relations
        assert class_map.shape == (tiny_pair.kg1.num_classes,)
        for c, entity_idx in enumerate(class_map):
            assert kg.entity_name(int(entity_idx)) == f"__class__:{tiny_pair.kg1.class_name(c)}"


class TestDAAKGPipeline:
    def test_fit_and_evaluate(self, fitted_pipeline):
        assert fitted_pipeline.is_fitted
        scores = fitted_pipeline.evaluate()
        assert set(scores) == {"entity", "relation", "class"}
        for value in scores.values():
            for metric in value.as_dict().values():
                assert 0.0 <= metric <= 1.0
        # structure-based alignment should clearly beat random guessing
        assert scores["relation"].hits_at_1 > 0.2
        assert scores["entity"].hits_at_1 > 0.05

    def test_predict_matches_names(self, fitted_pipeline):
        predicted = fitted_pipeline.predict_matches(ElementKind.RELATION, threshold=0.3)
        assert predicted
        for left, right in predicted:
            assert left in fitted_pipeline.kg1.relation_index
            assert right in fitted_pipeline.kg2.relation_index

    def test_match_probabilities_are_probabilities(self, fitted_pipeline):
        probabilities = fitted_pipeline.match_probabilities(ElementKind.ENTITY)
        assert np.all(probabilities >= 0) and np.all(probabilities <= 1)

    def test_parameter_summary(self, fitted_pipeline):
        summary = fitted_pipeline.parameter_summary()
        assert summary["embedding_model_1"] > 0

    def test_training_seeds_become_labels(self, fitted_pipeline):
        labelled = fitted_pipeline.trainer.labels.matches[ElementKind.ENTITY]
        assert len(labelled) == len(fitted_pipeline.pair.train_entity_pairs)

    def test_ablation_without_class_embeddings_builds(self, small_benchmark, fast_config):
        config = fast_config.with_ablation("class_embeddings")
        pipeline = DAAKG(small_benchmark, config)
        assert pipeline.model.use_class_embeddings is False
        assert pipeline.model.class_entity_maps is not None
        # class similarity is still defined through the entity channel
        matrix = pipeline.model.class_similarity_matrix()
        assert matrix.shape == (
            small_benchmark.kg1.num_classes, small_benchmark.kg2.num_classes
        )

    def test_build_pool_and_estimator(self, fitted_pipeline):
        pool = fitted_pipeline.build_pool()
        graph, estimator = fitted_pipeline.build_inference_estimator(pool)
        assert graph.num_edges() >= 0
        assert estimator.config is fitted_pipeline.config.inference


class TestBaselines:
    def test_registry(self):
        assert set(BASELINE_REGISTRY) == {"paris", "mtranse", "gcn-align", "bootea", "lexical"}
        with pytest.raises(KeyError):
            create_baseline("nope")

    def test_paris_on_tiny_pair(self, tiny_pair):
        paris = PARIS(ParisConfig(iterations=3)).fit(tiny_pair)
        scores = paris.evaluate(test_only=False)
        assert scores["entity"].hits_at_1 >= 0.0
        entity_sim = paris.entity_similarity_matrix()
        assert entity_sim.shape == (tiny_pair.kg1.num_entities, tiny_pair.kg2.num_entities)
        # seeds keep probability 1
        seed = tiny_pair.entity_match_ids(tiny_pair.train_entity_pairs)[0]
        assert entity_sim[seed[0], seed[1]] == pytest.approx(1.0)

    def test_paris_config_validation(self):
        with pytest.raises(ValueError):
            ParisConfig(iterations=0)

    def test_lexical_matcher_shared_vocabulary(self, tiny_pair):
        # tiny_pair uses different local names, so lexical should be weak there;
        # check the mechanics on a dataset with shared names instead.
        lexical = LexicalMatcher().fit(tiny_pair)
        matrix = lexical.entity_similarity_matrix()
        assert matrix.shape == (tiny_pair.kg1.num_entities, tiny_pair.kg2.num_entities)

    def test_ngram_helpers(self):
        assert character_ngrams("ab", n=3) == {"ab"}
        assert ngram_jaccard("birthplace", "birthplace") == 1.0
        assert ngram_jaccard("birthplace", "xyzq") == 0.0
        assert 0.0 < ngram_jaccard("birthplace", "placeofbirth") < 1.0

    def test_lexical_rejects_bad_ngram_size(self):
        with pytest.raises(ValueError):
            LexicalMatcher(ngram_size=0)

    def test_evaluate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LexicalMatcher().evaluate()

    def test_mtranse_runs_on_small_benchmark(self, small_benchmark):
        from repro.baselines.embedding import EmbeddingBaselineConfig

        baseline = MTransE(EmbeddingBaselineConfig(entity_dim=16, pretrain_epochs=2,
                                                   rounds=1, epochs_per_round=5))
        baseline.fit(small_benchmark)
        scores = baseline.evaluate()
        assert 0.0 <= scores["entity"].hits_at_1 <= 1.0
        assert baseline.training_time.elapsed > 0


class TestEndToEndComparison:
    def test_daakg_schema_alignment_beats_lexical_on_obfuscated_names(
        self, fitted_pipeline, small_benchmark
    ):
        """On a cross-vocabulary dataset the structural method must beat name matching."""
        lexical = LexicalMatcher().fit(small_benchmark)
        lexical_scores = lexical.evaluate()
        daakg_scores = fitted_pipeline.evaluate()
        assert daakg_scores["relation"].hits_at_1 >= lexical_scores["relation"].hits_at_1
        assert daakg_scores["entity"].hits_at_1 >= lexical_scores["entity"].hits_at_1
