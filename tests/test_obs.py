"""``repro.obs``: exactness, no-op path, Prometheus output, fleet merge.

The load-bearing guarantees:

* counters and histograms stay exact under concurrent thread updates;
* snapshot merges are **exact** (fixed buckets → per-slot sums), so metrics
  folded across process-executor pieces equal the sum of the per-piece
  snapshots — no approximation crosses the process boundary;
* when collection is disabled, every accessor returns a shared no-op
  singleton (zero allocation on hot paths);
* the Prometheus renderer emits valid text exposition (cumulative buckets,
  ``+Inf``, ``_sum``/``_count``);
* a partitioned campaign folds every piece's snapshot and events back into
  the driver, and failures name the piece, backend and elapsed time;
* ``AlignmentService.metrics()`` reports request counts and latency
  quantiles from the service's own histogram.
"""

from __future__ import annotations

import re
import threading

import pytest

import repro.obs as obs
from repro import DAAKGConfig, PartitionConfig, PartitionedCampaign, make_benchmark
from repro.active.campaign import CampaignExecutionError
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.inference.power import InferencePowerConfig
from repro.obs.registry import MetricsRegistry, quantile_from_buckets, render_prometheus
from repro.runtime.executor import POISON_ENV
from repro.serving import AlignmentService


@pytest.fixture()
def enabled_obs():
    """Force-enable collection with a clean scope; restore the prior state."""
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    if not was_enabled:
        obs.disable()


# -------------------------------------------------------------- registry core
def test_counter_label_sets_are_distinct_instruments():
    registry = MetricsRegistry()
    registry.counter("requests", method="a").inc()
    registry.counter("requests", method="b").inc(2)
    assert registry.counter("requests", method="a").value == 1
    assert registry.counter("requests", method="b").value == 2
    with pytest.raises(ValueError, match="only go up"):
        registry.counter("requests", method="a").inc(-1)


def test_histogram_buckets_and_quantiles():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(6.05)
    # median lands in the (0.1, 1.0] bucket, interpolated
    assert 0.1 <= hist.quantile(0.5) <= 1.0
    with pytest.raises(ValueError, match="strictly increasing"):
        registry.histogram("bad", buckets=(1.0, 1.0))
    with pytest.raises(ValueError, match="buckets"):
        registry.histogram("latency", buckets=(0.5, 1.0))  # conflicting re-request


def test_quantile_from_buckets_edge_cases():
    assert quantile_from_buckets((1.0, 2.0), [0, 0, 0], 0, 0.5) == 0.0
    with pytest.raises(ValueError, match="quantile"):
        quantile_from_buckets((1.0,), [1, 0], 1, 1.5)


def test_concurrent_updates_stay_exact():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    hist = registry.histogram("work", buckets=(0.5, 1.5, 2.5))
    threads, per_thread = 8, 2000

    def worker() -> None:
        for i in range(per_thread):
            counter.inc()
            hist.observe(float(i % 3))

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert counter.value == threads * per_thread
    assert hist.count == threads * per_thread
    snap = registry.snapshot()
    counts = snap["histograms"]["work"]["counts"]
    assert sum(counts) == threads * per_thread


def test_merge_snapshot_is_exact():
    left, right = MetricsRegistry(), MetricsRegistry()
    for registry, factor in ((left, 1), (right, 10)):
        registry.counter("pieces", status="completed").inc(factor)
        registry.gauge("depth").set(factor)
        hist = registry.histogram("seconds", buckets=(1.0, 10.0))
        hist.observe(0.5 * factor)
    left.merge_snapshot(right.snapshot())
    merged = left.snapshot()
    assert merged["counters"]['pieces{status="completed"}']["value"] == 11
    assert merged["gauges"]["depth"]["value"] == 10  # last write wins
    hist_state = merged["histograms"]["seconds"]
    assert hist_state["count"] == 2
    assert hist_state["sum"] == pytest.approx(5.5)
    assert hist_state["counts"] == [1, 1, 0]  # 0.5 → (≤1), 5.0 → (≤10)

    mismatched = MetricsRegistry()
    mismatched.histogram("seconds", buckets=(2.0, 20.0)).observe(1.0)
    with pytest.raises(ValueError, match="bucket"):
        left.merge_snapshot(mismatched.snapshot())


def test_disabled_accessors_return_noop_singletons():
    was_enabled = obs.enabled()
    obs.disable()
    try:
        assert obs.counter("a", kind="x") is obs.counter("b")
        assert obs.gauge("a") is obs.gauge("b")
        assert obs.histogram("a") is obs.histogram("b")
        assert obs.span("a") is obs.span("b")
        # the no-ops absorb the full API without recording anything (the
        # pre-existing scope contents — e.g. from a REPRO_OBS=1 run — are
        # untouched, so compare against the before-state, not emptiness)
        before_snapshot = obs.snapshot()
        before_events = len(obs.events())
        obs.counter("a").inc()
        obs.gauge("a").set(3)
        obs.histogram("a").observe(1.0)
        with obs.span("a") as span:
            span.set(key="value")
        with obs.timer("a"):
            pass
        obs.event("a", detail=1)
        assert obs.snapshot() == before_snapshot
        assert len(obs.events()) == before_events
    finally:
        if was_enabled:
            obs.enable()


def test_prometheus_exposition_format(enabled_obs):
    obs.counter("pipeline.fits", model="transe").inc(3)
    obs.gauge("queue.depth").set(2)
    hist = obs.histogram("step.seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    text = obs.render_prometheus()
    assert render_prometheus(obs.snapshot()) == text

    line_re = re.compile(
        r'^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* \w+'
        r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+(\.[0-9]+)?)$"
    )
    for line in text.strip().splitlines():
        assert line_re.match(line), f"invalid exposition line: {line!r}"

    assert '# TYPE pipeline_fits counter' in text
    assert 'pipeline_fits{model="transe"} 3' in text
    assert "queue_depth 2" in text
    # cumulative buckets: each le-count includes everything below it
    assert 'step_seconds_bucket{le="0.1"} 1' in text
    assert 'step_seconds_bucket{le="1"} 2' in text
    assert 'step_seconds_bucket{le="+Inf"} 3' in text
    assert "step_seconds_count 3" in text


def test_span_nesting_links_parents(enabled_obs):
    with obs.span("outer"):
        with obs.span("inner", detail=1):
            obs.event("tick")
    by_name = {event["name"]: event for event in obs.events()}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["tick"]["parent_id"] == by_name["inner"]["span_id"]
    assert by_name["outer"]["parent_id"] is None
    assert by_name["outer"]["dur_s"] >= by_name["inner"]["dur_s"] >= 0.0


def test_scoped_isolates_and_yields_state(enabled_obs):
    obs.counter("outside").inc()
    with obs.scoped() as state:
        obs.counter("inside").inc(5)
        assert "outside" not in obs.snapshot()["counters"]
    assert state.registry.snapshot()["counters"]["inside"]["value"] == 5
    assert "inside" not in obs.snapshot()["counters"]
    with obs.scoped(False) as inactive:
        assert inactive is None
        obs.counter("outside").inc()  # falls through to the enclosing scope
    assert obs.snapshot()["counters"]["outside"]["value"] == 2


# ------------------------------------------------------------- campaign fleet
SCALE = 0.15


def campaign_config(executor: str) -> DAAKGConfig:
    return DAAKGConfig(
        base_model="transe",
        entity_dim=16,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=2),
        alignment=AlignmentTrainingConfig(
            rounds=1, epochs_per_round=4, num_negatives=3,
            embedding_batches_per_round=1, embedding_batch_size=128,
        ),
        pool=PoolConfig(top_n=10),
        inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
        partition=PartitionConfig(num_partitions=2, workers=2, executor=executor),
        seed=3,
    )


def make_campaign(executor: str) -> PartitionedCampaign:
    return PartitionedCampaign(
        make_benchmark("D-W", scale=SCALE, seed=3),
        campaign_config(executor),
        strategy="uncertainty",
        active_config=ActiveLearningConfig(batch_size=6, num_batches=1, fine_tune_epochs=3),
        resolve_env=False,
    )


def test_process_campaign_folds_every_piece(enabled_obs):
    """Cross-process fleet metrics: each worker's snapshot crosses the
    boundary through its checkpoint dir and the fold is exact."""
    campaign = make_campaign("process")
    campaign.run()

    assert sorted(campaign.piece_obs) == [0, 1]
    merged = obs.snapshot()
    piece_hist = merged["histograms"]["executor.piece.seconds"]
    assert piece_hist["count"] == 2  # one observation per piece

    # the driver-side fold equals re-merging the raw per-piece snapshots
    check = MetricsRegistry()
    for payload in campaign.piece_obs.values():
        check.merge_snapshot(payload["snapshot"])
    expected = check.snapshot()["histograms"]["executor.piece.seconds"]
    assert expected["counts"] == piece_hist["counts"]
    assert expected["count"] == piece_hist["count"]

    # per-piece trainer activity survived the process boundary
    statuses = merged["counters"]['executor.pieces.total{status="completed"}']
    assert statuses["value"] == 2
    assert any(key.startswith("trainer.steps.total") for key in merged["counters"])

    # lifecycle events: queued in the driver, started/finished in the workers
    names = [event["name"] for event in obs.events()]
    assert names.count("executor.piece.queued") == 2
    assert names.count("executor.piece.started") == 2
    assert names.count("executor.piece.finished") == 2
    finished = [e for e in obs.events() if e["name"] == "executor.piece.finished"]
    assert {e["attrs"]["piece"] for e in finished} == {0, 1}
    assert all(e["attrs"]["seconds"] > 0 for e in finished)


def test_failure_names_piece_backend_and_elapsed(enabled_obs, monkeypatch):
    campaign = make_campaign("serial")
    monkeypatch.setenv(POISON_ENV, "1")
    with pytest.raises(CampaignExecutionError) as excinfo:
        campaign.run()
    message = str(excinfo.value)
    assert "piece 1" in message
    assert "'serial' executor" in message
    assert re.search(r"piece 1 after \d+\.\d\ds", message)
    # the failed piece still exported its snapshot for post-mortem
    assert 1 in campaign.piece_obs
    failed = campaign.piece_obs[1]["snapshot"]["counters"]
    assert failed['executor.pieces.total{status="failed"}']["value"] == 1


# ------------------------------------------------------------------- serving
def test_service_metrics_reports_requests_and_latency(fitted_pipeline):
    service = AlignmentService.from_pipeline(fitted_pipeline)
    uris = list(fitted_pipeline.kg1.entities[:3])
    service.top_k_alignments(uris, k=4)
    service.top_k_alignments(uris, k=4)  # cache hits
    service.score_pairs([(uris[0], fitted_pipeline.kg2.entities[0])])

    metrics = service.metrics()
    assert metrics["requests_total"] == 3
    assert metrics["qps"] > 0
    assert metrics["p99_latency_ms"] >= metrics["p50_latency_ms"] > 0
    assert 0.0 < metrics["cache_hit_ratio"] < 1.0
    assert metrics["queue_depth"] == 0
    assert metrics["hot_swaps"] == 0

    snap = metrics["snapshot"]
    assert snap["counters"]['service.requests.total{method="top_k"}']["value"] == 2
    assert snap["histograms"]["service.request.seconds"]["count"] == 3

    # the service registry is its own (always-on, independent of the global
    # gate): nothing above leaked into the process-global scope
    assert "service.requests.total" not in str(obs.snapshot()["counters"])
    service.enqueue_top_k(uris[0], k=2)
    assert service.metrics()["queue_depth"] == 1
    service.flush()
    assert service.metrics()["queue_depth"] == 0
    assert service.metrics()["flushes"] == 1
