"""Partition-parallel campaigns: partitioner invariants, merge parity, resume.

The load-bearing guarantees:

* the partitioner covers every entity exactly once and never cuts a gold
  entity match;
* a **single-partition** campaign is bit-exact with the monolithic pipeline —
  merged ``top_k`` / ``evaluate_alignment_from_engine`` / mining reproduce the
  monolithic sharded engine's results exactly;
* at ``k`` partitions the campaign is deterministic for **any worker count**;
* campaign checkpoints resume to the identical record sequence, and the
  merged state serves through :class:`AlignmentService` (hot-swap included).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DAAKG,
    DAAKGConfig,
    PartitionConfig,
    PartitionedCampaign,
    make_benchmark,
)
from repro.active.campaign import piece_seed
from repro.active.loop import ActiveLearningConfig
from repro.active.pool import PoolConfig
from repro.alignment.evaluation import evaluate_alignment_from_engine
from repro.alignment.semi_supervised import mine_potential_matches_from_engine
from repro.alignment.trainer import AlignmentTrainingConfig
from repro.embedding.trainer import EmbeddingTrainingConfig
from repro.inference.power import InferencePowerConfig
from repro.kg.elements import ElementKind
from repro.kg.partition import (
    partition_pair,
    resolve_partition_config,
    resolve_partition_count,
    resolve_partition_workers,
)
from repro.serving import AlignmentService
from repro.serving.service import ServingError

SCALE = 0.25
KINDS = (ElementKind.ENTITY, ElementKind.RELATION, ElementKind.CLASS)


def campaign_pair():
    return make_benchmark("D-W", scale=SCALE, seed=0)


@pytest.fixture(scope="module")
def campaign_config() -> DAAKGConfig:
    return DAAKGConfig(
        base_model="transe",
        entity_dim=16,
        class_dim=4,
        pretrain=EmbeddingTrainingConfig(epochs=3),
        alignment=AlignmentTrainingConfig(
            rounds=2, epochs_per_round=8, num_negatives=5,
            embedding_batches_per_round=2, embedding_batch_size=256,
        ),
        pool=PoolConfig(top_n=20),
        inference=InferencePowerConfig(max_hops=2, power_threshold=0.5),
        similarity_backend="sharded",
        seed=0,
    )


@pytest.fixture(scope="module")
def loop_config() -> ActiveLearningConfig:
    return ActiveLearningConfig(batch_size=10, num_batches=2, fine_tune_epochs=5)


def run_campaign(config, loop_config, num_partitions, workers) -> PartitionedCampaign:
    campaign = PartitionedCampaign(
        campaign_pair(),
        config,
        strategy="uncertainty",
        active_config=loop_config,
        partition=PartitionConfig(num_partitions=num_partitions, workers=workers),
    )
    campaign.run()
    return campaign


@pytest.fixture(scope="module")
def monolithic(campaign_config, loop_config) -> DAAKG:
    pipeline = DAAKG(campaign_pair(), campaign_config)
    pipeline.fit()
    pipeline.active_learning("uncertainty", loop_config).run()
    return pipeline


@pytest.fixture(scope="module")
def single_partition_campaign(campaign_config, loop_config) -> PartitionedCampaign:
    return run_campaign(campaign_config, loop_config, num_partitions=1, workers=1)


@pytest.fixture(scope="module")
def multi_campaign(campaign_config, loop_config) -> PartitionedCampaign:
    return run_campaign(campaign_config, loop_config, num_partitions=3, workers=1)


# ------------------------------------------------------------- partitioner
def test_partitioner_covers_everything_once():
    pair = campaign_pair()
    partition = partition_pair(pair, PartitionConfig(num_partitions=4))
    seen_1: list[str] = []
    seen_2: list[str] = []
    matches = 0
    for piece in partition.pieces:
        seen_1.extend(piece.pair.kg1.entities)
        seen_2.extend(piece.pair.kg2.entities)
        matches += len(piece.pair.entity_alignment)
    assert sorted(seen_1) == sorted(pair.kg1.entities)
    assert len(set(seen_1)) == len(seen_1)
    assert sorted(seen_2) == sorted(pair.kg2.entities)
    assert matches == len(pair.entity_alignment)  # no gold match is ever cut
    # id maps point back at the original vocabularies, in original order
    for piece in partition.pieces:
        names = [pair.kg1.entities[i] for i in piece.entity_ids_1]
        assert names == piece.pair.kg1.entities


def test_partitioner_is_deterministic():
    pair = campaign_pair()
    a = partition_pair(pair, PartitionConfig(num_partitions=4))
    b = partition_pair(pair, PartitionConfig(num_partitions=4))
    assert np.array_equal(a.anchor_partition, b.anchor_partition)
    for pa, pb in zip(a.pieces, b.pieces):
        assert pa.pair.kg1.entities == pb.pair.kg1.entities
        assert pa.pair.kg2.entities == pb.pair.kg2.entities


def test_single_partition_is_the_original_pair():
    pair = campaign_pair()
    partition = partition_pair(pair, PartitionConfig(num_partitions=1))
    assert partition.pieces[0].pair is pair
    assert np.array_equal(
        partition.pieces[0].entity_ids_1, np.arange(pair.kg1.num_entities)
    )


def test_partition_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_PARTITION_COUNT", "5")
    monkeypatch.setenv("REPRO_PARTITION_WORKERS", "3")
    monkeypatch.setenv("REPRO_PARTITION_RHO", "0.8")
    assert resolve_partition_count(2) == 5
    assert resolve_partition_workers(1) == 3
    resolved = resolve_partition_config(PartitionConfig(num_partitions=2, rho=0.95))
    assert resolved.num_partitions == 5
    assert resolved.workers == 3
    assert resolved.rho == 0.8
    monkeypatch.delenv("REPRO_PARTITION_COUNT")
    assert resolve_partition_count(2) == 2


def test_piece_seed_contract():
    assert piece_seed(7, 0, 1) == 7  # single partition == monolithic seed
    seeds = {piece_seed(7, i, 4) for i in range(4)}
    assert len(seeds) == 4


# ---------------------------------------------------- 1-partition bit parity
def test_merged_single_partition_top_k_bit_equal(monolithic, single_partition_campaign):
    merged = single_partition_campaign.merged_state()
    engine = monolithic.model.similarity
    for kind in KINDS:
        table_m = merged.top_k_table(kind, 5)
        table_e = engine.top_k_table(kind, 5)
        assert np.array_equal(table_m.left_indices, table_e.left_indices)
        assert np.array_equal(table_m.left_values, table_e.left_values)
        assert np.array_equal(table_m.right_indices, table_e.right_indices)
        assert np.array_equal(table_m.right_values, table_e.right_values)


def test_merged_single_partition_evaluation_bit_equal(
    monolithic, single_partition_campaign
):
    merged = single_partition_campaign.merged_state()
    engine = monolithic.model.similarity
    pair = monolithic.dataset
    gold = {
        ElementKind.ENTITY: pair.entity_match_ids(pair.test_entity_pairs),
        ElementKind.RELATION: pair.relation_match_ids(),
        ElementKind.CLASS: pair.class_match_ids(),
    }
    for kind in KINDS:
        assert evaluate_alignment_from_engine(
            merged, kind, gold[kind]
        ) == evaluate_alignment_from_engine(engine, kind, gold[kind])
    # the campaign-level evaluate() helper agrees with DAAKG.evaluate
    assert single_partition_campaign.evaluate() == monolithic.evaluate()


def test_merged_single_partition_mining_bit_equal(monolithic, single_partition_campaign):
    merged = single_partition_campaign.merged_state()
    engine = monolithic.model.similarity
    for kind, threshold in ((ElementKind.ENTITY, 0.8), (ElementKind.RELATION, 0.5)):
        assert mine_potential_matches_from_engine(
            merged, kind, threshold
        ) == mine_potential_matches_from_engine(engine, kind, threshold)


def test_merged_single_partition_matrix_bit_equal(monolithic, single_partition_campaign):
    merged = single_partition_campaign.merged_state()
    engine = monolithic.model.similarity
    for kind in KINDS:
        assert np.array_equal(merged.matrix(kind), engine.matrix(kind))


# ------------------------------------------------------- k-partition merging
def test_merged_block_structure(multi_campaign):
    """In-block values equal the piece similarity (clipped at 0); cross-block 0."""
    merged = multi_campaign.merged_state()
    matrix = merged.matrix(ElementKind.ENTITY)
    covered = np.zeros(matrix.shape, dtype=bool)
    for index in range(multi_campaign.num_partitions):
        pipeline = multi_campaign.pipeline(index)
        piece_matrix = pipeline.model.similarity.matrix(ElementKind.ENTITY)
        rows = np.array(
            [multi_campaign.dataset.kg1.entity_id(e) for e in pipeline.model.kg1.entities]
        )
        cols = np.array(
            [multi_campaign.dataset.kg2.entity_id(e) for e in pipeline.model.kg2.entities]
        )
        block = matrix[np.ix_(rows, cols)]
        assert np.array_equal(block, np.maximum(piece_matrix, 0.0))
        covered[np.ix_(rows, cols)] = True
    assert np.all(matrix[~covered] == 0.0)  # cross-partition entries are exactly zero


def test_campaign_worker_count_determinism(campaign_config, loop_config, multi_campaign):
    """Same records and merged state for any worker count (3 partitions)."""
    parallel = run_campaign(campaign_config, loop_config, num_partitions=3, workers=3)
    for i in range(3):
        a = multi_campaign.loops[i].records
        b = parallel.loops[i].records
        assert [r.selected for r in a] == [r.selected for r in b]
        assert [r.entity_scores for r in a] == [r.entity_scores for r in b]
    for kind in KINDS:
        assert np.array_equal(
            multi_campaign.merged_state().matrix(kind),
            parallel.merged_state().matrix(kind),
        )
    assert multi_campaign.evaluate() == parallel.evaluate()


def test_merged_accuracy_not_degenerate(multi_campaign, monolithic):
    """Partitioned campaigns must stay in the same accuracy regime."""
    merged_h1 = multi_campaign.evaluate()["entity"].hits_at_1
    mono_h1 = monolithic.evaluate()["entity"].hits_at_1
    assert merged_h1 > 0.0
    assert merged_h1 >= mono_h1 - 0.15


# ------------------------------------------------------------- persistence
def test_campaign_checkpoint_roundtrip_and_resume(campaign_config, loop_config, tmp_path):
    first = PartitionedCampaign(
        campaign_pair(),
        campaign_config,
        strategy="uncertainty",
        active_config=loop_config,
        partition=PartitionConfig(num_partitions=3, workers=2),
    )
    first.run(max_batches=1)
    path = tmp_path / "campaign"
    first.save(path)

    import json

    manifest = json.loads((path / "campaign.json").read_text())
    assert manifest["executor"] == first.executor_name
    restored = PartitionedCampaign.load(path)
    assert restored.num_partitions == 3
    assert restored.executor_name == first.executor_name
    first.run()
    restored.run()
    for i in range(3):
        a, b = first.loops[i].records, restored.loops[i].records
        assert [r.selected for r in a] == [r.selected for r in b]
        assert [r.entity_scores for r in a] == [r.entity_scores for r in b]
    assert first.evaluate() == restored.evaluate()


def test_campaign_checkpoint_membership_guard(campaign_config, loop_config, tmp_path):
    """A checkpoint whose partition membership no longer matches must refuse."""
    import json

    from repro.persistence import CheckpointError

    campaign = PartitionedCampaign(
        campaign_pair(),
        campaign_config,
        strategy="uncertainty",
        active_config=loop_config,
        partition=PartitionConfig(num_partitions=2),
    )
    path = tmp_path / "campaign"
    campaign.save(path)
    manifest_path = path / "campaign.json"
    manifest = json.loads(manifest_path.read_text())
    assert len(manifest["membership_sha256"]) == 64
    manifest["membership_sha256"] = "0" * 64  # simulate partitioner drift
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="membership"):
        PartitionedCampaign.load(path)


def test_campaign_checkpoint_before_run(campaign_config, tmp_path):
    campaign = PartitionedCampaign(
        campaign_pair(),
        campaign_config,
        strategy="uncertainty",
        partition=PartitionConfig(num_partitions=2),
    )
    path = tmp_path / "pending"
    campaign.save(path)  # nothing started: every piece is pending
    restored = PartitionedCampaign.load(path)
    assert restored.num_partitions == 2
    assert all(p is None for p in restored.pipelines)


# ------------------------------------------------------------------ serving
def test_serving_merged_state(multi_campaign):
    service = AlignmentService.from_campaign(multi_campaign)
    merged = multi_campaign.merged_state()
    matrix = merged.matrix(ElementKind.ENTITY)
    pair = multi_campaign.dataset
    uris = pair.kg1.entities[:4]
    answers = service.top_k_alignments(uris, k=3)
    for row, answer in zip(range(4), answers):
        best_name, best_value = answer[0]
        assert best_value == pytest.approx(matrix[row].max())
        assert matrix[row, pair.kg2.entity_id(best_name)] == pytest.approx(best_value)
    scores = service.score_pairs([(uris[0], pair.kg2.entities[0])])
    assert scores[0] == pytest.approx(matrix[0, 0])
    # merged snapshots carry per-piece fold contexts and accept fold-in now;
    # an unknown neighbour is still refused (through the deprecation shim)
    assert service._state.fold_in_supported
    with pytest.warns(DeprecationWarning, match="apply_delta"):
        with pytest.raises(ServingError):
            service.fold_in("brand-new", [("brand-new", "r", "no-such-entity")])


def test_serving_hot_swap_campaign(multi_campaign, single_partition_campaign):
    service = AlignmentService.from_campaign(single_partition_campaign)
    before = service.state_token
    after = service.hot_swap(multi_campaign)
    assert after != before
    assert service.state_token == after
